"""Augmentation cache: keys, durability, and grid-runner integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cvae.augment import AugmentedRatings, DiversePreferenceAugmenter
from repro.cvae.cache import AugmentationCache
from repro.cvae.trainer import TrainerConfig
from repro.runner import GridSpec, grid_status, run_grid
from repro.runner.spec import DatasetSpec
from repro.runner.store import RunStore


def _augmented(seed=0, k=2, users=5, items=4) -> AugmentedRatings:
    rng = np.random.default_rng(seed)
    return AugmentedRatings(
        target_name="Tgt",
        source_names=[f"Src{j}" for j in range(k)],
        matrices=[rng.random((users, items)).astype(np.float32) for _ in range(k)],
    )


class TestCacheStore:
    def test_round_trip(self, tmp_path):
        cache = AugmentationCache(tmp_path / "aug")
        out = _augmented()
        key = cache.key("Tgt", 7, {"beta1": 0.1}, TrainerConfig(epochs=3), True)
        assert cache.load(key) is None
        cache.save(key, out)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.target_name == out.target_name
        assert loaded.source_names == out.source_names
        for a, b in zip(loaded.matrices, out.matrices):
            np.testing.assert_array_equal(a, b)
        assert len(cache) == 1

    def test_key_depends_on_every_ingredient(self):
        base = dict(
            target_name="Tgt",
            seed=7,
            cvae_overrides={"beta1": 0.1},
            trainer_config=TrainerConfig(epochs=3),
            fused=True,
            token="ds-a",
        )
        key = AugmentationCache.key(**base)
        assert key == AugmentationCache.key(**base)  # stable
        for change in (
            {"target_name": "Other"},
            {"seed": 8},
            {"cvae_overrides": {"beta1": 0.2}},
            {"trainer_config": TrainerConfig(epochs=4)},
            {"fused": False},
            {"token": "ds-b"},
        ):
            assert AugmentationCache.key(**{**base, **change}) != key

    def test_key_ignores_eval_every(self):
        """Evaluation frequency is monitoring-only: it must not bust the cache."""
        a = AugmentationCache.key("Tgt", 0, None, TrainerConfig(eval_every=1), True)
        b = AugmentationCache.key("Tgt", 0, None, TrainerConfig(eval_every=7), True)
        assert a == b

    def test_key_insensitive_to_override_order(self):
        a = AugmentationCache.key(
            "Tgt", 0, {"beta1": 0.1, "latent_dim": 4}, TrainerConfig(), True
        )
        b = AugmentationCache.key(
            "Tgt", 0, {"latent_dim": 4, "beta1": 0.1}, TrainerConfig(), True
        )
        assert a == b

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = AugmentationCache(tmp_path)
        key = cache.key("Tgt", 0, None, TrainerConfig(), True)
        cache.save(key, _augmented())
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[: 40])  # truncate mid-archive
        assert cache.load(key) is None
        path.write_bytes(b"not an npz at all")
        assert cache.load(key) is None

    def test_nan_entry_is_a_miss(self, tmp_path):
        cache = AugmentationCache(tmp_path)
        out = _augmented()
        out.matrices[0][0, 0] = np.nan
        key = cache.key("Tgt", 0, None, TrainerConfig(), True)
        cache.save(key, out)
        assert cache.load(key) is None


class TestAugmenterCaching:
    def test_hit_skips_training_and_reproduces_matrices(self, tiny_dataset, tmp_path):
        cache = AugmentationCache(tmp_path / "aug")
        kwargs = dict(
            trainer_config=TrainerConfig(epochs=6), seed=3, cache=cache,
            cache_token="tiny",
        )
        first = DiversePreferenceAugmenter(tiny_dataset, "Tgt", **kwargs)
        out_first = first.fit_generate()
        assert first.cache_hit is False
        assert first.n_trained == len(tiny_dataset.sources)

        second = DiversePreferenceAugmenter(tiny_dataset, "Tgt", **kwargs)
        out_second = second.fit_generate()
        assert second.cache_hit is True
        assert second.n_trained == 0
        assert second.trainers == []  # no models were built, let alone trained
        for a, b in zip(out_first.matrices, out_second.matrices):
            np.testing.assert_array_equal(a, b)

    def test_different_seed_misses(self, tiny_dataset, tmp_path):
        cache = AugmentationCache(tmp_path / "aug")
        config = TrainerConfig(epochs=5)
        DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=config, seed=0, cache=cache
        ).fit_generate()
        other = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=config, seed=1, cache=cache
        )
        other.fit_generate()
        assert other.cache_hit is False
        assert len(cache) == 2

    def test_mismatched_cached_entry_is_recomputed(self, tiny_dataset, tmp_path):
        """A colliding entry from another dataset must not be served."""
        cache = AugmentationCache(tmp_path / "aug")
        config = TrainerConfig(epochs=5)
        augmenter = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=config, seed=0, cache=cache
        )
        # Poison the exact key with an entry of the wrong shape/sources.
        cache.save(augmenter.cache_key(), _augmented(k=1, users=3, items=2))
        out = augmenter.fit_generate()
        assert augmenter.cache_hit is False
        assert augmenter.n_trained == len(tiny_dataset.sources)
        target = tiny_dataset.targets["Tgt"]
        assert out.matrices[0].shape == (target.n_users, target.n_items)

    def test_no_cache_means_no_bookkeeping(self, tiny_dataset):
        augmenter = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=TrainerConfig(epochs=5), seed=0
        )
        augmenter.fit_generate()
        assert augmenter.cache_hit is None


class TestGridIntegration:
    """A warm grid run retrains zero Dual-CVAEs, visibly in grid status."""

    @pytest.fixture(scope="class")
    def metadpa_spec(self):
        return GridSpec(
            methods=[{
                "name": "MetaDPA",
                "cvae_epochs": 5,
                "meta_epochs": 1,
                "finetune_steps": 1,
                "cvae_hidden_dim": 16,
                "latent_dim": 4,
            }],
            targets=["Books"],
            scenarios=["warm-start"],
            seeds=[0],
            dataset=DatasetSpec(user_base=60, item_base=40, seed=1),
        )

    def test_warm_rerun_retrains_zero_cvaes(self, metadpa_spec, tmp_path):
        run_dir = tmp_path / "grid"
        report = run_grid(metadpa_spec, run_dir, workers=1)
        assert report.ok, report.failures

        store = RunStore(run_dir)
        cell = metadpa_spec.expand()[0]
        first = store.load_cell(cell.key)
        assert first.extras["augmentation_cache"] == "miss"
        assert first.extras["cvae_trainings"] > 0

        status = grid_status(run_dir)
        assert status.n_augmentations_cached == 1
        assert status.augmentation_misses == 1

        # resume=False recomputes the cell; the augmentation must come from
        # the cache with zero Dual-CVAE trainings.
        report = run_grid(metadpa_spec, run_dir, workers=1, resume=False)
        assert report.ok, report.failures
        second = store.load_cell(cell.key)
        assert second.extras["augmentation_cache"] == "hit"
        assert second.extras["cvae_trainings"] == 0

        status = grid_status(run_dir)
        assert status.n_augmentations_cached == 1
        assert status.augmentation_hits == 1
        assert "augmentation cache: 1 entry" in status.format_table()

        # identical metrics either way: the cache changes cost, not results
        np.testing.assert_allclose(second.metrics.ndcg, first.metrics.ndcg)
        np.testing.assert_allclose(second.metrics.auc, first.metrics.auc)
