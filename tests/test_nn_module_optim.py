"""Sequential/mlp composition and optimizer behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Linear,
    Relu,
    Sequential,
    clip_grad_norm,
    mlp,
    numerical_gradient,
    relative_error,
)
from repro.nn.optim import add_grads

RNG = np.random.default_rng(0)


class TestSequential:
    def test_param_namespacing(self):
        net = Sequential([Linear(3, 4), Relu(), Linear(4, 2)])
        params = net.init_params(RNG)
        assert set(params) == {"0.W", "0.b", "2.W", "2.b"}

    def test_forward_backward_roundtrip(self):
        net = Sequential([Linear(3, 4), Relu(), Linear(4, 2)])
        params = net.init_params(np.random.default_rng(1))
        x = RNG.normal(size=(6, 3))
        y, cache = net.forward(params, x)
        assert y.shape == (6, 2)
        proj = RNG.normal(size=y.shape)
        dx, grads = net.backward(params, cache, proj)
        assert set(grads) == set(params)

        num_dx = numerical_gradient(
            lambda xin: float((net.forward(params, xin)[0] * proj).sum()), x.copy()
        )
        assert relative_error(dx, num_dx) < 1e-5

    def test_gradcheck_all_params(self):
        net = mlp([3, 5, 2], activation="tanh", out_activation="sigmoid")
        params = net.init_params(np.random.default_rng(2))
        x = RNG.normal(size=(4, 3))
        y, cache = net.forward(params, x)
        proj = RNG.normal(size=y.shape)
        _, grads = net.backward(params, cache, proj)
        for name in params:
            def loss(p, name=name):
                saved = params[name]
                params[name] = p
                out = float((net.forward(params, x)[0] * proj).sum())
                params[name] = saved
                return out

            num = numerical_gradient(loss, params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name


class TestMlpBuilder:
    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            mlp([4])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            mlp([2, 2], activation="swish")
        with pytest.raises(ValueError):
            mlp([2, 2], out_activation="gelu")

    def test_out_activation_bounds_output(self):
        net = mlp([3, 4, 2], out_activation="sigmoid")
        params = net.init_params(RNG)
        y, _ = net.forward(params, RNG.normal(size=(10, 3)) * 10)
        assert np.all((y > 0) & (y < 1))

    def test_dropout_layers_inserted(self):
        net = mlp([3, 4, 4, 2], dropout=0.5)
        from repro.nn.layers import Dropout

        assert any(isinstance(layer, Dropout) for layer in net.layers)


class TestOptimizers:
    @staticmethod
    def _quadratic_problem():
        """min ||x - target||^2 via the optimizer API."""
        target = np.array([1.0, -2.0, 3.0])
        params = {"x": np.zeros(3)}

        def grads():
            return {"x": 2.0 * (params["x"] - target)}

        return params, grads, target

    def test_sgd_converges(self):
        params, grads, target = self._quadratic_problem()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.step(grads())
        np.testing.assert_allclose(params["x"], target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        params, grads, target = self._quadratic_problem()
        opt = SGD(params, lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.step(grads())
        np.testing.assert_allclose(params["x"], target, atol=1e-3)

    def test_adam_converges(self):
        params, grads, target = self._quadratic_problem()
        opt = Adam(params, lr=0.1)
        for _ in range(500):
            opt.step(grads())
        np.testing.assert_allclose(params["x"], target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        params = {"x": np.array([10.0])}
        opt = SGD(params, lr=0.1, weight_decay=1.0)
        opt.step({"x": np.array([0.0])})
        assert abs(params["x"][0]) < 10.0

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD({}, lr=0.0)
        with pytest.raises(ValueError):
            SGD({}, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam({}, lr=0.1, betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            SGD({}, lr=0.1, weight_decay=-1.0)

    def test_adam_updates_only_given_grads(self):
        params = {"a": np.ones(2), "b": np.ones(2)}
        opt = Adam(params, lr=0.1)
        opt.step({"a": np.ones(2)})
        assert not np.allclose(params["a"], 1.0)
        np.testing.assert_allclose(params["b"], 1.0)


class TestGradUtils:
    def test_clip_noop_below_threshold(self):
        grads = {"a": np.array([0.3, 0.4])}
        norm = clip_grad_norm(grads, 1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(grads["a"], [0.3, 0.4])

    def test_clip_scales_to_max_norm(self):
        grads = {"a": np.array([3.0, 4.0])}
        norm = clip_grad_norm(grads, 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(grads["a"]) == pytest.approx(1.0, rel=1e-6)

    def test_clip_global_across_keys(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        clip_grad_norm(grads, 1.0)
        total = np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_clip_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            clip_grad_norm({}, 0.0)

    def test_add_grads_accumulates(self):
        into = {"a": np.array([1.0])}
        add_grads(into, {"a": np.array([2.0]), "b": np.array([3.0])}, scale=0.5)
        np.testing.assert_allclose(into["a"], [2.0])
        np.testing.assert_allclose(into["b"], [1.5])
