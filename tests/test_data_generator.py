"""Synthetic data substrate: vocabulary, generator, domains, statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.domain import align_shared_users
from repro.data.generator import DomainSpec, SyntheticMultiDomainGenerator
from repro.data.statistics import domain_statistics, format_table_1, format_table_2, pair_statistics
from repro.data.vocab import ReviewGenerator, latent_to_topics, make_vocabulary


class TestVocabulary:
    def test_topic_word_rows_are_distributions(self):
        vocab = make_vocabulary(size=50, n_topics=4, rng=0)
        np.testing.assert_allclose(vocab.topic_word.sum(axis=1), 1.0, atol=1e-9)
        assert (vocab.topic_word >= 0).all()

    def test_word_forms(self):
        vocab = make_vocabulary(size=10, n_topics=2, rng=0)
        assert vocab.words()[0] == "w0000"
        assert len(vocab.words()) == 10

    def test_size_validation(self):
        with pytest.raises(ValueError):
            make_vocabulary(size=3, n_topics=5, rng=0)


class TestReviewGenerator:
    def setup_method(self):
        self.vocab = make_vocabulary(size=40, n_topics=4, rng=1)
        self.gen = ReviewGenerator(self.vocab, review_length=20)

    def test_review_is_count_vector(self):
        topics = np.full(4, 0.25)
        review = self.gen.sample_review(topics, topics, np.random.default_rng(0))
        assert review.shape == (40,)
        assert review.sum() == 20
        assert (review >= 0).all()

    def test_word_distribution_normalized(self):
        topics = np.array([0.7, 0.1, 0.1, 0.1])
        probs = self.gen.word_distribution(topics, topics)
        assert probs.sum() == pytest.approx(1.0)

    def test_item_topics_shift_distribution(self):
        t_a = np.array([1.0, 0.0, 0.0, 0.0])
        t_b = np.array([0.0, 0.0, 0.0, 1.0])
        user = np.full(4, 0.25)
        pa = self.gen.word_distribution(t_a, user)
        pb = self.gen.word_distribution(t_b, user)
        assert np.abs(pa - pb).sum() > 0.1

    def test_invalid_mixtures(self):
        with pytest.raises(ValueError):
            ReviewGenerator(self.vocab, user_mix=0.8, noise_mix=0.5)
        with pytest.raises(ValueError):
            ReviewGenerator(self.vocab, user_mix=-0.1)


class TestLatentToTopics:
    def test_rows_are_distributions(self):
        latent = np.random.default_rng(0).normal(size=(6, 8))
        topics = latent_to_topics(latent, 5)
        assert topics.shape == (6, 5)
        np.testing.assert_allclose(topics.sum(axis=1), 1.0, atol=1e-9)

    def test_single_vector(self):
        topics = latent_to_topics(np.zeros(8), 5)
        assert topics.shape == (5,)
        np.testing.assert_allclose(topics, 0.2)

    def test_deterministic(self):
        latent = np.random.default_rng(1).normal(size=(3, 6))
        np.testing.assert_array_equal(
            latent_to_topics(latent, 4), latent_to_topics(latent, 4)
        )


class TestDomainSpecValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DomainSpec(name="x", n_users=0, n_items=10)
        with pytest.raises(ValueError):
            DomainSpec(name="x", n_users=10, n_items=10, cold_user_frac=1.0)
        with pytest.raises(ValueError):
            DomainSpec(name="x", n_users=10, n_items=10, mean_interactions=2)
        with pytest.raises(ValueError):
            DomainSpec(name="x", n_users=10, n_items=10, shared_user_frac=1.5)


class TestGenerator:
    def test_shapes_and_ranges(self, tiny_dataset):
        target = tiny_dataset.targets["Tgt"]
        assert target.ratings.shape == (80, 60)
        assert set(np.unique(target.ratings)) <= {0.0, 1.0}
        assert target.user_content.shape[0] == 80
        # L1 normalization of content rows.
        sums = target.user_content.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0, atol=1e-9)

    def test_every_user_has_interactions(self, tiny_dataset):
        for domain in (*tiny_dataset.sources.values(), *tiny_dataset.targets.values()):
            assert (domain.user_degree() >= 1).all()

    def test_cold_users_exist(self, tiny_dataset):
        degrees = tiny_dataset.targets["Tgt"].user_degree()
        assert (degrees < 5).sum() >= 5
        assert (degrees >= 5).sum() >= 20

    def test_shared_users_have_common_ids(self, tiny_dataset):
        pair = tiny_dataset.pairs[("SrcA", "Tgt")]
        assert pair.n_shared_users > 0
        src_ids = set(tiny_dataset.sources["SrcA"].user_ids.tolist())
        tgt_ids = set(tiny_dataset.targets["Tgt"].user_ids.tolist())
        assert set(pair.shared_user_ids.tolist()) <= (src_ids & tgt_ids)

    def test_shared_factor_memoized(self, tiny_config):
        gen = SyntheticMultiDomainGenerator(tiny_config, seed=0)
        f1 = gen._shared_factor(42)
        f2 = gen._shared_factor(42)
        assert f1 is f2

    def test_determinism(self, tiny_config):
        def build():
            g = SyntheticMultiDomainGenerator(tiny_config, seed=11)
            return g.generate(
                sources=[DomainSpec(name="S", n_users=30, n_items=25)],
                targets=[DomainSpec(name="T", n_users=40, n_items=30, is_target=True)],
            )

        a, b = build(), build()
        np.testing.assert_array_equal(a.targets["T"].ratings, b.targets["T"].ratings)
        np.testing.assert_array_equal(
            a.targets["T"].user_content, b.targets["T"].user_content
        )

    def test_target_required(self, tiny_config):
        gen = SyntheticMultiDomainGenerator(tiny_config, seed=0)
        with pytest.raises(ValueError):
            gen.generate(sources=[], targets=[])
        with pytest.raises(ValueError):
            gen.generate(
                sources=[], targets=[DomainSpec(name="T", n_users=30, n_items=20)]
            )

    def test_review_bags_recorded(self, tiny_dataset):
        domain = tiny_dataset.targets["Tgt"]
        assert domain.has_reviews()
        assert domain.review_counts.shape[0] == domain.n_ratings
        # Review bags reproduce the stored content matrices.
        uc, ic = domain.build_content()
        np.testing.assert_allclose(uc, domain.user_content, atol=1e-9)
        np.testing.assert_allclose(ic, domain.item_content, atol=1e-9)


class TestAlignSharedUsers:
    def test_rows_aligned(self, tiny_dataset):
        source = tiny_dataset.sources["SrcA"]
        target = tiny_dataset.targets["Tgt"]
        pair = align_shared_users(source, target)
        for i, uid in enumerate(pair.shared_user_ids[:5]):
            src_row = np.flatnonzero(source.user_ids == uid)[0]
            tgt_row = np.flatnonzero(target.user_ids == uid)[0]
            np.testing.assert_array_equal(
                pair.ratings_source[i], source.ratings[src_row]
            )
            np.testing.assert_array_equal(
                pair.ratings_target[i], target.ratings[tgt_row]
            )


class TestStatistics:
    def test_domain_stats(self, tiny_dataset):
        stats = domain_statistics(tiny_dataset.targets["Tgt"])
        assert stats.n_users == 80
        assert 0.0 < stats.sparsity < 1.0
        assert str(stats.n_ratings) in stats.as_row()

    def test_pair_stats(self, tiny_dataset):
        stats = pair_statistics(tiny_dataset, "SrcA")
        assert stats.shared_users["Tgt"] == tiny_dataset.pairs[("SrcA", "Tgt")].n_shared_users

    def test_table_rendering(self, tiny_dataset):
        t1 = format_table_1(tiny_dataset)
        t2 = format_table_2(tiny_dataset)
        assert "SrcA" in t1 and "SrcB" in t1
        assert "Tgt" in t2
