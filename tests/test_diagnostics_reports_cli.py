"""Diagnostics, report exporters and the experiments CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cvae import DiversePreferenceAugmenter, TrainerConfig
from repro.cvae.diagnostics import (
    diagnose_augmentation,
    generation_auc,
    per_user_ranking_auc,
)
from repro.data.splits import Scenario
from repro.eval.reports import curves_to_csv, table3_to_csv, table3_to_markdown
from repro.experiments.cli import main as cli_main
from repro.experiments.table3 import run_table3


class TestPerUserAuc:
    def test_perfect_ordering(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        truth = np.array([1.0, 1.0, 0.0, 0.0])
        assert per_user_ranking_auc(scores, truth) == 1.0

    def test_inverted_ordering(self):
        scores = np.array([0.1, 0.9])
        truth = np.array([1.0, 0.0])
        assert per_user_ranking_auc(scores, truth) == 0.0

    def test_undefined_cases(self):
        assert np.isnan(per_user_ranking_auc(np.ones(3), np.ones(3)))
        assert np.isnan(per_user_ranking_auc(np.ones(3), np.zeros(3)))

    def test_generation_auc_aggregates(self):
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])
        truth = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert generation_auc(matrix, truth, np.array([0, 1])) == 1.0


class TestDiagnoseAugmentation:
    @pytest.fixture(scope="class")
    def report(self, tiny_dataset):
        augmenter = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=TrainerConfig(epochs=120), seed=0
        )
        augmented = augmenter.fit_generate()
        target = tiny_dataset.targets["Tgt"]
        warm = np.flatnonzero(target.user_degree() >= 5)
        return diagnose_augmentation(
            augmenter.trainers, augmented, target.ratings, warm
        )

    def test_report_fields(self, report, tiny_dataset):
        assert report.target_name == "Tgt"
        assert len(report.generation_aucs) == len(tiny_dataset.sources)
        assert len(report.latent_mi) == len(tiny_dataset.sources)
        assert report.diversity > 0.0

    def test_trained_cvae_is_informative(self, report):
        # The content path must beat chance after training.
        assert np.mean(report.generation_aucs) > 0.55
        assert report.healthy

    def test_format(self, report):
        text = report.format_table()
        assert "diversity" in text
        for name in report.source_names:
            assert name in text

    def test_mismatched_inputs_rejected(self, tiny_dataset, report):
        augmenter = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=TrainerConfig(epochs=1), seed=0
        )
        augmented = augmenter.fit_generate()
        with pytest.raises(ValueError):
            diagnose_augmentation(
                augmenter.trainers[:1],
                augmented,
                tiny_dataset.targets["Tgt"].ratings,
                np.array([0]),
            )


@pytest.fixture(scope="module")
def small_table(bench_dataset):
    return run_table3(
        bench_dataset,
        targets=("Books",),
        methods=("Popularity", "CoNN"),
        seeds=(0,),
        profile="fast",
    )


class TestReports:
    def test_markdown_contains_all_cells(self, small_table):
        text = table3_to_markdown(small_table)
        assert "### Target domain: Books" in text
        assert "| Popularity |" in text and "| CoNN |" in text
        assert "**" in text  # best values bolded

    def test_csv_row_count(self, small_table):
        text = table3_to_csv(small_table)
        lines = [line for line in text.strip().splitlines() if line]
        # header + 1 target x 4 scenarios x 2 methods x 4 metrics
        assert len(lines) == 1 + 4 * 2 * 4

    def test_curves_csv(self):
        curves = {(Scenario.WARM, "MetaDPA"): [0.1, 0.2]}
        text = curves_to_csv([5, 10], curves)
        assert "k=5" in text and "MetaDPA" in text


class TestCli:
    def test_stats_command(self, capsys):
        assert cli_main(["--user-base", "60", "--item-base", "60", "stats"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Books" in out

    def test_fig6_command(self, capsys):
        # fig6 builds its own datasets internally (fractions of the benchmark).
        assert cli_main(["fig6"]) == 0
        assert "block1" in capsys.readouterr().out

    def test_table3_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "t3.csv"
        md_path = tmp_path / "t3.md"
        code = cli_main(
            [
                "--user-base", "60", "--item-base", "60",
                "table3",
                "--profile", "fast",
                "--seeds", "0",
                "--csv", str(csv_path),
                "--markdown", str(md_path),
            ]
        )
        assert code == 0
        assert "warm-start" in capsys.readouterr().out
        assert csv_path.read_text().startswith("target,scenario")
        assert "### Target domain" in md_path.read_text()

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
