"""Leak-freedom guarantees of the prepared experiment bundle.

These tests pin the information rules that make the evaluation honest; they
were added after catching three real leaks during development (training on
query positives, popularity counts over hidden ratings, and review text of
future interactions appearing in content).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario


@pytest.fixture(scope="module")
def experiment(bench_dataset):
    return prepare_experiment(bench_dataset, "Books", seed=0)


class TestRatingVisibility:
    def test_train_ratings_subset_of_true_ratings(self, experiment):
        extra = (experiment.ctx.train_ratings > 0) & (experiment.domain.ratings == 0)
        assert not extra.any()

    def test_no_query_positive_visible(self, experiment):
        visible = experiment.ctx.train_ratings
        for tasks in experiment.task_sets.values():
            for task in tasks:
                for item in task.query_items[task.query_labels > 0.5]:
                    assert visible[task.user_row, int(item)] == 0.0

    def test_new_user_and_item_blocks_hidden(self, experiment):
        visible = experiment.ctx.train_ratings
        assert visible[experiment.splits.new_users].sum() == 0.0
        assert visible[:, experiment.splits.new_items].sum() == 0.0

    def test_warm_support_positives_visible(self, experiment):
        visible = experiment.ctx.train_ratings
        task = experiment.task_sets[Scenario.WARM].tasks[0]
        positives = task.support_items[task.support_labels > 0.5]
        assert all(visible[task.user_row, int(i)] == 1.0 for i in positives)


class TestContentVisibility:
    def test_eval_positive_reviews_removed(self, experiment, bench_dataset):
        original = bench_dataset.targets["Books"]
        adjusted = experiment.domain
        # Content differs from the all-reviews version for evaluated users.
        task = experiment.task_sets[Scenario.WARM].tasks[0]
        assert not np.allclose(
            original.user_content[task.user_row], adjusted.user_content[task.user_row]
        )

    def test_content_matches_exclusion_rebuild(self, experiment, bench_dataset):
        original = bench_dataset.targets["Books"]
        exclude = set()
        for tasks in experiment.task_sets.values():
            for task in tasks:
                for item in task.query_items[task.query_labels > 0.5]:
                    exclude.add((task.user_row, int(item)))
        uc, ic = original.build_content(exclude)
        np.testing.assert_allclose(uc, experiment.domain.user_content)
        np.testing.assert_allclose(ic, experiment.domain.item_content)


class TestPairRebuild:
    def test_pair_targets_use_visible_ratings(self, experiment):
        visible = experiment.ctx.train_ratings
        tgt_index = {
            uid: row for row, uid in enumerate(experiment.domain.user_ids)
        }
        for pair in experiment.dataset.pairs_for_target("Books"):
            for i, uid in enumerate(pair.shared_user_ids):
                np.testing.assert_array_equal(
                    pair.ratings_target[i], visible[tgt_index[int(uid)]]
                )

    def test_pairs_exclude_new_users(self, experiment):
        existing = set(experiment.splits.existing_users.tolist())
        tgt_index = {
            uid: row for row, uid in enumerate(experiment.domain.user_ids)
        }
        for pair in experiment.dataset.pairs_for_target("Books"):
            rows = {tgt_index[int(uid)] for uid in pair.shared_user_ids}
            assert rows <= existing

    def test_other_target_pairs_untouched(self, experiment, bench_dataset):
        for key, pair in experiment.dataset.pairs.items():
            if key[1] != "Books":
                assert pair is bench_dataset.pairs[key]


class TestExperimentStructure:
    def test_all_scenarios_present(self, experiment):
        assert set(experiment.task_sets) == set(Scenario)
        assert set(experiment.instances) == set(Scenario)

    def test_instances_align_with_tasks(self, experiment):
        for scenario, instances in experiment.instances.items():
            users_with_tasks = {t.user_row for t in experiment.task_sets[scenario]}
            for inst in instances:
                assert inst.user_row in users_with_tasks

    def test_different_seeds_give_different_splits(self, bench_dataset):
        a = prepare_experiment(bench_dataset, "Books", seed=0)
        b = prepare_experiment(bench_dataset, "Books", seed=1)
        assert set(a.splits.new_items.tolist()) != set(b.splits.new_items.tolist())

    def test_same_seed_reproducible(self, bench_dataset):
        a = prepare_experiment(bench_dataset, "Books", seed=5)
        b = prepare_experiment(bench_dataset, "Books", seed=5)
        np.testing.assert_array_equal(a.ctx.train_ratings, b.ctx.train_ratings)
        assert [t.user_row for t in a.task_sets[Scenario.C_U]] == [
            t.user_row for t in b.task_sets[Scenario.C_U]
        ]

    def test_unknown_target_raises(self, bench_dataset):
        with pytest.raises(KeyError):
            prepare_experiment(bench_dataset, "Nope", seed=0)
