"""Chaos suite: seeded fault plans against the live sharded service.

Every scenario arms a deterministic :class:`FaultPlan` inside real worker
processes and asserts the resilient front-end's contract: requests keep
resolving (possibly ``degraded=True``) within their deadlines, and the
outcome counters in ``stats()["metrics"]`` reconcile exactly with the
per-future tallies the test observes.

A cheap Popularity artifact keeps worker startup fast — the resilience
machinery under test is method-agnostic.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.popularity import Popularity
from repro.serve import (
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    ShardedService,
)
from repro.service import RecommenderService


@pytest.fixture(scope="module")
def artifact(bench_experiment, tmp_path_factory):
    """A saved Popularity artifact: instant worker loads, real RPC plumbing."""
    method = Popularity().fit(bench_experiment.ctx)
    path = method.save(tmp_path_factory.mktemp("chaos") / "popularity.npz")
    return str(path)


def _counters(service: ShardedService) -> dict:
    return service.stats()["metrics"].get("counters", {})


def _settled_counters(service: ShardedService, n_requests: int) -> dict:
    """Counters once every response has been tallied.

    Outcome counters are bumped just *after* the future resolves, so an
    observer woken by ``result()`` can be one increment early — poll until
    the response totals cover every request.
    """
    deadline = time.monotonic() + 5.0
    while True:
        counters = _counters(service)
        settled = (
            counters.get("serve.responses.ok", 0)
            + counters.get("serve.responses.degraded", 0)
            + counters.get("serve.responses.error", 0)
        )
        if settled >= n_requests or time.monotonic() >= deadline:
            return counters
        time.sleep(0.01)


def _tally(results) -> tuple[int, int]:
    """(full-quality, degraded) response counts."""
    ok = sum(1 for r in results if not r.degraded)
    return ok, len(results) - ok


class TestResilientEquivalence:
    def test_no_fault_no_degradation_matches_plain_serving(self, artifact):
        """Arming resilience without faults must not change a single bit."""
        users = list(range(12)) * 2
        reference = RecommenderService.from_artifact(artifact)
        expected = [reference.recommend(u, k=6) for u in users]

        cfg = ResilienceConfig(deadline=30.0, retry_limit=1, max_pending=64)
        with ShardedService(artifact, n_workers=3, resilience=cfg) as service:
            assert service.wait_ready(timeout=30.0)
            futures = [service.submit(u, k=6) for u in users]
            results = [f.result(timeout=30.0) for f in futures]

        for want, got in zip(expected, results):
            assert not got.degraded
            assert np.array_equal(want.items, got.items)
            assert np.array_equal(want.scores, got.scores)
        # Invariant the whole suite leans on: only the winning resolver
        # counts, so responses reconcile exactly with what callers saw.
        # (service is closed; counters were merged on the way out)

    def test_deadline_requires_resilience(self, artifact):
        with ShardedService(artifact, n_workers=1) as service:
            assert service.wait_ready(timeout=30.0)
            with pytest.raises(ValueError, match="resilience config"):
                service.submit(0, deadline=time.time() + 1.0)


class TestWorkerKillMidBurst:
    def test_availability_through_a_crash(self, artifact):
        """The acceptance scenario: kill one worker mid-burst, >=99% answered."""
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash", shard=0, at=3, incarnation=0),),
            seed=7,
        )
        cfg = ResilienceConfig(
            deadline=20.0, retry_limit=2, failure_threshold=100, fallback=True
        )
        users = [u % 20 for u in range(60)]
        with ShardedService(
            artifact,
            n_workers=2,
            max_batch=2,
            max_wait_ms=1.0,
            heartbeat_interval=0.1,
            resilience=cfg,
            fault_plan=plan,
        ) as service:
            assert service.wait_ready(timeout=30.0)
            futures = [service.submit(u, k=5) for u in users]
            results = [f.result(timeout=30.0) for f in futures]

            # Availability: every offered request got an answer in time.
            assert len(results) == len(users)
            answered = sum(1 for r in results if len(r) == 5)
            assert answered / len(users) >= 0.99

            ok, degraded = _tally(results)
            counters = _settled_counters(service, len(users))
            # Front-end accepted count (the merged "serve.requests" also
            # folds in worker-side per-flush tallies, including retries).
            assert service.stats()["requests"] == len(users)
            assert counters.get("serve.responses.ok", 0) == ok
            assert counters.get("serve.responses.degraded", 0) == degraded
            assert counters.get("serve.responses.error", 0) == 0
            # The injected crash really happened and was survived.
            assert service.stats()["restarts"] >= 1
            assert ok > 0  # the surviving shard + replacement kept answering

    def test_crash_replays_identically(self, artifact):
        """Same plan, same stream, same restart count — seeded chaos."""
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash", shard=0, at=2, incarnation=0),),
            seed=3,
        )
        cfg = ResilienceConfig(deadline=20.0, retry_limit=2, failure_threshold=100)

        def run():
            with ShardedService(
                artifact,
                n_workers=2,
                max_batch=2,
                max_wait_ms=1.0,
                heartbeat_interval=0.1,
                resilience=cfg,
                fault_plan=plan,
            ) as service:
                assert service.wait_ready(timeout=30.0)
                futures = [service.submit(u, k=4) for u in range(16)]
                results = [f.result(timeout=30.0) for f in futures]
                return [tuple(r.items.tolist()) for r in results], service.stats()[
                    "restarts"
                ]

        items_a, restarts_a = run()
        items_b, restarts_b = run()
        assert restarts_a == restarts_b == 1
        assert items_a == items_b


class TestAdaptationFailure:
    def test_persistent_failure_opens_the_breaker_and_degrades(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="adapt_error", shard=0, count=0),), seed=1
        )
        cfg = ResilienceConfig(
            deadline=20.0,
            retry_limit=0,
            failure_threshold=3,
            reset_timeout=60.0,
            fallback=True,
        )
        with ShardedService(
            artifact,
            n_workers=2,
            max_wait_ms=1.0,
            resilience=cfg,
            fault_plan=plan,
        ) as service:
            assert service.wait_ready(timeout=30.0)
            # Sequential distinct users on shard 0: every request is a cache
            # miss, every flush adapts, every adaptation raises.
            shard0 = [service.submit(u, k=5).result(30.0) for u in (0, 2, 4, 6, 8)]
            shard1 = service.submit(1, k=5).result(30.0)

            assert all(r.degraded for r in shard0)
            assert all(len(r) == 5 for r in shard0)  # fallback still answers
            assert not shard1.degraded

            counters = _settled_counters(service, 6)
            # 3 RPC failures open the breaker; the last 2 are rejected at
            # admission and never reach the worker.
            assert counters.get("serve.breaker.opened", 0) == 1
            assert counters.get("serve.degraded.failure", 0) == 3
            assert counters.get("serve.degraded.breaker", 0) == 2
            assert counters.get("serve.breaker.rejected", 0) == 2
            assert counters.get("serve.responses.degraded", 0) == 5
            assert counters.get("serve.responses.ok", 0) == 1
            # The worker's own registry reports what was injected.
            assert counters.get("serve.faults.adapt_error", 0) == 3
            assert counters.get("serve.faults.injected", 0) == 3

            health = service.health()
            assert health["status"] == "degraded"
            assert health["fallback"] is True
            by_shard = {entry["shard"]: entry for entry in health["shards"]}
            assert by_shard[0]["breaker"] == "open"
            assert by_shard[1]["breaker"] == "closed"

    def test_fallback_disabled_surfaces_typed_errors(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="adapt_error", shard=0, count=0),), seed=1
        )
        cfg = ResilienceConfig(
            deadline=20.0, retry_limit=0, failure_threshold=100, fallback=False
        )
        with ShardedService(
            artifact, n_workers=1, max_wait_ms=1.0, resilience=cfg, fault_plan=plan
        ) as service:
            assert service.wait_ready(timeout=30.0)
            future = service.submit(0, k=5)
            with pytest.raises(RuntimeError, match="InjectedFault"):
                future.result(timeout=30.0)
            counters = _settled_counters(service, 1)
            assert counters.get("serve.responses.error", 0) == 1
            assert counters.get("serve.failed.failure", 0) == 1


class TestDeadlines:
    def test_slow_adaptation_degrades_within_the_deadline(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="adapt_delay", seconds=2.0, count=0),), seed=2
        )
        cfg = ResilienceConfig(
            deadline=0.4, retry_limit=0, failure_threshold=100, fallback=True
        )
        with ShardedService(
            artifact,
            n_workers=1,
            max_batch=8,
            max_wait_ms=1.0,
            resilience=cfg,
            fault_plan=plan,
        ) as service:
            assert service.wait_ready(timeout=30.0)
            t0 = time.monotonic()
            futures = [service.submit(u, k=5) for u in (0, 1)]
            results = [f.result(timeout=30.0) for f in futures]
            elapsed = time.monotonic() - t0

            # Answers arrived near the 0.4s budget, not the 2s worker stall.
            assert elapsed < 1.8
            assert all(r.degraded for r in results)
            assert all(len(r) == 5 for r in results)
            counters = _settled_counters(service, 2)
            assert counters.get("serve.responses.degraded", 0) == 2
            assert counters.get("serve.degraded.deadline", 0) == 2
            assert counters.get("serve.deadline_exceeded", 0) == 2

    def test_deadline_pressure_does_not_open_the_breaker(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="adapt_delay", seconds=1.0, count=0),), seed=2
        )
        cfg = ResilienceConfig(
            deadline=0.3, retry_limit=0, failure_threshold=1, fallback=True
        )
        with ShardedService(
            artifact, n_workers=1, max_wait_ms=1.0, resilience=cfg, fault_plan=plan
        ) as service:
            assert service.wait_ready(timeout=30.0)
            result = service.submit(0, k=5).result(timeout=30.0)
            assert result.degraded
            # Let the stalled RPC round-trip: it must count as a breaker
            # *success* (the worker answered; the deadline was ours).
            time.sleep(1.5)
            assert service.health()["shards"][0]["breaker"] == "closed"
            assert _counters(service).get("serve.breaker.opened", 0) == 0


class TestAdmissionControl:
    def test_overflow_is_shed_to_the_fallback(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="rpc_delay", seconds=0.4, count=0),), seed=4
        )
        cfg = ResilienceConfig(
            max_pending=1, retry_limit=0, failure_threshold=100, fallback=True
        )
        with ShardedService(
            artifact,
            n_workers=1,
            max_batch=1,
            max_wait_ms=0.5,
            resilience=cfg,
            fault_plan=plan,
        ) as service:
            assert service.wait_ready(timeout=30.0)
            futures = [service.submit(u, k=5) for u in range(6)]
            results = [f.result(timeout=30.0) for f in futures]

            ok, degraded = _tally(results)
            assert ok == 1 and degraded == 5
            counters = _settled_counters(service, 6)
            assert counters.get("serve.shed", 0) == 5
            assert counters.get("serve.degraded.shed", 0) == 5
            assert counters.get("serve.responses.ok", 0) == 1
            assert counters.get("serve.responses.degraded", 0) == 5


class TestStartupFailure:
    def test_wait_ready_fails_fast_on_load_crash_loop(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="load_error", shard=0, count=0),), seed=5
        )
        service = ShardedService(
            artifact, n_workers=2, heartbeat_interval=0.1, fault_plan=plan
        )
        try:
            t0 = time.monotonic()
            with pytest.raises(RuntimeError, match="failed to start"):
                service.wait_ready(timeout=30.0)
            # Fail-fast, not a 30s hang: two load attempts at most.
            assert time.monotonic() - t0 < 20.0
            health = service.health()
            assert health["status"] == "degraded"  # shard 1 still serves
            by_shard = {entry["shard"]: entry for entry in health["shards"]}
            assert "InjectedFault" in by_shard[0]["failed"]
            assert by_shard[1]["failed"] is None
            counters = service.metrics.snapshot().get("counters", {})
            assert counters.get("serve.startup_failures", 0) >= 2
        finally:
            service.close()

    def test_failed_shard_requests_degrade_not_hang(self, artifact):
        plan = FaultPlan(
            faults=(FaultSpec(kind="load_error", shard=0, count=0),), seed=5
        )
        cfg = ResilienceConfig(deadline=20.0, fallback=True, failure_threshold=100)
        service = ShardedService(
            artifact,
            n_workers=2,
            heartbeat_interval=0.1,
            resilience=cfg,
            fault_plan=plan,
        )
        try:
            with pytest.raises(RuntimeError, match="failed to start"):
                service.wait_ready(timeout=30.0)
            # Shard 0 is permanently down; its users still get answers.
            dead = service.submit(0, k=5).result(timeout=30.0)
            live = service.submit(1, k=5).result(timeout=30.0)
            assert dead.degraded and len(dead) == 5
            assert not live.degraded
            counters = _settled_counters(service, 2)
            assert counters.get("serve.degraded.failure", 0) == 1
        finally:
            service.close()
