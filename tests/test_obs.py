"""The observability subsystem: registry, histograms, spans, profiler.

The load-bearing property is *exact cross-process merging*: every
histogram shares one fixed log-bucket layout, so snapshots taken in
different workers merge by integer addition — ``merge(a, b)`` must equal
observing the concatenated stream (hypothesis-checked below).  The rest
covers bucket-edge semantics, span nesting/reentrancy under threads,
disabled-mode no-ops, and the stats()-view mapping the serving tiers
rely on.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    BUCKET_EDGES,
    BUCKET_RATIO,
    BUCKETS_PER_DECADE,
    Histogram,
    MetricsRegistry,
    PhaseProfiler,
    active_spans,
    bucket_index,
    merge_phase_reports,
    merge_snapshots,
    strip_gauges,
)
from repro.service.service import service_stats_view


# ----------------------------------------------------------------------
# bucket layout
# ----------------------------------------------------------------------
class TestBuckets:
    def test_edges_are_fixed_and_monotone(self):
        assert np.all(np.diff(BUCKET_EDGES) > 0)
        ratios = BUCKET_EDGES[1:] / BUCKET_EDGES[:-1]
        assert np.allclose(ratios, BUCKET_RATIO)
        assert BUCKET_RATIO == pytest.approx(10 ** (1 / BUCKETS_PER_DECADE))

    def test_bucket_index_edge_semantics(self):
        # A value exactly on an edge lands in the bucket that edge closes.
        edge = float(BUCKET_EDGES[10])
        assert bucket_index(edge) == 10
        assert bucket_index(edge * 1.0001) == 11
        # Underflow and overflow buckets bracket the range.
        assert bucket_index(0.0) == 0
        assert bucket_index(float(BUCKET_EDGES[-1]) * 2) == len(BUCKET_EDGES)

    def test_typical_latencies_and_sizes_in_range(self):
        # Microseconds to minutes, and payload sizes up to 10M, all land
        # in interior buckets (not under/overflow).
        for value in (1e-6, 1e-3, 0.05, 2.0, 60.0, 1.0, 32.0, 1e7):
            assert 0 < bucket_index(value) < len(BUCKET_EDGES)


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_basic_accounting(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 1.0):
            h.observe(v)
        assert h.count == 4
        assert h.min == 0.001
        assert h.max == 1.0
        assert h.sum == pytest.approx(1.007)
        assert h.mean == pytest.approx(1.007 / 4)

    def test_observe_many_matches_observe(self):
        values = np.random.default_rng(0).lognormal(mean=-5, size=500)
        one = Histogram()
        for v in values:
            one.observe(float(v))
        many = Histogram()
        many.observe_many(values)
        assert np.array_equal(one.counts, many.counts)
        assert one.count == many.count
        assert one.min == many.min and one.max == many.max

    def test_percentile_within_one_bucket_of_truth(self):
        values = np.random.default_rng(1).lognormal(mean=-3, sigma=1.5, size=2000)
        h = Histogram()
        h.observe_many(values)
        for q in (50, 90, 99):
            est = h.percentile(q)
            true = float(np.percentile(values, q))
            # The documented bucket-resolution bound: same bucket ⇒ the
            # estimate is within one bucket ratio of the true quantile.
            assert true / BUCKET_RATIO <= est <= true * BUCKET_RATIO

    def test_percentile_empty_is_nan(self):
        assert np.isnan(Histogram().percentile(50))

    def test_snapshot_roundtrip_is_json_safe(self):
        h = Histogram()
        h.observe_many([0.01, 0.02, 5.0])
        snap = json.loads(json.dumps(h.to_snapshot()))
        back = Histogram.from_snapshot(snap)
        assert np.array_equal(back.counts, h.counts)
        assert (back.count, back.sum, back.min, back.max) == (
            h.count,
            h.sum,
            h.min,
            h.max,
        )


@settings(max_examples=60, deadline=None)
@given(
    a=st.lists(st.integers(min_value=1, max_value=10**9), max_size=60),
    b=st.lists(st.integers(min_value=1, max_value=10**9), max_size=60),
)
def test_merge_equals_concatenated_stream(a, b):
    """merge(observe(a), observe(b)) == observe(a + b), exactly.

    Integer observations keep even the float ``sum`` exact (all values
    and totals are far below 2**53), so equality here is ``==``, not
    approx — the cross-process merge contract.
    """
    ha, hb, hab = Histogram(), Histogram(), Histogram()
    for v in a:
        ha.observe(v)
    for v in b:
        hb.observe(v)
    for v in a + b:
        hab.observe(v)
    ha.merge(hb)
    assert np.array_equal(ha.counts, hab.counts)
    assert ha.count == hab.count
    assert ha.sum == hab.sum
    assert ha.min == hab.min and ha.max == hab.max
    for q in (50, 95):
        if hab.count:
            assert ha.percentile_bucket(q) == hab.percentile_bucket(q)


@settings(max_examples=30, deadline=None)
@given(
    streams=st.lists(
        st.lists(st.integers(min_value=1, max_value=10**6), max_size=30),
        min_size=1,
        max_size=4,
    )
)
def test_merge_snapshots_equals_one_registry(streams):
    """N per-process snapshots merge to what one process would have seen."""
    registries = [MetricsRegistry(enabled=True) for _ in streams]
    combined = MetricsRegistry(enabled=True)
    for reg, stream in zip(registries, streams):
        for v in stream:
            reg.observe("lat", v)
            reg.inc("n")
            combined.observe("lat", v)
            combined.inc("n")
    merged = merge_snapshots(*(r.snapshot() for r in registries))
    expected = combined.snapshot()
    assert merged["counters"] == expected["counters"]
    assert merged["histograms"] == expected["histograms"]


# ----------------------------------------------------------------------
# registry + spans
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_gauges_collectors(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 7)
        reg.inc_gauge("g", -2)
        reg.add_collector(lambda r: r.set_counter("pulled", 42))
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 5, "pulled": 42}
        assert snap["gauges"] == {"g": 5}

    def test_span_records_seconds_and_size(self):
        reg = MetricsRegistry(enabled=True)
        with reg.span("work", size=16):
            pass
        snap = reg.snapshot()
        assert snap["histograms"]["work.seconds"]["count"] == 1
        assert snap["histograms"]["work.size"]["count"] == 1
        assert reg.histogram("work.seconds").max < 1.0

    def test_span_nesting_and_reentrancy(self):
        reg = MetricsRegistry(enabled=True)
        with reg.span("outer"):
            assert active_spans() == ("outer",)
            with reg.span("inner"):
                assert active_spans() == ("outer", "inner")
                with reg.span("outer"):  # re-entering the same name is fine
                    assert active_spans() == ("outer", "inner", "outer")
        assert active_spans() == ()
        snap = reg.snapshot()
        assert snap["histograms"]["outer.seconds"]["count"] == 2
        assert snap["histograms"]["inner.seconds"]["count"] == 1

    def test_spans_and_observes_under_threads(self):
        reg = MetricsRegistry(enabled=True)
        n_threads, per_thread = 8, 200
        stacks_ok = []

        def work(tid: int) -> None:
            ok = True
            for _ in range(per_thread):
                with reg.span("t.outer"):
                    ok &= active_spans() == ("t.outer",)
                    with reg.span("t.inner"):
                        ok &= active_spans() == ("t.outer", "t.inner")
                reg.inc("t.count")
            ok &= active_spans() == ()
            stacks_ok.append(ok)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(stacks_ok)
        snap = reg.snapshot()
        total = n_threads * per_thread
        # Exact totals under concurrency: the registry lock loses nothing.
        assert snap["counters"]["t.count"] == total
        assert snap["histograms"]["t.outer.seconds"]["count"] == total
        assert snap["histograms"]["t.inner.seconds"]["count"] == total

    def test_disabled_mode_is_noop_for_hot_paths(self):
        reg = MetricsRegistry(enabled=False)
        span = reg.span("x", size=3)
        with span:
            pass
        reg.observe("y", 1.0)
        snap = reg.snapshot()
        assert snap["histograms"] == {}
        # The same null singleton every time — no per-call allocation.
        assert reg.span("z") is reg.span("w")
        # Counters/gauges/collectors keep working: stats() views built on
        # the registry stay truthful with observability off.
        reg.inc("c")
        assert reg.snapshot()["counters"] == {"c": 1}

    def test_strip_gauges(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("kept")
        reg.set_gauge("dropped", 9)
        stripped = strip_gauges(reg.snapshot())
        assert stripped["counters"] == {"kept": 1}
        assert stripped["gauges"] == {}

    def test_merged_gauges_sum(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.set_gauge("depth", 2)
        b.set_gauge("depth", 3)
        assert merge_snapshots(a.snapshot(), b.snapshot())["gauges"] == {
            "depth": 5
        }


def test_service_stats_view_maps_metric_names():
    reg = MetricsRegistry(enabled=True)
    reg.inc("serve.requests", 7)
    reg.inc("serve.adapt.batches", 2)
    reg.inc("serve.adapt.users", 5)
    reg.set_gauge("serve.adapt.pending", 1)
    reg.set_counter("serve.cache.hits", 3)
    reg.set_gauge("serve.cache.size", 4)
    view = service_stats_view(reg.snapshot())
    assert view["requests"] == 7
    assert view["adaptation"] == {"batches": 2, "users": 5, "pending": 1}
    assert view["cache"]["hits"] == 3 and view["cache"]["size"] == 4
    assert set(view) == {"requests", "cache", "adaptation", "stream"}
    assert set(view["cache"]) == {"size", "maxsize", "hits", "misses", "evictions"}
    assert set(view["stream"]) == {
        "events",
        "refreshes",
        "dirty_users",
        "observed_users",
    }


# ----------------------------------------------------------------------
# phase profiler
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_report_shape_and_accumulation(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("fit"):
                pass
        with prof.phase("score"):
            pass
        report = prof.report()
        assert report["fit"]["calls"] == 3
        assert report["score"]["calls"] == 1
        assert report["fit"]["wall_s"] >= 0
        assert report["fit"]["peak_rss_bytes"] > 0

    def test_disabled_profiler_records_nothing(self):
        prof = PhaseProfiler(enabled=False)
        with prof.phase("fit"):
            pass
        assert prof.report() == {}

    def test_merge_phase_reports(self):
        a = {"fit": {"calls": 1, "wall_s": 1.5, "peak_rss_bytes": 100}}
        b = {
            "fit": {"calls": 2, "wall_s": 0.5, "peak_rss_bytes": 300},
            "score": {"calls": 1, "wall_s": 0.1, "peak_rss_bytes": 50},
        }
        merged = merge_phase_reports(a, None, b)
        assert merged["fit"] == {
            "calls": 3,
            "wall_s": 2.0,
            "peak_rss_bytes": 300,
        }
        assert merged["score"]["calls"] == 1
