"""Baselines: gradient correctness of custom backward passes, fit/score contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CATN, CoNN, DAML, MeLU, MetaCF, NeuMF, Popularity, TDAR
from repro.baselines.base import domain_triples, train_supervised, warm_triples
from repro.data.splits import Scenario
from repro.nn import numerical_gradient, relative_error

ALL = [Popularity, NeuMF, MeLU, MetaCF, CoNN, DAML, TDAR, CATN]

FAST_KWARGS = {
    NeuMF: dict(epochs=2),
    MeLU: dict(meta_epochs=1),
    MetaCF: dict(meta_epochs=1),
    CoNN: dict(epochs=1),
    DAML: dict(epochs=1),
    TDAR: dict(epochs=1),
    CATN: dict(epochs=1),
    Popularity: {},
}


def _fast(cls, seed=0):
    return cls(seed=seed, **FAST_KWARGS[cls])


@pytest.fixture(scope="module")
def fitted_methods(bench_experiment):
    methods = {}
    for cls in ALL:
        method = _fast(cls)
        method.fit(bench_experiment.ctx)
        methods[cls.__name__] = method
    return methods


class TestFitScoreContract:
    @pytest.mark.parametrize("cls", ALL)
    def test_score_shape_and_finite(self, cls, fitted_methods, bench_experiment):
        method = fitted_methods[cls.__name__]
        for scenario in Scenario:
            instances = bench_experiment.instances[scenario]
            if not instances:
                continue
            inst = instances[0]
            task = next(
                (t for t in bench_experiment.task_sets[scenario] if t.user_row == inst.user_row),
                None,
            )
            scores = method.score(task, inst)
            assert scores.shape == inst.candidates.shape
            assert np.isfinite(scores).all()

    @pytest.mark.parametrize("cls", ALL)
    def test_score_before_fit_raises(self, cls, bench_experiment):
        inst = bench_experiment.instances[Scenario.WARM][0]
        with pytest.raises(RuntimeError):
            _fast(cls).score(None, inst)

    @pytest.mark.parametrize("cls", [Popularity, NeuMF, CoNN, CATN])
    def test_deterministic(self, cls, bench_experiment):
        inst = bench_experiment.instances[Scenario.WARM][0]

        def run():
            method = _fast(cls, seed=3)
            method.fit(bench_experiment.ctx)
            return method.score(None, inst)

        np.testing.assert_allclose(run(), run())

    def test_score_batch_alignment_validated(self, fitted_methods, bench_experiment):
        method = fitted_methods["Popularity"]
        inst = bench_experiment.instances[Scenario.WARM][0]
        with pytest.raises(ValueError):
            method.score_batch([None, None], [inst])


class TestPopularity:
    def test_ranks_by_visible_counts(self, bench_experiment):
        method = Popularity().fit(bench_experiment.ctx)
        counts = bench_experiment.ctx.visible_ratings.sum(axis=0)
        inst = bench_experiment.instances[Scenario.WARM][0]
        np.testing.assert_array_equal(method.score(None, inst), counts[inst.candidates])

    def test_new_items_have_zero_popularity(self, bench_experiment):
        method = Popularity().fit(bench_experiment.ctx)
        assert method._scores[bench_experiment.splits.new_items].sum() == 0.0


class TestNeuMFGradients:
    def test_grads_match_numerical(self, bench_experiment):
        method = NeuMF(embed_dim=4, hidden_dims=(6,), seed=0)
        domain = bench_experiment.domain
        method._build(domain.n_users, domain.n_items, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        users = rng.integers(0, domain.n_users, size=6)
        items = rng.integers(0, domain.n_items, size=6)
        labels = (rng.random(6) < 0.5).astype(float)
        _, grads = method._loss_grads(method.params, users, items, labels)
        for name in ["head.w", "mlp.0.W", "user_gmf.E", "item_mlp.E"]:
            def loss(p, name=name):
                saved = method.params[name]
                method.params[name] = p
                value = method._loss_grads(method.params, users, items, labels)[0]
                method.params[name] = saved
                return value

            num = numerical_gradient(loss, method.params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name


class TestDAMLGradients:
    def test_grads_match_numerical(self):
        method = DAML(embed_dim=4, hidden_dims=(5,), seed=0)
        method._build(content_dim=7, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        cu = rng.random((5, 7))
        ci = rng.random((5, 7))
        labels = (rng.random(5) < 0.5).astype(float)
        _, grads = method._loss_grads(method.params, cu, ci, labels)
        for name in ["Wu", "bi", "att_w", "fm_alpha", "mlp.0.W"]:
            def loss(p, name=name):
                saved = method.params[name]
                method.params[name] = p
                value = method._loss_grads(method.params, cu, ci, labels)[0]
                method.params[name] = saved
                return value

            num = numerical_gradient(loss, method.params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name


class TestTDARGradients:
    def test_bce_grads_match_numerical(self):
        method = TDAR(embed_dim=4, seed=0)
        method._build(content_dim=6, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        cu = rng.random((5, 6))
        ci = rng.random((5, 6))
        labels = (rng.random(5) < 0.5).astype(float)
        _, grads = method._bce_grads(method.params, cu, ci, labels)
        for name in ["Wu", "Wi", "bu", "bias"]:
            def loss(p, name=name):
                saved = method.params[name]
                method.params[name] = p
                value = method._bce_grads(method.params, cu, ci, labels)[0]
                method.params[name] = saved
                return value

            num = numerical_gradient(loss, method.params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name

    def test_align_grads_match_numerical(self):
        method = TDAR(embed_dim=4, seed=0)
        method._build(content_dim=6, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        ct = rng.random((4, 6))
        cs = rng.random((4, 6))
        _, grads = method._align_grads(method.params, ct, cs)
        for name in ["Wu", "bu"]:
            def loss(p, name=name):
                saved = method.params[name]
                method.params[name] = p
                value = method._align_grads(method.params, ct, cs)[0]
                method.params[name] = saved
                return value

            num = numerical_gradient(loss, method.params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name


class TestCATNGradients:
    def test_grads_match_numerical(self):
        method = CATN(n_aspects=4, scale=2.0, seed=0)
        method._build(content_dim=6, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        cu = rng.random((5, 6))
        ci = rng.random((5, 6))
        labels = (rng.random(5) < 0.5).astype(float)
        _, grads = method._bce_grads(method.params, cu, ci, labels)
        for name in ["Au", "Ai", "M", "bias"]:
            def loss(p, name=name):
                saved = method.params[name]
                method.params[name] = p
                value = method._bce_grads(method.params, cu, ci, labels)[0]
                method.params[name] = saved
                return value

            num = numerical_gradient(loss, method.params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name


class TestMetaCFGradients:
    def test_grads_match_numerical(self):
        method = MetaCF(embed_dim=3, hidden_dims=(4,), seed=0)
        method._build(n_items=9, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        profile = np.array([0, 2, 5])
        items = np.array([1, 3, 5, 7])
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        _, grads = method._loss_grads(method.params, profile, items, labels)
        for name in ["E", "mlp.0.W"]:
            def loss(p, name=name):
                saved = method.params[name]
                method.params[name] = p
                value = method._loss_grads(method.params, profile, items, labels)[0]
                method.params[name] = saved
                return value

            num = numerical_gradient(loss, method.params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name

    def test_profile_extension_adds_cooccurring(self, bench_experiment):
        method = MetaCF(meta_epochs=1, n_potential=2, seed=0)
        method.fit(bench_experiment.ctx)
        positives = np.array([int(bench_experiment.splits.existing_items[0])])
        extended = method._extend_profile(positives)
        assert extended.size >= positives.size
        assert positives[0] in extended


class TestMeLU:
    def test_finetuning_changes_scores(self, bench_experiment):
        method = MeLU(meta_epochs=1, finetune_steps=5, seed=0)
        method.fit(bench_experiment.ctx)
        scenario = Scenario.C_U
        inst = bench_experiment.instances[scenario][0]
        task = next(
            t for t in bench_experiment.task_sets[scenario] if t.user_row == inst.user_row
        )
        with_ft = method.score(task, inst)
        without_ft = method.score(None, inst)
        assert not np.allclose(with_ft, without_ft)

    def test_decision_only_by_default(self):
        method = MeLU()
        assert method.maml_config.local_only_decision


class TestBaseHelpers:
    def test_warm_triples_support_only(self, bench_experiment):
        users, items, labels = warm_triples(bench_experiment.ctx.warm_tasks)
        n_support = sum(t.n_support for t in bench_experiment.ctx.warm_tasks)
        assert users.size == items.size == labels.size == n_support

    def test_warm_triples_with_query(self, bench_experiment):
        _, _, labels = warm_triples(bench_experiment.ctx.warm_tasks, include_query=True)
        total = sum(
            t.n_support + t.n_query for t in bench_experiment.ctx.warm_tasks
        )
        assert labels.size == total

    def test_domain_triples_labels_match_matrix(self, bench_experiment):
        ratings = bench_experiment.domain.ratings
        users, items, labels = domain_triples(
            ratings, n_neg_per_pos=2, rng=np.random.default_rng(0), max_users=10
        )
        for u, i, y in zip(users[:50], items[:50], labels[:50]):
            assert ratings[u, i] == y

    def test_train_supervised_converges(self):
        params = {"x": np.array([0.0])}

        def loss_grad_fn(batch):
            diff = params["x"][0] - 3.0
            return diff * diff, {"x": np.array([2.0 * diff])}

        history = train_supervised(
            params, loss_grad_fn, n_samples=10, epochs=50, batch_size=5, lr=0.1
        )
        assert history[-1] < history[0]
        assert params["x"][0] == pytest.approx(3.0, abs=0.05)

    def test_train_supervised_validates(self):
        with pytest.raises(ValueError):
            train_supervised({}, lambda b: (0.0, {}), n_samples=0, epochs=1)
