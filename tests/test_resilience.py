"""Unit tests for the resilience primitives: fault plans, breakers, fallback.

Everything here is in-process and fast — the injector's trigger logic, the
breaker state machine (driven by a fake clock), the popularity fallback's
scoring, and the deadline plumbing through ``recommend_batch``.  The
cross-process chaos scenarios live in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.popularity import Popularity
from repro.core.interface import FitContext
from repro.serve.faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    PopularityFallback,
    ResilienceConfig,
)
from repro.service.service import DeadlineSkipped, ServeRequest


class TestFaultSpec:
    def test_round_trips_through_dict(self):
        spec = FaultSpec(
            kind="rpc_delay", shard=1, at=3, count=2, seconds=0.5, incarnation=0
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_kind_and_keys(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")
        with pytest.raises(ValueError, match="unknown FaultSpec keys"):
            FaultSpec.from_dict({"kind": "crash", "blast_radius": 3})

    @pytest.mark.parametrize(
        "bad",
        [
            {"kind": "crash", "at": 0},
            {"kind": "crash", "count": -1},
            {"kind": "rpc_delay", "seconds": -0.1},
            {"kind": "crash", "probability": 1.5},
            {"kind": "crash", "incarnation": -1},
        ],
    )
    def test_validates_fields(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)

    def test_every_kind_maps_to_an_event(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).event in ("rpc", "adapt", "load")


class TestFaultPlan:
    def test_json_round_trip_coerces_plain_dicts(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 11,
                "faults": [
                    {"kind": "crash", "shard": 0, "at": 5},
                    {"kind": "adapt_delay", "seconds": 0.2, "count": 0},
                ],
            }
        )
        assert plan.seed == 11
        assert all(isinstance(f, FaultSpec) for f in plan.faults)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(FaultSpec(kind="crash"),))

    def test_injector_filters_by_shard_and_incarnation(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash", shard=0, incarnation=0),
                FaultSpec(kind="adapt_error", shard=1),
            )
        )
        assert plan.injector(0) is not None
        assert plan.injector(0, incarnation=1) is None  # crash was once-only
        assert plan.injector(1, incarnation=7) is not None  # any incarnation
        assert plan.injector(2) is None

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1)


class _FakeConn:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestFaultInjector:
    def test_at_and_count_window(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="adapt_error", at=2, count=2),)
        )
        injector = plan.injector(0)
        injector.on_adapt()  # event 1: before the window
        with pytest.raises(InjectedFault):
            injector.on_adapt()  # event 2: fires
        with pytest.raises(InjectedFault):
            injector.on_adapt()  # event 3: fires (count=2)
        injector.on_adapt()  # event 4: window exhausted
        assert injector.injected == {"adapt_error": 2}

    def test_count_zero_fires_forever(self):
        plan = FaultPlan(faults=(FaultSpec(kind="adapt_error", count=0),))
        injector = plan.injector(0)
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.on_adapt()
        assert injector.injected["adapt_error"] == 5

    def test_pipe_drop_closes_the_connection(self):
        plan = FaultPlan(faults=(FaultSpec(kind="pipe_drop", at=2),))
        injector = plan.injector(0)
        conn = _FakeConn()
        injector.on_rpc(conn)
        assert not conn.closed
        injector.on_rpc(conn)
        assert conn.closed

    def test_load_error_raises(self):
        plan = FaultPlan(faults=(FaultSpec(kind="load_error"),))
        with pytest.raises(InjectedFault):
            plan.injector(0).on_load()

    def test_probabilistic_faults_replay_identically(self):
        spec = FaultSpec(kind="adapt_error", count=0, probability=0.5)
        plan = FaultPlan(faults=(spec,), seed=123)

        def firing_pattern():
            injector = plan.injector(0)
            pattern = []
            for _ in range(40):
                try:
                    injector.on_adapt()
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert any(first) and not all(first)  # actually probabilistic

    def test_probability_streams_differ_across_shards(self):
        spec = FaultSpec(kind="adapt_error", count=0, probability=0.5)
        plan = FaultPlan(faults=(spec,), seed=9)

        def pattern(shard):
            injector = FaultInjector(plan, shard)
            out = []
            for _ in range(40):
                try:
                    injector.on_adapt()
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert pattern(0) != pattern(1)


class TestResilienceConfig:
    def test_round_trips_through_dict(self):
        cfg = ResilienceConfig(
            deadline=0.25, failure_threshold=3, max_pending=16, retry_limit=2
        )
        assert ResilienceConfig.from_dict(cfg.to_dict()) == cfg

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ResilienceConfig keys"):
            ResilienceConfig.from_dict({"dedline": 1.0})

    @pytest.mark.parametrize(
        "bad",
        [
            {"deadline": 0.0},
            {"failure_threshold": 0},
            {"reset_timeout": -1.0},
            {"half_open_probes": 0},
            {"max_pending": -1},
            {"retry_limit": -1},
            {"backoff_base": -0.1},
            {"backoff_jitter": 1.5},
        ],
    )
    def test_validates_fields(self, bad):
        with pytest.raises(ValueError):
            ResilienceConfig(**bad)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 2),
            reset_timeout=kwargs.pop("reset_timeout", 10.0),
            half_open_probes=kwargs.pop("half_open_probes", 1),
            clock=lambda: clock["now"],
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        return breaker, clock, transitions

    def test_opens_after_consecutive_failures(self):
        breaker, _, transitions = self._breaker()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert transitions == [(BREAKER_CLOSED, BREAKER_OPEN)]

    def test_success_resets_the_failure_streak(self):
        breaker, _, _ = self._breaker()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_success_closes(self):
        breaker, clock, transitions = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert transitions == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_half_open_probe_failure_reopens_and_rearms_the_clock(self):
        breaker, clock, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock["now"] = 15.0  # reset_timeout counts from the probe failure
        assert not breaker.allow()
        clock["now"] = 20.0
        assert breaker.allow()

    def test_half_open_admits_a_bounded_number_of_probes(self):
        breaker, clock, _ = self._breaker(half_open_probes=2)
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # third concurrent probe rejected
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED


def _fit_popularity(bench_experiment):
    method = Popularity()
    ctx: FitContext = bench_experiment.ctx
    method.fit(ctx)
    return method, ctx


class TestPopularityFallback:
    def test_matches_the_popularity_baseline(self, bench_experiment):
        method, _ = _fit_popularity(bench_experiment)
        fallback = PopularityFallback(
            method.state_dict()["scores"], method.serving.seen
        )
        want = method.recommend(3, k=5)
        got = fallback.recommend(3, k=5)
        assert got.degraded and not want.degraded
        assert np.array_equal(want.items, got.items)
        assert np.array_equal(want.scores, got.scores)

    def test_excludes_seen_items(self, bench_experiment):
        method, _ = _fit_popularity(bench_experiment)
        seen = method.serving.seen
        user = int(np.argmax(seen.sum(axis=1)))  # someone with history
        fallback = PopularityFallback(method.state_dict()["scores"], seen)
        result = fallback.recommend(user, k=seen.shape[1])
        assert not seen[user, result.items].any()
        unfiltered = fallback.recommend(user, k=10, exclude_seen=False)
        assert len(unfiltered) == 10

    def test_candidate_pool_restricts_answers(self, bench_experiment):
        method, _ = _fit_popularity(bench_experiment)
        pool = np.array([1, 3, 5, 7, 9])
        fallback = PopularityFallback(
            method.state_dict()["scores"],
            np.zeros_like(method.serving.seen),
            candidate_pool=pool,
        )
        result = fallback.recommend(0, k=20)
        assert set(result.items) <= set(pool.tolist())

    def test_from_artifact_reads_the_stored_prior(self, bench_experiment, tmp_path):
        method, _ = _fit_popularity(bench_experiment)
        path = method.save(tmp_path / "pop.npz")
        fallback = PopularityFallback.from_artifact(path)
        want = method.recommend(2, k=8)
        got = fallback.recommend(2, k=8)
        assert got.degraded
        assert np.array_equal(want.items, got.items)

    def test_from_artifact_without_prior_counts_seen(self, tmp_path):
        # Artifacts written before serving.popularity existed: the fallback
        # derives the prior from the seen matrix instead.
        from repro.nn.serialization import save_params

        seen = np.zeros((4, 6), dtype=np.uint8)
        seen[0, 1] = seen[1, 1] = seen[2, 1] = 1  # item 1 most popular
        seen[0, 4] = seen[1, 4] = 1  # item 4 second
        path = save_params(
            tmp_path / "old.npz", {"serving.seen": seen}, config={"format": 1}
        )
        fallback = PopularityFallback.from_artifact(path)
        result = fallback.recommend(3, k=2)
        assert result.items.tolist() == [1, 4]


class TestDeadlineSkipping:
    @pytest.fixture()
    def service(self, bench_experiment):
        from repro.service import RecommenderService

        method = Popularity()
        method.fit(bench_experiment.ctx)
        return RecommenderService(method)

    def test_expired_request_is_skipped_not_scored(self, service):
        results = service.recommend_batch(
            [
                ServeRequest(0, k=3),
                ServeRequest(1, k=3, deadline=1.0),  # 1970: long expired
            ]
        )
        assert not isinstance(results[0], DeadlineSkipped)
        assert results[1] == DeadlineSkipped(1)
        assert service.metrics.counter("serve.deadline_skipped") == 1

    def test_future_deadline_serves_normally(self, service):
        import time

        results = service.recommend_batch(
            [ServeRequest(0, k=3, deadline=time.time() + 60.0)]
        )
        assert not isinstance(results[0], DeadlineSkipped)
        assert len(results[0]) == 3
        assert service.metrics.counter("serve.deadline_skipped") == 0

    def test_skipped_neighbours_leave_answers_bit_identical(
        self, service, bench_experiment
    ):
        from repro.service import RecommenderService

        fresh = RecommenderService(Popularity().fit(bench_experiment.ctx))
        mixed = service.recommend_batch(
            [
                ServeRequest(2, k=5),
                ServeRequest(3, k=5, deadline=1.0),
                ServeRequest(4, k=5),
            ]
        )
        clean = fresh.recommend_batch(
            [ServeRequest(2, k=5), ServeRequest(4, k=5)]
        )
        assert np.array_equal(mixed[0].items, clean[0].items)
        assert np.array_equal(mixed[0].scores, clean[0].scores)
        assert np.array_equal(mixed[2].items, clean[1].items)
        assert np.array_equal(mixed[2].scores, clean[1].scores)


class TestAdaptHook:
    def test_hook_sees_every_batched_adaptation(self, bench_experiment):
        from repro.service import RecommenderService

        calls = []
        service = RecommenderService(
            Popularity().fit(bench_experiment.ctx),
            adapt_hook=lambda n: calls.append(n),
        )
        service.recommend_batch([ServeRequest(0), ServeRequest(1)])
        assert calls == [2]
        service.recommend(0)  # cached: no new adaptation
        assert calls == [2]

    def test_hook_error_propagates_without_partial_state(self, bench_experiment):
        from repro.service import RecommenderService

        def hook(n):
            raise InjectedFault("boom")

        service = RecommenderService(
            Popularity().fit(bench_experiment.ctx), adapt_hook=hook
        )
        with pytest.raises(InjectedFault):
            service.recommend_batch([ServeRequest(0)])
        assert service.metrics.counter("serve.adapt.batches") == 0
