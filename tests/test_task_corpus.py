"""Packed task corpus: construction invariants and packed == materialized.

Two layers of guarantees:

1. **Structural** — offset/bucket bookkeeping on ragged task sets, label
   views aliasing (never copying) their parent's index arrays, zero-copy
   view access, empty-support tasks.
2. **Numerical** — the packed data path (``MAMLConfig.packed=True``:
   fancy-indexed batches, gather-on-forward content, broadcast user rows)
   reproduces the materialized :class:`TaskBatchItem` reference
   (``packed=False``) through identical schedules: per-step losses,
   gradients, Adam state and full ``fit`` traces agree to float32
   rounding.  Both runs draw their schedules from identically seeded
   generators (the repo's pre-drawn rng-stream convention), so only the
   data path differs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.tasks import PreferenceTask
from repro.meta.corpus import (
    BatchScratch,
    TaskCorpusBuilder,
    pack_content,
)
from repro.meta.maml import MAML, MAMLConfig, TaskBatch, adapt_task_states
from repro.meta.model import PreferenceModel, PreferenceModelConfig

CONTENT_DIM = 5
N_ITEMS = 30
N_USERS = 8

# float32 rounding tolerances: packed and materialized differ only in the
# user-embedding reduction order (one embed + broadcast vs per-row copies).
RTOL = 2e-4
ATOL = 1e-5

seeds = st.integers(min_value=0, max_value=2**20)


def _content(seed: int = 0):
    rng = np.random.default_rng(seed)
    return pack_content(
        rng.random((N_USERS, CONTENT_DIM)), rng.random((N_ITEMS, CONTENT_DIM))
    )


def _task(
    rng: np.random.Generator, n_support: int | None = None, n_query: int | None = None
) -> PreferenceTask:
    n_s = int(rng.integers(0, 7)) if n_support is None else n_support
    n_q = int(rng.integers(1, 6)) if n_query is None else n_query
    return PreferenceTask(
        user_row=int(rng.integers(0, N_USERS)),
        support_items=rng.choice(N_ITEMS, size=n_s, replace=False).astype(int),
        support_labels=(rng.random(n_s) < 0.5).astype(float),
        query_items=rng.choice(N_ITEMS, size=n_q, replace=False).astype(int),
        query_labels=(rng.random(n_q) < 0.5).astype(float),
    )


def _corpus(seed: int, n_tasks: int, k_views: int = 2, allow_empty: bool = True):
    """A ragged corpus: n_tasks bases, each with k_views label-only views."""
    rng = np.random.default_rng(seed)
    builder = TaskCorpusBuilder(_content(seed))
    tasks = []
    for t in range(n_tasks):
        task = _task(rng, n_support=None if allow_empty else int(rng.integers(1, 7)))
        tasks.append(task)
        base = builder.add_task(task)
        for _ in range(k_views):
            builder.add_rating_view(base, rng.random(N_ITEMS))
    return builder.build(), tasks


def _model(content_dim: int = CONTENT_DIM) -> PreferenceModel:
    return PreferenceModel(
        PreferenceModelConfig(content_dim=content_dim, embed_dim=3, hidden_dims=(4,))
    )


def _assert_tree_close(actual, expected):
    assert set(actual) == set(expected)
    for name in expected:
        np.testing.assert_allclose(
            actual[name], expected[name], rtol=RTOL, atol=ATOL, err_msg=name
        )


class TestConstruction:
    def test_offsets_and_lens_match_tasks(self):
        corpus, tasks = _corpus(seed=0, n_tasks=6, k_views=2)
        assert corpus.n_tasks == len(tasks)
        assert corpus.n_views == len(tasks) * 3
        np.testing.assert_array_equal(
            corpus.support_lens, [t.n_support for t in tasks]
        )
        np.testing.assert_array_equal(corpus.query_lens, [t.n_query for t in tasks])
        assert corpus.support_offsets[0] == 0
        assert corpus.support_offsets[-1] == corpus.support_items.size
        assert np.all(np.diff(corpus.support_offsets) >= 0)
        np.testing.assert_array_equal(
            corpus.user_rows, [t.user_row for t in tasks]
        )

    def test_view_arrays_round_trip_and_zero_copy(self):
        corpus, tasks = _corpus(seed=1, n_tasks=5, k_views=1)
        for base, task in enumerate(tasks):
            view = int(np.flatnonzero(corpus.view_base == base)[0])
            row, s_items, s_labels, q_items, q_labels = corpus.view_arrays(view)
            assert row == task.user_row
            np.testing.assert_array_equal(s_items, task.support_items)
            np.testing.assert_allclose(s_labels, task.support_labels.astype(np.float32))
            np.testing.assert_array_equal(q_items, task.query_items)
            assert s_items.size == 0 or np.shares_memory(s_items, corpus.support_items)
            assert q_labels.size == 0 or np.shares_memory(
                q_labels, corpus.query_labels
            )

    def test_label_views_alias_parent_indices(self):
        """Augmented views cost label rows only — never an index copy."""
        rng = np.random.default_rng(2)
        builder = TaskCorpusBuilder(_content(2))
        for _ in range(4):
            builder.add_task(_task(rng, n_support=5, n_query=3))
        plain = builder.build()
        builder2 = TaskCorpusBuilder(_content(2))
        for _ in range(4):
            base = builder2.add_task(_task(rng, n_support=5, n_query=3))
            for _ in range(3):
                builder2.add_rating_view(base, rng.random(N_ITEMS))
        augmented = builder2.build()
        assert augmented.n_views == 4 * plain.n_views
        assert augmented.support_items.size == plain.support_items.size
        assert augmented.index_nbytes == plain.index_nbytes
        # Every view of one base reads the *same* pool slice.
        views = np.flatnonzero(augmented.view_base == 0)
        slices = [augmented.view_arrays(int(v))[1] for v in views]
        for other in slices[1:]:
            assert np.shares_memory(slices[0], other)

    def test_rating_view_reads_vector_at_task_indices(self):
        rng = np.random.default_rng(3)
        task = _task(rng, n_support=4, n_query=2)
        builder = TaskCorpusBuilder(_content(3))
        base = builder.add_task(task)
        vector = rng.random(N_ITEMS)
        builder.add_rating_view(base, vector)
        corpus = builder.build()
        _, _, s_labels, _, q_labels = corpus.view_arrays(1)
        np.testing.assert_allclose(
            s_labels, vector[task.support_items].astype(np.float32)
        )
        np.testing.assert_allclose(
            q_labels, vector[task.query_items].astype(np.float32)
        )

    def test_builder_validation(self):
        rng = np.random.default_rng(4)
        builder = TaskCorpusBuilder(_content(4))
        with pytest.raises(ValueError, match="empty corpus"):
            builder.build()
        base = builder.add_task(_task(rng, n_support=3, n_query=2))
        with pytest.raises(ValueError, match="unknown base"):
            builder.add_label_view(base + 1, np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError, match="support labels"):
            builder.add_label_view(base, np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError, match="query labels"):
            builder.add_label_view(base, np.zeros(3), np.zeros(5))

    def test_empty_support_task_gathers_zero_mask(self):
        rng = np.random.default_rng(5)
        builder = TaskCorpusBuilder(_content(5))
        builder.add_task(_task(rng, n_support=0, n_query=3))
        builder.add_task(_task(rng, n_support=4, n_query=2))
        corpus = builder.build()
        batch = corpus.gather_batch(np.array([0, 1]))
        np.testing.assert_array_equal(batch.support_mask[0], 0.0)
        np.testing.assert_array_equal(batch.support_labels[0], 0.0)
        assert batch.support_mask[1].sum() == 4
        # And the packed meta step handles it (zero grads for that task).
        maml = MAML(_model(), MAMLConfig(), seed=0)
        loss = maml.meta_step_corpus(corpus, np.array([0, 1]))
        assert np.isfinite(loss)

    def test_epoch_batches_partition_all_views(self):
        corpus, _ = _corpus(seed=6, n_tasks=7, k_views=2)
        rng = np.random.default_rng(0)
        seen = []
        for batch in corpus.epoch_batches(4, rng=rng):
            assert 0 < batch.size <= 4
            seen.append(batch)
        flat = np.concatenate(seen)
        assert flat.size == corpus.n_views
        np.testing.assert_array_equal(np.sort(flat), np.arange(corpus.n_views))

    def test_bucketed_batches_bound_padding(self):
        """Within a batch, widths never straddle a geometric bucket."""
        corpus, _ = _corpus(seed=7, n_tasks=16, k_views=0, allow_empty=False)
        rng = np.random.default_rng(1)
        for batch in corpus.epoch_batches(4, rng=rng, bucketed=True):
            widths = corpus.support_lens[corpus.view_base[batch]]
            hi, lo = widths.max(), max(widths.min(), 1)
            if batch.size > 1 and hi > 1:
                assert hi < 2 * lo + 2  # same power-of-two class (+boundary)

    def test_gather_batch_matches_materialized_padding(self):
        corpus, _ = _corpus(seed=8, n_tasks=5, k_views=2)
        ids = np.array([0, 3, 7, 11])
        batch = corpus.gather_batch(ids, scratch=BatchScratch())
        dense = TaskBatch.from_items(corpus.materialize(ids))
        np.testing.assert_array_equal(batch.support_mask, dense.support_mask)
        np.testing.assert_array_equal(batch.query_mask, dense.query_mask)
        np.testing.assert_array_equal(batch.support_labels, dense.support_labels)
        np.testing.assert_array_equal(batch.query_labels, dense.query_labels)
        # Gathered item content at real positions == the dense copies.
        content = corpus.content
        ci = content.item[batch.support_items] * batch.support_mask[..., None]
        np.testing.assert_array_equal(
            ci, dense.support_item * dense.support_mask[..., None]
        )

    def test_corpus_bytes_far_below_materialized(self):
        # Realistic content width (the toy dim of this file understates the
        # dense layout); the bench asserts the >=5x bar at full bench scale.
        rng = np.random.default_rng(9)
        content = pack_content(rng.random((N_USERS, 32)), rng.random((N_ITEMS, 32)))
        builder = TaskCorpusBuilder(content)
        for _ in range(12):
            base = builder.add_task(_task(rng, n_support=int(rng.integers(1, 7))))
            for _ in range(3):
                builder.add_rating_view(base, rng.random(N_ITEMS))
        corpus = builder.build()
        assert corpus.nbytes * 5 <= corpus.materialized_nbytes()


class TestPackedEquivalence:
    """The packed data path IS the materialized path, to float32 rounding."""

    @given(n_tasks=st.integers(1, 5), local_only=st.booleans(), seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_meta_step_corpus_matches_materialized(self, n_tasks, local_only, seed):
        corpus, _ = _corpus(seed=seed, n_tasks=n_tasks, k_views=2)
        config = dict(inner_lr=0.1, inner_steps=2, outer_lr=1e-2,
                      local_only_decision=local_only)
        packed = MAML(_model(), MAMLConfig(packed=True, **config), seed=seed)
        dense = MAML(_model(), MAMLConfig(packed=False, **config), seed=seed)
        _assert_tree_close(packed.params, dense.params)
        ids = np.arange(corpus.n_views)
        for _ in range(3):
            loss_p = packed.meta_step_corpus(corpus, ids)
            loss_d = dense.meta_step(corpus.materialize(ids))
            np.testing.assert_allclose(loss_p, loss_d, rtol=RTOL, atol=ATOL)
        _assert_tree_close(packed.params, dense.params)
        _assert_tree_close(packed._optimizer._m, dense._optimizer._m)
        _assert_tree_close(packed._optimizer._v, dense._optimizer._v)
        assert packed._optimizer._t == dense._optimizer._t

    @given(
        n_tasks=st.integers(1, 5),
        steps=st.integers(0, 3),
        local_only=st.booleans(),
        seed=seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_adapt_corpus_matches_adapt_many(self, n_tasks, steps, local_only, seed):
        corpus, _ = _corpus(
            seed=seed, n_tasks=n_tasks, k_views=1, allow_empty=False
        )
        maml = MAML(
            _model(),
            MAMLConfig(inner_lr=0.1, local_only_decision=local_only),
            seed=seed,
        )
        packed = maml.adapt_corpus(corpus, steps=steps, max_chunk=3)
        dense = maml.adapt_many(corpus.materialize(), steps=steps, max_chunk=3)
        for fast_p, fast_d in zip(packed, dense):
            _assert_tree_close(fast_p, fast_d)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_fit_trace_packed_matches_materialized(self, seed):
        corpus, _ = _corpus(seed=seed, n_tasks=4, k_views=2)
        config = dict(inner_lr=0.05, outer_lr=5e-3, meta_batch_size=3)
        packed = MAML(_model(), MAMLConfig(packed=True, **config), seed=seed)
        dense = MAML(_model(), MAMLConfig(packed=False, **config), seed=seed)
        trace_p = packed.fit(corpus, epochs=2)
        trace_d = dense.fit(corpus, epochs=2)
        np.testing.assert_allclose(trace_p, trace_d, rtol=RTOL, atol=ATOL)
        _assert_tree_close(packed.params, dense.params)

    def test_fit_corpus_honors_vectorize_false(self):
        """vectorize=False must route corpus fits through the scalar loop."""
        corpus, _ = _corpus(seed=21, n_tasks=3, k_views=1, allow_empty=False)
        config = dict(inner_lr=0.05, outer_lr=5e-3, meta_batch_size=2)
        vec = MAML(_model(), MAMLConfig(packed=True, **config), seed=5)
        scalar = MAML(
            _model(), MAMLConfig(packed=True, vectorize=False, **config), seed=5
        )

        def forbidden(*args, **kwargs):
            raise AssertionError("packed meta step ran despite vectorize=False")

        scalar.meta_step_corpus = forbidden  # type: ignore[method-assign]
        trace_s = scalar.fit(corpus, epochs=1)
        trace_v = vec.fit(corpus, epochs=1)
        np.testing.assert_allclose(trace_s, trace_v, rtol=RTOL, atol=ATOL)

    def test_adapt_task_states_packed_matches_materialized(self):
        rng = np.random.default_rng(11)
        content = _content(11)
        tasks = [_task(rng, n_support=int(rng.integers(1, 6))) for _ in range(6)]
        tasks = [tasks[0], None, tasks[1], tasks[0]] + tasks[2:]
        packed = MAML(_model(), MAMLConfig(packed=True), seed=3)
        dense = MAML(_model(), MAMLConfig(packed=False), seed=3)
        states_p = adapt_task_states(packed, content.user, content.item, tasks, 2)
        states_d = adapt_task_states(dense, content.user, content.item, tasks, 2)
        assert states_p[1] is None and states_d[1] is None
        assert states_p[0] is states_p[3]  # shared task -> shared dict
        for sp, sd in zip(states_p, states_d):
            if sp is None:
                assert sd is None
            else:
                _assert_tree_close(sp, sd)


class TestFitTraceGolden:
    def test_golden_fit_trace_regression(self):
        """Deterministic packed-vs-materialized loss trace, pinned tightly.

        The regression guard of the packed data path: same seed, same
        corpus, same epochs — the two flags must walk the same loss curve
        (and the curve must actually descend).
        """
        corpus, _ = _corpus(seed=1234, n_tasks=8, k_views=3, allow_empty=False)
        config = dict(inner_lr=0.05, outer_lr=5e-3, meta_batch_size=4)
        packed = MAML(_model(), MAMLConfig(packed=True, **config), seed=7)
        dense = MAML(_model(), MAMLConfig(packed=False, **config), seed=7)
        trace_p = packed.fit(corpus, epochs=4)
        trace_d = dense.fit(corpus, epochs=4)
        np.testing.assert_allclose(trace_p, trace_d, rtol=RTOL, atol=ATOL)
        assert trace_p[-1] < trace_p[0]
