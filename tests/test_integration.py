"""Integration: every registered method through the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interface import FitContext, training_visibility
from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.eval.protocol import evaluate_prepared
from repro.experiments import make_method, method_names


@pytest.fixture(scope="module")
def experiment(bench_dataset):
    return prepare_experiment(bench_dataset, "CDs", seed=1)


class TestEveryMethodEndToEnd:
    @pytest.mark.parametrize("name", sorted(method_names()))
    def test_fit_and_evaluate(self, name, experiment):
        method = make_method(name, seed=0, profile="fast")
        results = evaluate_prepared(method, experiment)
        assert set(results) == set(Scenario)
        for scenario, res in results.items():
            m = res.metrics
            assert m.n_trials > 0, scenario
            assert 0.0 <= m.ndcg <= 1.0
            assert 0.0 <= m.auc <= 1.0
            for scores in res.score_lists:
                assert np.isfinite(scores).all()


class TestTrainedBeatsChance:
    """Learned methods must clear the random baseline on warm-start AUC."""

    @pytest.mark.parametrize("name", ["MetaDPA", "MeLU", "NeuMF", "CoNN"])
    def test_warm_auc_above_chance(self, name, experiment):
        method = make_method(name, seed=0, profile="fast")
        results = evaluate_prepared(method, experiment)
        assert results[Scenario.WARM].metrics.auc > 0.52, name


class TestScenarioEnum:
    def test_user_item_flags(self):
        assert not Scenario.WARM.uses_new_users
        assert not Scenario.WARM.uses_new_items
        assert Scenario.C_U.uses_new_users and not Scenario.C_U.uses_new_items
        assert Scenario.C_I.uses_new_items and not Scenario.C_I.uses_new_users
        assert Scenario.C_UI.uses_new_users and Scenario.C_UI.uses_new_items

    def test_values_match_paper_labels(self):
        assert Scenario.WARM.value == "warm-start"
        assert Scenario.C_UI.value == "user&item cold-start"


class TestFitContext:
    def test_visible_ratings_lazy(self, bench_dataset):
        experiment = prepare_experiment(bench_dataset, "CDs", seed=0)
        ctx = FitContext(
            dataset=experiment.dataset,
            target_name="CDs",
            splits=experiment.splits,
            warm_tasks=experiment.task_sets[Scenario.WARM],
        )
        assert ctx.train_ratings is None
        visible = ctx.visible_ratings
        assert visible.shape == experiment.domain.ratings.shape
        np.testing.assert_array_equal(visible, experiment.ctx.train_ratings)

    def test_training_visibility_matches_supports(self, experiment):
        visible = training_visibility(
            experiment.domain.n_users,
            experiment.domain.n_items,
            experiment.ctx.warm_tasks,
        )
        total_support_pos = sum(
            int((t.support_labels > 0.5).sum()) for t in experiment.ctx.warm_tasks
        )
        assert int(visible.sum()) == total_support_pos

    def test_domain_property(self, experiment):
        assert experiment.ctx.domain.name == "CDs"


class TestCrossDomainMethodsUseSources:
    """TDAR/CATN actually read the source domains (not just the target)."""

    @pytest.mark.parametrize("name", ["TDAR", "CATN"])
    def test_source_data_changes_model(self, name, experiment, bench_dataset):
        full = make_method(name, seed=0, profile="fast")
        full.fit(experiment.ctx)

        # Re-fit on a context whose sources are emptied out.
        import dataclasses

        from repro.data.domain import MultiDomainDataset

        gutted_sources = {
            src_name: dataclasses.replace(
                src,
                ratings=np.zeros_like(src.ratings),
            )
            for src_name, src in experiment.dataset.sources.items()
        }
        gutted = MultiDomainDataset(
            vocab=experiment.dataset.vocab,
            sources=gutted_sources,
            targets=experiment.dataset.targets,
            pairs=experiment.dataset.pairs,
        )
        ctx2 = FitContext(
            dataset=gutted,
            target_name="CDs",
            splits=experiment.splits,
            warm_tasks=experiment.ctx.warm_tasks,
            seed=0,
            train_ratings=experiment.ctx.train_ratings,
        )
        alone = make_method(name, seed=0, profile="fast")
        alone.fit(ctx2)
        inst = experiment.instances[Scenario.WARM][0]
        assert not np.allclose(full.score(None, inst), alone.score(None, inst))


class TestSeedSensitivity:
    def test_different_seeds_different_models(self, experiment):
        inst = experiment.instances[Scenario.WARM][0]

        def scores(seed):
            method = make_method("CoNN", seed=seed, profile="fast")
            method.fit(experiment.ctx)
            return method.score(None, inst)

        assert not np.allclose(scores(0), scores(1))
