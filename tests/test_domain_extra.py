"""Domain container invariants and the single-source special case."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.domain import Domain, DomainPair
from repro.data.experiment import prepare_experiment
from repro.data.generator import DomainSpec, GeneratorConfig, SyntheticMultiDomainGenerator
from repro.data.splits import Scenario
from repro.eval.protocol import evaluate_prepared
from repro.meta import MetaDPA, MetaDPAConfig


def _minimal_domain(n_users=4, n_items=3) -> Domain:
    rng = np.random.default_rng(0)
    return Domain(
        name="D",
        ratings=(rng.random((n_users, n_items)) < 0.5).astype(float),
        user_content=rng.random((n_users, 6)),
        item_content=rng.random((n_items, 6)),
        user_ids=np.arange(n_users),
    )


class TestDomainValidation:
    def test_shape_mismatches_rejected(self):
        domain = _minimal_domain()
        with pytest.raises(ValueError):
            Domain(
                name="bad",
                ratings=domain.ratings,
                user_content=domain.user_content[:2],
                item_content=domain.item_content,
                user_ids=domain.user_ids,
            )
        with pytest.raises(ValueError):
            Domain(
                name="bad",
                ratings=domain.ratings,
                user_content=domain.user_content,
                item_content=domain.item_content[:1],
                user_ids=domain.user_ids,
            )
        with pytest.raises(ValueError):
            Domain(
                name="bad",
                ratings=domain.ratings,
                user_content=domain.user_content,
                item_content=domain.item_content,
                user_ids=np.arange(99),
            )

    def test_interaction_accessors(self):
        domain = _minimal_domain()
        for user in range(domain.n_users):
            items = domain.user_interactions(user)
            assert (domain.ratings[user, items] == 1.0).all()
        for item in range(domain.n_items):
            users = domain.item_interactions(item)
            assert (domain.ratings[users, item] == 1.0).all()

    def test_sparsity_consistent(self):
        domain = _minimal_domain()
        assert domain.sparsity == pytest.approx(
            1.0 - domain.n_ratings / domain.ratings.size
        )

    def test_build_content_without_reviews_raises(self):
        with pytest.raises(ValueError):
            _minimal_domain().build_content()

    def test_with_content_copies(self, tiny_dataset):
        domain = tiny_dataset.targets["Tgt"]
        new_uc = np.zeros_like(domain.user_content)
        copy = domain.with_content(new_uc, domain.item_content)
        assert copy is not domain
        np.testing.assert_array_equal(copy.user_content, new_uc)
        np.testing.assert_array_equal(copy.ratings, domain.ratings)
        assert copy.has_reviews() == domain.has_reviews()


class TestDomainPairValidation:
    def test_row_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DomainPair(
                source_name="s",
                target_name="t",
                shared_user_ids=np.arange(3),
                ratings_source=np.zeros((2, 4)),
                ratings_target=np.zeros((3, 4)),
                content_source=np.zeros((3, 5)),
                content_target=np.zeros((3, 5)),
            )


class TestMultiDomainDataset:
    def test_pairs_for_unknown_target(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.pairs_for_target("missing")

    def test_pairs_sorted_by_source(self, bench_dataset):
        pairs = bench_dataset.pairs_for_target("Books")
        names = [p.source_name for p in pairs]
        assert names == sorted(names)


class TestSingleSourceSpecialCase:
    """The paper: single-source adaptation is a special case of multi-source."""

    @pytest.fixture(scope="class")
    def single_source_dataset(self):
        config = GeneratorConfig(latent_dim=4, vocab_size=60, n_topics=5, review_length=10)
        generator = SyntheticMultiDomainGenerator(config, seed=5)
        return generator.generate(
            sources=[DomainSpec(name="OnlySrc", n_users=60, n_items=50, shared_user_frac=0.6)],
            targets=[
                DomainSpec(
                    name="Tgt", n_users=80, n_items=60, is_target=True, cold_user_frac=0.3
                )
            ],
        )

    def test_metadpa_runs_with_one_source(self, single_source_dataset):
        experiment = prepare_experiment(single_source_dataset, "Tgt", seed=0)
        method = MetaDPA(MetaDPAConfig(cvae_epochs=20, meta_epochs=1), seed=0)
        results = evaluate_prepared(method, experiment)
        assert method.augmented is not None and method.augmented.k == 1
        assert results[Scenario.WARM].metrics.n_trials > 0
