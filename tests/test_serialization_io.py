"""Persistence: parameter archives, dataset archives, schedulers, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import load_dataset, save_dataset
from repro.nn import (
    Adam,
    CosineDecay,
    SGD,
    StepDecay,
    WarmupLinear,
    load_params,
    params_equal,
    save_params,
)


class TestParamsSerialization:
    def test_roundtrip(self, tmp_path):
        params = {
            "enc.0.W": np.random.default_rng(0).normal(size=(4, 3)),
            "enc.0.b": np.zeros(3),
        }
        path = tmp_path / "weights.npz"
        save_params(path, params, config={"latent_dim": 3})
        loaded, config = load_params(path)
        assert params_equal(params, loaded)
        assert config == {"latent_dim": 3}

    def test_roundtrip_without_config(self, tmp_path):
        params = {"x": np.arange(5.0)}
        path = tmp_path / "w.npz"
        save_params(path, params)
        loaded, config = load_params(path)
        assert config is None
        assert params_equal(params, loaded)

    def test_params_equal_detects_differences(self):
        a = {"x": np.ones(3)}
        assert not params_equal(a, {"x": np.zeros(3)})
        assert not params_equal(a, {"y": np.ones(3)})
        assert params_equal(a, {"x": np.ones(3) + 1e-12}, atol=1e-9)

    def test_model_roundtrip(self, tmp_path):
        from repro.meta.model import PreferenceModel, PreferenceModelConfig

        model = PreferenceModel(
            PreferenceModelConfig(content_dim=5, embed_dim=3, hidden_dims=(4,))
        )
        params = model.init_params(0)
        save_params(tmp_path / "m.npz", params)
        loaded, _ = load_params(tmp_path / "m.npz")
        rng = np.random.default_rng(1)
        cu, ci = rng.random((3, 5)), rng.random((3, 5))
        np.testing.assert_allclose(
            model.predict(params, cu, ci), model.predict(loaded, cu, ci)
        )

    def test_save_returns_resolved_path_and_appends_suffix(self, tmp_path):
        params = {"x": np.ones(3)}
        returned = save_params(tmp_path / "model.weights", params)
        assert returned == tmp_path / "model.weights.npz"
        assert returned.exists()
        returned = save_params(tmp_path / "plain.npz", params)
        assert returned == tmp_path / "plain.npz"

    def test_save_is_atomic_no_temp_leftovers(self, tmp_path):
        save_params(tmp_path / "w.npz", {"x": np.arange(4.0)})
        leftovers = [p for p in tmp_path.iterdir() if p.name != "w.npz"]
        assert leftovers == []


class TestMmapLoading:
    @staticmethod
    def _params():
        rng = np.random.default_rng(0)
        return {
            "enc.W": rng.normal(size=(16, 8)),
            "small": np.arange(6, dtype=np.float32),
            "fortran": np.asfortranarray(rng.normal(size=(5, 4))),
            "flags": np.array([1, 0, 1], dtype=np.uint8),
        }

    def test_mmap_roundtrip_bitwise(self, tmp_path):
        params = self._params()
        path = save_params(tmp_path / "w.npz", params, config={"k": 2})
        mapped, config = load_params(path, mmap_mode="r")
        assert config == {"k": 2}
        for name, value in params.items():
            assert isinstance(mapped[name], np.memmap), name
            np.testing.assert_array_equal(value, mapped[name])
            assert mapped[name].dtype == value.dtype

    def test_mmap_preserves_memory_order(self, tmp_path):
        path = save_params(tmp_path / "w.npz", self._params())
        mapped, _ = load_params(path, mmap_mode="r")
        assert mapped["fortran"].flags.f_contiguous
        assert mapped["enc.W"].flags.c_contiguous

    def test_mmap_is_read_only(self, tmp_path):
        path = save_params(tmp_path / "w.npz", self._params())
        mapped, _ = load_params(path, mmap_mode="r")
        with pytest.raises(ValueError):
            mapped["small"][0] = 99.0

    def test_copy_on_write_does_not_touch_artifact(self, tmp_path):
        path = save_params(tmp_path / "w.npz", self._params())
        cow, _ = load_params(path, mmap_mode="c")
        cow["small"][0] = 99.0
        fresh, _ = load_params(path, mmap_mode="r")
        assert fresh["small"][0] == 0.0

    def test_rejects_writable_modes(self, tmp_path):
        path = save_params(tmp_path / "w.npz", self._params())
        with pytest.raises(ValueError, match="mmap_mode"):
            load_params(path, mmap_mode="r+")

    def test_compressed_archive_falls_back_to_eager(self, tmp_path):
        # np.savez_compressed members cannot be mapped; the loader must
        # still return correct (eager) arrays rather than fail.
        params = self._params()
        path = tmp_path / "c.npz"
        np.savez_compressed(path, **params)
        loaded, config = load_params(path, mmap_mode="r")
        assert config is None
        for name, value in params.items():
            assert not isinstance(loaded[name], np.memmap)
            np.testing.assert_array_equal(value, loaded[name])


class TestDatasetIO:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = tmp_path / "dataset.npz"
        save_dataset(path, tiny_dataset)
        loaded = load_dataset(path)
        assert loaded.source_names() == tiny_dataset.source_names()
        assert loaded.target_names() == tiny_dataset.target_names()
        original = tiny_dataset.targets["Tgt"]
        restored = loaded.targets["Tgt"]
        np.testing.assert_array_equal(original.ratings, restored.ratings)
        np.testing.assert_allclose(original.user_content, restored.user_content)
        np.testing.assert_array_equal(original.user_ids, restored.user_ids)
        assert restored.has_reviews()
        np.testing.assert_allclose(original.review_counts, restored.review_counts)

    def test_pairs_restored(self, tmp_path, tiny_dataset):
        path = tmp_path / "dataset.npz"
        save_dataset(path, tiny_dataset)
        loaded = load_dataset(path)
        for key, pair in tiny_dataset.pairs.items():
            restored = loaded.pairs[key]
            np.testing.assert_array_equal(
                pair.shared_user_ids, restored.shared_user_ids
            )
            np.testing.assert_array_equal(
                pair.ratings_target, restored.ratings_target
            )

    def test_vocab_restored(self, tmp_path, tiny_dataset):
        path = tmp_path / "d.npz"
        save_dataset(path, tiny_dataset)
        loaded = load_dataset(path)
        np.testing.assert_allclose(
            loaded.vocab.topic_word, tiny_dataset.vocab.topic_word
        )


class TestSchedulers:
    @staticmethod
    def _optimizer():
        return Adam({"x": np.zeros(1)}, lr=0.1)

    def test_step_decay(self):
        opt = self._optimizer()
        sched = StepDecay(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(4)]
        assert rates[0] == pytest.approx(0.1)   # epoch 1
        assert rates[1] == pytest.approx(0.05)  # epoch 2
        assert rates[3] == pytest.approx(0.025)
        assert opt.lr == rates[-1]

    def test_cosine_decay_monotone_to_min(self):
        opt = self._optimizer()
        sched = CosineDecay(opt, total_epochs=10, min_lr=1e-4)
        rates = [sched.step() for _ in range(12)]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(1e-4, rel=1e-6)

    def test_warmup_then_decay(self):
        opt = self._optimizer()
        sched = WarmupLinear(opt, warmup_epochs=3, total_epochs=10, min_lr=1e-4)
        rates = [sched.step() for _ in range(10)]
        assert rates[0] < rates[2]
        assert rates[2] == pytest.approx(0.1)
        assert rates[-1] == pytest.approx(1e-4, rel=1e-4)

    def test_validation(self):
        opt = self._optimizer()
        with pytest.raises(ValueError):
            StepDecay(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineDecay(opt, total_epochs=0)
        with pytest.raises(ValueError):
            WarmupLinear(opt, warmup_epochs=5, total_epochs=5)

    def test_sgd_uses_scheduled_rate(self):
        params = {"x": np.array([1.0])}
        opt = SGD(params, lr=1.0)
        sched = StepDecay(opt, step_size=1, gamma=0.1)
        sched.step()
        opt.step({"x": np.array([1.0])})
        # After one decay the rate is 0.1, so x moves by exactly 0.1.
        assert params["x"][0] == pytest.approx(0.9)
