"""Randomized (seeded) invariants of the ranking metrics.

``tests/test_eval.py`` checks hand-picked examples; this module asserts the
properties that must hold for *any* score list — bounds, monotonicity in k,
invariance under permutation of negatives, agreement between the vectorized
aggregation and the scalar per-instance definitions — plus the degenerate
inputs (empty trial list, single-candidate trials, k=1, all-tied scores).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.metrics import (
    MetricSet,
    auc,
    hit_ratio,
    mrr,
    ndcg,
    ndcg_curve,
    rank_of_positive,
)


def random_score_lists(
    seed: int, n_lists: int = 40, max_len: int = 60, quantize: bool = False
) -> list[np.ndarray]:
    """Seeded score lists of varying length; ``quantize`` forces many ties."""
    rng = np.random.default_rng(seed)
    lists = []
    for _ in range(n_lists):
        size = int(rng.integers(1, max_len + 1))
        scores = rng.normal(size=size)
        if quantize:
            scores = np.round(scores * 2) / 2  # half-unit grid → frequent ties
        lists.append(scores)
    return lists


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("quantize", [False, True])
class TestRandomizedInvariants:
    def test_all_metrics_within_unit_interval(self, seed, quantize):
        score_lists = random_score_lists(seed, quantize=quantize)
        for k in (1, 3, 10, 100):
            ms = MetricSet.from_score_lists(score_lists, k=k)
            for value in (ms.hr, ms.mrr, ms.ndcg, ms.auc):
                assert 0.0 <= value <= 1.0

    def test_hr_monotone_non_decreasing_in_k(self, seed, quantize):
        score_lists = random_score_lists(seed, quantize=quantize)
        ks = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
        hrs = [MetricSet.from_score_lists(score_lists, k=k).hr for k in ks]
        assert hrs == sorted(hrs)
        # NDCG@k and MRR@k inherit the same monotonicity (gains only accrue).
        ndcgs = [MetricSet.from_score_lists(score_lists, k=k).ndcg for k in ks]
        mrrs = [MetricSet.from_score_lists(score_lists, k=k).mrr for k in ks]
        assert ndcgs == sorted(ndcgs)
        assert mrrs == sorted(mrrs)

    def test_invariant_under_permutation_of_negatives(self, seed, quantize):
        rng = np.random.default_rng(1000 + seed)
        for scores in random_score_lists(seed, n_lists=20, quantize=quantize):
            shuffled = scores.copy()
            rng.shuffle(shuffled[1:])  # the positive stays at index 0
            assert rank_of_positive(shuffled) == rank_of_positive(scores)
            for k in (1, 5, 10):
                assert hit_ratio(shuffled, k) == hit_ratio(scores, k)
                assert mrr(shuffled, k) == mrr(scores, k)
                assert ndcg(shuffled, k) == ndcg(scores, k)
            assert auc(shuffled) == auc(scores)

    def test_vectorized_matches_scalar_definitions(self, seed, quantize):
        """`from_score_lists` must agree with the per-instance metric loop."""
        score_lists = random_score_lists(seed, quantize=quantize)
        for k in (1, 7, 10):
            ms = MetricSet.from_score_lists(score_lists, k=k)
            assert ms.hr == pytest.approx(
                np.mean([hit_ratio(s, k) for s in score_lists])
            )
            assert ms.mrr == pytest.approx(np.mean([mrr(s, k) for s in score_lists]))
            assert ms.ndcg == pytest.approx(np.mean([ndcg(s, k) for s in score_lists]))
            assert ms.auc == pytest.approx(np.mean([auc(s) for s in score_lists]))
            assert ms.n_trials == len(score_lists)

    def test_ndcg_curve_matches_per_k_ndcg(self, seed, quantize):
        score_lists = random_score_lists(seed, quantize=quantize)
        ks = [1, 5, 10, 30]
        curve = ndcg_curve(score_lists, ks)
        for k in ks:
            assert curve[k] == pytest.approx(
                np.mean([ndcg(s, k) for s in score_lists])
            )


class TestDegenerateInputs:
    def test_empty_trial_list(self):
        ms = MetricSet.from_score_lists([], k=10)
        assert ms.n_trials == 0
        assert (ms.hr, ms.mrr, ms.ndcg, ms.auc) == (0.0, 0.0, 0.0, 0.0)
        assert ndcg_curve([], [1, 5]) == {1: 0.0, 5: 0.0}

    def test_single_candidate_trial(self):
        # Only the positive: rank 1, no negatives, AUC falls back to chance.
        only_pos = [np.array([0.7])]
        ms = MetricSet.from_score_lists(only_pos, k=1)
        assert ms.hr == 1.0 and ms.mrr == 1.0 and ms.ndcg == 1.0
        assert ms.auc == 0.5

    def test_k_equals_one(self):
        top = np.array([1.0, 0.5, 0.0])
        second = np.array([0.5, 1.0, 0.0])
        ms = MetricSet.from_score_lists([top, second], k=1)
        assert ms.hr == pytest.approx(0.5)
        assert ms.mrr == pytest.approx(0.5)

    def test_all_tied_scores(self):
        # A constant scorer gets chance-level AUC and a mid-rank position.
        tied = [np.full(100, 0.3)]
        ms = MetricSet.from_score_lists(tied, k=10)
        assert ms.auc == pytest.approx(0.5)
        assert rank_of_positive(tied[0]) == pytest.approx(50.5)
        assert ms.hr == 0.0  # mid-rank 50.5 is far outside top-10

    def test_ragged_lengths_aggregate(self):
        # Trials of different candidate counts share one aggregation pass.
        lists = [np.array([1.0]), np.array([0.0, 1.0]), np.array([1.0, 0.0, 0.5])]
        ms = MetricSet.from_score_lists(lists, k=2)
        assert ms.n_trials == 3
        assert ms.hr == pytest.approx(np.mean([1.0, 1.0, 1.0]))
        assert ms.auc == pytest.approx(np.mean([0.5, 0.0, 1.0]))

    def test_empty_scores_rejected(self):
        with pytest.raises(ValueError):
            MetricSet.from_score_lists([np.array([])], k=10)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            MetricSet.from_score_lists([np.array([1.0])], k=0)
        with pytest.raises(ValueError):
            ndcg_curve([np.array([1.0])], [5, 0])
