"""Shared fixtures: a small benchmark dataset reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.amazon import BenchmarkScale, make_amazon_like_benchmark
from repro.data.experiment import prepare_experiment
from repro.data.generator import DomainSpec, GeneratorConfig, SyntheticMultiDomainGenerator


@pytest.fixture(scope="session")
def tiny_config() -> GeneratorConfig:
    """Small generator config: quick to sample, still structured."""
    return GeneratorConfig(latent_dim=4, vocab_size=60, n_topics=5, review_length=10)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_config):
    """A 2-source / 1-target dataset for fast unit tests."""
    generator = SyntheticMultiDomainGenerator(tiny_config, seed=7)
    sources = [
        DomainSpec(name="SrcA", n_users=60, n_items=50, shared_user_frac=0.5),
        DomainSpec(name="SrcB", n_users=50, n_items=40, shared_user_frac=0.4),
    ]
    targets = [
        DomainSpec(name="Tgt", n_users=80, n_items=60, is_target=True, cold_user_frac=0.3)
    ]
    return generator.generate(sources=sources, targets=targets)


@pytest.fixture(scope="session")
def bench_dataset():
    """The five-domain Amazon-like benchmark at reduced scale."""
    return make_amazon_like_benchmark(
        scale=BenchmarkScale(user_base=120, item_base=80), seed=3
    )


@pytest.fixture(scope="session")
def bench_experiment(bench_dataset):
    """A prepared experiment on the Books target of the small benchmark."""
    return prepare_experiment(bench_dataset, "Books", seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
