"""Grid runner semantics: specs, RunStore durability, resume, corruption.

The contract under test: a relaunched grid recomputes nothing that is
already stored, anything less than a fully valid cell file is re-run rather
than trusted, and concurrent writers can never produce a torn cell.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.data.splits import Scenario
from repro.eval.metrics import MetricSet
from repro.runner import (
    DatasetSpec,
    GridSpec,
    GridSpecMismatch,
    IncompleteGridError,
    RunStore,
    ablation_from_store,
    evaluation_results,
    grid_status,
    load_cells,
    run_grid,
    table3_from_store,
)

TINY_DATASET = DatasetSpec(user_base=120, item_base=80, seed=3)


def tiny_spec(**overrides) -> GridSpec:
    kwargs = dict(
        methods=["Popularity"],
        targets=["Books"],
        scenarios=["warm-start", "user cold-start"],
        seeds=[0],
        profile="fast",
        dataset=TINY_DATASET,
    )
    kwargs.update(overrides)
    return GridSpec(**kwargs)


class TestGridSpec:
    def test_normalizes_methods_and_scenarios(self):
        spec = tiny_spec(methods=["Popularity", {"name": "NeuMF", "epochs": 3}])
        assert spec.methods[0] == {"name": "Popularity"}
        assert spec.scenarios == [Scenario.WARM, Scenario.C_U]
        assert spec.method_labels == ["Popularity", "NeuMF"]

    def test_scenario_accepts_enum_name_and_value(self):
        spec = tiny_spec(scenarios=["WARM", "user cold-start", Scenario.C_UI])
        assert spec.scenarios == [Scenario.WARM, Scenario.C_U, Scenario.C_UI]
        with pytest.raises(ValueError, match="unknown scenario"):
            tiny_spec(scenarios=["lukewarm"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate method label"):
            tiny_spec(methods=["Popularity", {"name": "Popularity", "label": "Popularity"}])

    def test_distinct_labels_allow_config_variants(self):
        spec = tiny_spec(
            methods=[
                {"name": "NeuMF", "label": "NeuMF-8", "embed_dim": 8},
                {"name": "NeuMF", "label": "NeuMF-16", "embed_dim": 16},
            ]
        )
        keys = {cell.method_label: cell.key for cell in spec.expand()
                if cell.scenario is Scenario.WARM}
        assert keys["NeuMF-8"] != keys["NeuMF-16"]

    def test_unknown_method_and_key_fail_loudly(self):
        with pytest.raises(KeyError, match="unknown method"):
            tiny_spec(methods=["NoSuchMethod"]).expand()
        with pytest.raises(ValueError, match="unknown config key"):
            tiny_spec(methods=[{"name": "NeuMF", "epcohs": 3}]).expand()

    def test_json_round_trip_preserves_cell_keys(self):
        spec = tiny_spec(methods=[{"name": "NeuMF", "epochs": 3}], seeds=[0, 1])
        clone = GridSpec.from_json(spec.to_json())
        assert [c.key for c in clone.expand()] == [c.key for c in spec.expand()]
        assert clone.canonical() == spec.canonical()

    def test_cell_key_tracks_content(self):
        base = tiny_spec().expand()[0]
        changed_seed = tiny_spec(seeds=[1]).expand()[0]
        changed_data = tiny_spec(dataset=DatasetSpec(100, 80, 3)).expand()[0]
        assert len({base.key, changed_seed.key, changed_data.key}) == 3
        # Profile is folded into concrete fields: an explicit override that
        # matches the preset hashes identically.
        preset = tiny_spec(methods=["NeuMF"]).expand()[0]
        explicit = tiny_spec(methods=[{"name": "NeuMF", "epochs": 5}]).expand()[0]
        assert preset.key == explicit.key


class TestRunStoreDurability:
    def _cell(self, spec=None):
        return (spec or tiny_spec()).expand()[0]

    def _metrics(self, n=3):
        return MetricSet(hr=0.5, mrr=0.25, ndcg=0.3, auc=0.6, n_trials=n, k=10)

    def test_round_trip_with_ragged_score_lists(self, tmp_path):
        store = RunStore(tmp_path)
        cell = self._cell()
        lists = [np.array([1.0]), np.array([0.1, 0.9, 0.5]), np.array([0.3, 0.3])]
        store.save_cell(cell, self._metrics(), lists, extras={"diversity": 1.5})
        loaded = store.load_cell(cell.key)
        assert loaded is not None
        assert loaded.metrics == self._metrics()
        assert loaded.extras == {"diversity": 1.5}
        assert len(loaded.score_lists) == 3
        for original, restored in zip(lists, loaded.score_lists):
            np.testing.assert_array_equal(original, restored)

    def test_zero_trial_cell_round_trips(self, tmp_path):
        store = RunStore(tmp_path)
        cell = self._cell()
        store.save_cell(cell, MetricSet(0.0, 0.0, 0.0, 0.0, n_trials=0, k=10), [])
        loaded = store.load_cell(cell.key)
        assert loaded is not None and loaded.score_lists == []

    def test_missing_cell_is_incomplete(self, tmp_path):
        assert RunStore(tmp_path).load_cell("deadbeef") is None

    @pytest.mark.parametrize(
        "corruption",
        ["truncate_json", "garbage_json", "truncate_npz", "delete_npz", "wrong_key"],
    )
    def test_corrupted_cell_not_trusted(self, tmp_path, corruption):
        store = RunStore(tmp_path)
        cell = self._cell()
        store.save_cell(cell, self._metrics(), [np.array([1.0, 0.0, 0.5])] * 3)
        json_path = store.cells_dir / f"{cell.key}.json"
        npz_path = store.cells_dir / f"{cell.key}.npz"
        if corruption == "truncate_json":
            json_path.write_bytes(json_path.read_bytes()[:20])
        elif corruption == "garbage_json":
            json_path.write_text('{"format": 1, "key": "%s"}' % cell.key)
        elif corruption == "truncate_npz":
            npz_path.write_bytes(npz_path.read_bytes()[:30])
        elif corruption == "delete_npz":
            npz_path.unlink()
        elif corruption == "wrong_key":
            payload = json.loads(json_path.read_text())
            payload["key"] = "0" * 20
            json_path.write_text(json.dumps(payload))
        assert store.load_cell(cell.key) is None
        assert not store.is_complete(cell.key)

    def test_concurrent_writers_never_tear_a_cell(self, tmp_path):
        store = RunStore(tmp_path)
        cell = self._cell()
        lists = [np.linspace(0, 1, 25) for _ in range(10)]
        errors: list[Exception] = []

        def writer():
            try:
                for _ in range(15):
                    store.save_cell(cell, self._metrics(n=10), lists)
                    assert store.load_cell(cell.key) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = store.load_cell(cell.key)
        assert loaded is not None and loaded.metrics.n_trials == 10

    def test_failure_record_round_trips(self, tmp_path):
        store = RunStore(tmp_path)
        cell = self._cell()
        store.record_failure(cell, "ValueError: boom", traceback_text="tb line")
        payload = store.load_failure(cell.key)
        assert payload is not None
        assert payload["error"] == "ValueError: boom"
        assert payload["traceback"] == "tb line"
        assert payload["key"] == cell.key
        assert store.failed_keys() == {cell.key}
        # A failure record never makes the cell count as complete.
        assert not store.is_complete(cell.key)

    def test_successful_save_clears_the_failure(self, tmp_path):
        store = RunStore(tmp_path)
        cell = self._cell()
        store.record_failure(cell, "transient crash")
        store.save_cell(
            cell, self._metrics(), [np.array([1.0]) for _ in range(3)]
        )
        assert store.load_failure(cell.key) is None
        assert store.failed_keys() == set()
        assert store.is_complete(cell.key)

    def test_mismatched_or_corrupt_failure_not_trusted(self, tmp_path):
        store = RunStore(tmp_path)
        cell = self._cell()
        store.record_failure(cell, "boom")
        # Key mismatch (file renamed / copied between runs) is rejected.
        assert store.load_failure("0" * 16) is None
        (store.cells_dir / f"{cell.key}.error.json").write_text("{not json")
        assert store.load_failure(cell.key) is None
        store.clear_failure(cell.key)  # corrupt record still removable
        store.clear_failure(cell.key)  # and clearing twice is a no-op
        assert store.failed_keys() == set()

    def test_spec_binding_rejects_mismatch(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_spec(tiny_spec())
        store.write_spec(tiny_spec())  # idempotent for the same spec
        with pytest.raises(GridSpecMismatch):
            store.write_spec(tiny_spec(seeds=[0, 1]))
        store.write_spec(tiny_spec(seeds=[0, 1]), force=True)
        assert store.load_spec().seeds == [0, 1]


class TestEngineResume:
    def test_relaunch_recomputes_nothing(self, tmp_path, bench_dataset):
        spec = tiny_spec()
        first = run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        assert first.ok and first.n_computed == 2 and first.n_skipped == 0
        second = run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        assert second.ok and second.n_computed == 0
        assert second.n_skipped == len(spec.expand())

    def test_corrupted_cell_is_recomputed(self, tmp_path, bench_dataset):
        spec = tiny_spec()
        run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        store = RunStore(tmp_path)
        victim = spec.expand()[0]
        (store.cells_dir / f"{victim.key}.json").write_text("{not json")
        report = run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        assert report.ok
        assert report.n_computed == 1  # only the corrupted cell
        assert store.is_complete(victim.key)
        # ...and the recomputed cell matches a clean run bit-for-bit.
        table = table3_from_store(tmp_path)
        fresh = run_grid(spec, tmp_path / "fresh", workers=1, dataset=bench_dataset)
        assert fresh.ok
        clean = table3_from_store(tmp_path / "fresh")
        assert table.cells == clean.cells

    def test_unit_failure_is_isolated(self, tmp_path, bench_dataset):
        spec = tiny_spec(targets=["Books", "NoSuchDomain"])
        report = run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        assert not report.ok and len(report.failures) == 1
        assert "NoSuchDomain" in report.failures[0][0]
        # The healthy target still completed and is resumable.
        status = grid_status(tmp_path)
        assert status.n_complete == 2 and len(status.missing) == 2
        with pytest.raises(IncompleteGridError):
            load_cells(tmp_path)
        # The crash was persisted with its traceback on every missing cell,
        # so `grid status` explains the failure without re-running.
        assert len(status.failures) == 2
        for cell, payload in status.failures:
            assert cell.target == "NoSuchDomain"
            assert payload["error"] == status.failures[0][1]["error"]
            assert payload["traceback"]  # full traceback text rides along
        rendered = status.format_table()
        assert "FAILED Popularity on NoSuchDomain seed=0" in rendered
        # Re-running after the cause is fixed clears the records.
        store = RunStore(tmp_path)
        assert store.failed_keys() == {
            cell.key for cell, _ in status.failures
        }

    def test_status_and_summary_render(self, tmp_path, bench_dataset):
        spec = tiny_spec()
        report = run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        assert "2 computed" in report.format_summary()
        status = grid_status(tmp_path)
        assert status.complete and "2/2 cells complete" in status.format_table()

    def test_injected_dataset_mismatch_fails_loudly(self, tmp_path, bench_dataset):
        # Cells computed from one dataset must never silently mix with
        # cells computed from another in the same run directory.
        spec = tiny_spec()
        run_grid(spec, tmp_path, workers=1, dataset=bench_dataset)
        from repro.data.amazon import BenchmarkScale, make_amazon_like_benchmark
        from repro.runner import prepared

        other = make_amazon_like_benchmark(
            scale=BenchmarkScale(user_base=120, item_base=80), seed=99
        )
        prepared.clear_memos()
        report = run_grid(spec, tmp_path, workers=1, dataset=other, resume=False)
        assert not report.ok
        assert "dataset mismatch" in report.failures[0][1]


class TestAggregation:
    def test_evaluation_results_match_table3(self, tmp_path, bench_dataset):
        spec = tiny_spec(methods=["Popularity", "NeuMF"])
        assert run_grid(spec, tmp_path, workers=1, dataset=bench_dataset).ok
        table = table3_from_store(tmp_path)
        per_method = evaluation_results(tmp_path)
        assert set(per_method) == {"Popularity", "NeuMF"}
        for label, per_scenario in per_method.items():
            for scenario, results in per_scenario.items():
                assert len(results) == 1  # one target × one seed
                res = results[0]
                assert res.method == label and res.scenario is scenario
                assert res.score_lists, "stored per-instance scores survive"
                assert res.metrics.ndcg == pytest.approx(
                    table.mean("Books", scenario, label, "ndcg")
                )

    def test_subset_scenario_tables_render(self, tmp_path, bench_dataset):
        # Grids covering a scenario subset must aggregate and format
        # without touching the scenarios they never evaluated.
        spec = tiny_spec(scenarios=["warm-start"])
        assert run_grid(spec, tmp_path, workers=1, dataset=bench_dataset).ok
        table = table3_from_store(tmp_path)
        assert "warm-start" in table.format_table()
        assert "item cold-start" not in table.format_table()
        ablation = ablation_from_store(tmp_path, ks=(5, 10))
        rendered = ablation.format_table()
        assert "warm-start" in rendered and "item cold-start" not in rendered
        from repro.eval.reports import ablation_to_markdown, table3_to_csv

        assert "C_I" not in table3_to_csv(table)
        assert "item cold-start" not in ablation_to_markdown(ablation)
