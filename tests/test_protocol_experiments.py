"""Evaluation protocol and experiment runners (fast profile)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Popularity
from repro.data.splits import Scenario
from repro.eval.protocol import evaluate_prepared, format_results_table
from repro.experiments import (
    make_method,
    method_names,
    run_ablation,
    run_dataset_statistics,
    run_hyperparam_sweep,
    run_ndcg_curves,
    run_scalability,
    run_significance,
    run_table3,
)
from repro.experiments.registry import TABLE3_METHODS


class TestEvaluatePrepared:
    @pytest.fixture(scope="class")
    def results(self, bench_experiment):
        return evaluate_prepared(Popularity(), bench_experiment)

    def test_all_scenarios_evaluated(self, results):
        assert set(results) == set(Scenario)

    def test_metrics_in_range(self, results):
        for res in results.values():
            m = res.metrics
            for value in (m.hr, m.mrr, m.ndcg, m.auc):
                assert 0.0 <= value <= 1.0
            assert m.n_trials == len(res.score_lists)

    def test_ndcg_curve_accessible(self, results):
        curve = results[Scenario.WARM].ndcg_at([5, 10])
        assert curve[5] <= curve[10] + 1e-12

    def test_format_table(self, results):
        text = format_results_table({"Popularity": results})
        assert "Popularity" in text
        assert "warm-start" in text


class TestRegistry:
    def test_all_names_buildable(self):
        for name in method_names():
            method = make_method(name, seed=0, profile="fast")
            assert hasattr(method, "fit") and hasattr(method, "score")

    def test_table3_methods_registered(self):
        assert set(TABLE3_METHODS) <= set(method_names())

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_method("nope")

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            make_method("MeLU", profile="turbo")

    def test_ablation_variants_configured(self):
        me_only = make_method("MetaDPA-ME", profile="fast")
        mdi_only = make_method("MetaDPA-MDI", profile="fast")
        assert me_only.config.beta1 == 0.0 and me_only.config.beta2 > 0
        assert mdi_only.config.beta2 == 0.0 and mdi_only.config.beta1 > 0
        no_aug = make_method("MetaDPA-NoAug", profile="fast")
        assert not no_aug.config.use_augmentation


class TestTable3Runner:
    @pytest.fixture(scope="class")
    def table(self, bench_dataset):
        return run_table3(
            bench_dataset,
            targets=("Books",),
            methods=("Popularity", "CoNN"),
            seeds=(0, 1),
            profile="fast",
        )

    def test_cells_complete(self, table):
        for scenario in Scenario:
            for method in ("Popularity", "CoNN"):
                assert len(table.series("Books", scenario, method, "ndcg")) == 2

    def test_mean_consistent_with_series(self, table):
        series = table.series("Books", Scenario.WARM, "CoNN", "ndcg")
        assert table.mean("Books", Scenario.WARM, "CoNN", "ndcg") == pytest.approx(
            float(np.mean(series))
        )

    def test_winner_is_registered_method(self, table):
        assert table.winner("Books", Scenario.WARM) in ("Popularity", "CoNN")

    def test_format(self, table):
        text = table.format_table()
        assert "warm-start" in text and "CoNN" in text


class TestFigureRunners:
    def test_ndcg_curves(self, bench_dataset):
        result = run_ndcg_curves(
            bench_dataset,
            "Books",
            methods=("Popularity",),
            ks=(5, 10),
            seeds=(0,),
            profile="fast",
        )
        for scenario in Scenario:
            curve = result.curve(scenario, "Popularity")
            assert len(curve) == 2
            assert curve[0] <= curve[1] + 1e-12  # NDCG grows with k
        assert "Popularity" in result.format_table()

    def test_scalability_shapes(self):
        result = run_scalability(fractions=(0.3, 1.0))
        assert len(result.block1_seconds) == 2
        assert all(t >= 0 for t in result.block1_seconds)
        slope, r2 = result.linear_fit()
        assert np.isfinite(slope) and np.isfinite(r2)
        assert "block1" in result.format_table()

    def test_hyperparam_sweep(self, bench_dataset):
        result = run_hyperparam_sweep(
            bench_dataset,
            "beta1",
            target="CDs",
            grid=(0.1, 1.0),
            seeds=(0,),
            profile="fast",
        )
        for scenario in Scenario:
            assert len(result.curves[scenario]) == 2
            assert result.sensitivity_range(scenario) >= 0.0
        assert "beta1" in result.format_table()

    def test_hyperparam_param_validated(self, bench_dataset):
        with pytest.raises(ValueError):
            run_hyperparam_sweep(bench_dataset, "beta3")

    def test_ablation(self, bench_dataset):
        result = run_ablation(
            bench_dataset,
            target="CDs",
            variants=("MetaDPA", "MetaDPA-MDI"),
            ks=(10,),
            seeds=(0,),
            profile="fast",
        )
        assert result.ndcg(Scenario.WARM, "MetaDPA", 10) >= 0.0
        assert "MetaDPA" in result.diversity
        assert result.diversity["MetaDPA"] >= 0.0

    def test_significance_report(self, bench_dataset):
        report = run_significance(
            bench_dataset,
            target="CDs",
            methods=("Popularity", "MetaDPA"),
            seeds=(0, 1, 2),
            profile="fast",
        )
        assert len(report.results) == len(Scenario) * 4
        for runner_up, res in report.results.values():
            assert runner_up == "Popularity"
            assert 0.0 <= res.p_value <= 1.0
        assert "Significance" in report.format_table()

    def test_dataset_statistics(self, bench_dataset):
        text = run_dataset_statistics(bench_dataset)
        assert "Table I" in text and "Table II" in text
        assert "Books" in text and "Electronics" in text
