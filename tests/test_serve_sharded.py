"""Sharded multi-worker serving: equivalence, zero-copy, supervision.

The load-bearing guarantee tested here: :class:`ShardedService` (N worker
processes, coalesced flushes, per-shard LRUs) answers **bit-identically**
to the single-process :class:`RecommenderService` serving the same request
stream sequentially.  That holds because (a) `adapt_corpus` chunks are cut
at support-width boundaries, so a user's fast weights don't depend on which
other users share a flush, and (b) the worker scores every request through
the same solo ``score_with_state`` path ``recommend`` uses.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.interface import Recommender
from repro.data.splits import Scenario
from repro.registry import build_method
from repro.serve import ShardedService, run_open_loop, zipfian_users
from repro.serve.loadgen import zipf_probabilities
from repro.service import RecommenderService


@pytest.fixture(scope="module")
def artifact(bench_experiment, tmp_path_factory):
    """A saved tiny-budget MetaDPA artifact and its cold-user task pool."""
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 2, "meta_epochs": 1},
        seed=0,
    )
    method.fit(bench_experiment.ctx)
    path = method.save(tmp_path_factory.mktemp("serve") / "metadpa.npz")
    tasks = {
        int(t.user_row): t for t in bench_experiment.task_sets[Scenario.C_U]
    }
    return str(path), tasks


def _mmap_backed(array: np.ndarray) -> bool:
    while array is not None:
        if isinstance(array, np.memmap):
            return True
        array = getattr(array, "base", None)
    return False


class TestZeroCopyArtifacts:
    def test_mmap_load_materializes_nothing(self, artifact):
        path, _ = artifact
        method = Recommender.load(path, mmap_mode="r")
        assert all(_mmap_backed(v) for v in method.maml.params.values())
        serving = method.serving
        assert _mmap_backed(serving.user_content)
        assert _mmap_backed(serving.item_content)
        assert _mmap_backed(serving.seen)

    def test_packed_content_shares_mapped_blobs(self, artifact):
        # The artifact stores serving content float32 C-contiguous, exactly
        # what pack_content wants — the packed scoring path must reuse the
        # mapped blob by reference, not copy it.
        path, _ = artifact
        method = Recommender.load(path, mmap_mode="r")
        packed = method._packed_content()
        serving = method.serving
        assert packed.user.dtype == np.float32
        assert packed.user is serving.user_content or packed.user.base is serving.user_content
        assert packed.item is serving.item_content or packed.item.base is serving.item_content

    def test_mapped_params_are_read_only(self, artifact):
        path, _ = artifact
        method = Recommender.load(path, mmap_mode="r")
        name, value = next(iter(method.maml.params.items()))
        with pytest.raises(ValueError):
            value[...] = 0.0

    def test_service_from_artifact_maps_by_default(self, artifact):
        path, _ = artifact
        service = RecommenderService.from_artifact(path)
        assert all(
            _mmap_backed(v) for v in service.method.maml.params.values()
        )

    def test_eager_load_still_available(self, artifact):
        path, _ = artifact
        method = Recommender.load(path, mmap_mode=None)
        assert not any(_mmap_backed(v) for v in method.maml.params.values())


class TestShardedEquivalence:
    def test_bit_identical_to_single_process(self, artifact):
        """The acceptance bar: same artifact, same stream, same bits."""
        path, tasks = artifact
        users = sorted(tasks)[:10]
        stream = zipfian_users(users, 48, alpha=1.1, seed=5).tolist()

        reference = RecommenderService.from_artifact(path)
        for user in users:
            reference.register_user_history(tasks[user])
        expected = [reference.recommend(u, k=7) for u in stream]

        with ShardedService(path, n_workers=3, max_wait_ms=5.0) as service:
            assert service.wait_ready(timeout=60.0)
            for user in users:
                service.register_user_history(tasks[user])
            futures = [service.submit(u, k=7) for u in stream]
            results = [f.result(timeout=60.0) for f in futures]

        for want, got in zip(expected, results):
            assert got.user_row == want.user_row
            assert np.array_equal(want.items, got.items)
            assert np.array_equal(want.scores, got.scores)

    def test_recommend_many_round_trips_all_shards(self, artifact):
        path, tasks = artifact
        users = sorted(tasks)[:6]
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            results = service.recommend_many(users, k=5)
        assert [r.user_row for r in results] == users
        assert all(len(r) == 5 for r in results)

    def test_concurrent_producers_match_reference(self, artifact):
        """Many threads racing into the dispatcher still get exact answers."""
        path, tasks = artifact
        users = sorted(tasks)[:8]
        reference = RecommenderService.from_artifact(path)
        for user in users:
            reference.register_user_history(tasks[user])
        expected = {u: reference.recommend(u, k=5) for u in users}

        with ShardedService(path, n_workers=2, max_wait_ms=10.0) as service:
            for user in users:
                service.register_user_history(tasks[user])
            results: dict[int, object] = {}
            errors: list[Exception] = []

            def produce(user: int) -> None:
                try:
                    for _ in range(3):
                        results[user] = service.recommend(user, k=5)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=produce, args=(u,)) for u in users
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        assert not errors
        for user in users:
            assert np.array_equal(results[user].items, expected[user].items)
            assert np.array_equal(results[user].scores, expected[user].scores)


class TestColdStartBatching:
    def test_one_adapt_call_per_flush(self, artifact):
        """A mixed cached/uncached burst costs exactly one adapt_users RPC."""
        path, tasks = artifact
        users = sorted(tasks)[:8]
        with ShardedService(path, n_workers=1, max_wait_ms=100.0) as service:
            assert service.wait_ready(timeout=60.0)
            for user in users:
                service.register_user_history(tasks[user])
            # Warm half the users (one flush), then burst hot+cold mixed.
            warm = service.recommend_many(users[:4], k=5)
            assert len(warm) == 4
            before = service.stats()["shards"][0]["worker"]["adaptation"]
            futures = [service.submit(u, k=5) for u in users]
            for future in futures:
                future.result(timeout=60.0)
            after = service.stats()["shards"][0]["worker"]["adaptation"]
        assert after["batches"] - before["batches"] == 1
        assert after["users"] - before["users"] == 4  # only the cold half
        assert after["pending"] == 0

    def test_per_shard_caches_and_stats_propagate(self, artifact):
        path, tasks = artifact
        # Mixed parity so both shards own traffic under user % 2 routing.
        even = [u for u in sorted(tasks) if u % 2 == 0][:3]
        odd = [u for u in sorted(tasks) if u % 2 == 1][:3]
        users = even + odd
        assert even and odd
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            for user in users:
                service.register_user_history(tasks[user])
            service.recommend_many(users, k=5)
            service.recommend_many(users, k=5)  # second pass: cache hits
            stats = service.stats()
        assert stats["workers"] == 2
        assert stats["requests"] == 2 * len(users)
        assert len(stats["shards"]) == 2
        for entry in stats["shards"]:
            worker = entry["worker"]
            assert {"cache", "adaptation", "requests"} <= set(worker)
            # Each shard owns a disjoint user slice and cached it.
            assert worker["cache"]["hits"] >= 1
            assert worker["adaptation"]["pending"] == 0

    def test_invalidate_forces_readaptation(self, artifact):
        path, tasks = artifact
        user = sorted(tasks)[0]
        with ShardedService(path, n_workers=1, max_wait_ms=2.0) as service:
            service.register_user_history(tasks[user])
            service.recommend(user, k=5)
            before = service.stats()["shards"][0]["worker"]["adaptation"]["users"]
            service.recommend(user, k=5)  # cached: no new adaptation
            service.invalidate_user(user)
            service.recommend(user, k=5)  # re-adapts
            after = service.stats()["shards"][0]["worker"]["adaptation"]["users"]
        assert after - before == 1


class TestSupervision:
    def test_dead_worker_restarts_with_cleared_cache(self, artifact):
        path, tasks = artifact
        user = sorted(tasks)[0]
        with ShardedService(
            path, n_workers=2, max_wait_ms=2.0, heartbeat_interval=0.05
        ) as service:
            assert service.wait_ready(timeout=60.0)
            service.register_user_history(tasks[user])
            first = service.recommend(user, k=5)
            shard = service._shards[service.shard_of(user)]
            pid_before = shard.proc.pid
            shard.proc.kill()
            deadline = time.monotonic() + 10.0
            while shard.restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            second = service.recommend(user, k=5)
            stats = service.stats()
        assert stats["restarts"] >= 1
        owner = stats["shards"][service.shard_of(user)]
        assert owner["worker"]["pid"] != pid_before
        # The replacement starts with a cleared cache: its first answer for
        # the user re-adapted from scratch rather than reusing stale state.
        assert owner["worker"]["cache"]["size"] <= 1
        assert len(first) == len(second) == 5

    def test_restart_reproduces_bits_after_reregistration(self, artifact):
        path, tasks = artifact
        user = sorted(tasks)[0]
        with ShardedService(
            path, n_workers=1, max_wait_ms=2.0, heartbeat_interval=0.05
        ) as service:
            service.register_user_history(tasks[user])
            first = service.recommend(user, k=5)
            service._shards[0].proc.kill()
            deadline = time.monotonic() + 10.0
            while service._shards[0].restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            service.register_user_history(tasks[user])
            second = service.recommend(user, k=5)
        assert np.array_equal(first.items, second.items)
        assert np.array_equal(first.scores, second.scores)

    def test_mid_burst_kill_resubmits_inflight_requests(self, artifact):
        path, tasks = artifact
        users = sorted(tasks)
        with ShardedService(
            path, n_workers=2, max_wait_ms=2.0, heartbeat_interval=0.05
        ) as service:
            assert service.wait_ready(timeout=60.0)
            futures = [service.submit(u, k=5) for u in users * 3]
            service._shards[0].proc.kill()
            results = [f.result(timeout=60.0) for f in futures]
        assert len(results) == 3 * len(users)
        assert all(len(r) == 5 for r in results)

    def test_close_mid_burst_flushes_rather_than_drops(self, artifact):
        path, tasks = artifact
        users = sorted(tasks)[:8]
        service = ShardedService(path, n_workers=2, max_wait_ms=500.0)
        assert service.wait_ready(timeout=60.0)
        futures = [service.submit(u, k=5) for u in users]
        # Close immediately: the 500ms coalescing window has not elapsed,
        # so every future is still pending inside the batchers.
        service.close()
        for future in futures:
            result = future.result(timeout=5.0)
            assert len(result) == 5
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(users[0], k=5)

    def test_spawn_start_method_serves(self, artifact):
        path, _ = artifact
        reference = RecommenderService.from_artifact(path)
        with ShardedService(
            path, n_workers=1, start_method="spawn", max_wait_ms=2.0
        ) as service:
            assert service.wait_ready(timeout=120.0)
            got = service.recommend(3, k=5)
        want = reference.recommend(3, k=5)
        assert np.array_equal(want.items, got.items)
        assert np.array_equal(want.scores, got.scores)


class TestMetricsMerging:
    """The front-end's merged observability snapshot survives restarts."""

    def test_merged_snapshot_has_serving_histograms(self, artifact):
        path, tasks = artifact
        users = sorted(tasks)[:8]
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            assert service.wait_ready(timeout=60.0)
            for user in users:
                service.register_user_history(tasks[user])
            # Warm pass (drained) so the Zipfian stream's hot head hits
            # the per-shard LRUs instead of coalescing into one all-miss
            # batch per shard.
            for future in [service.submit(u, k=5) for u in users]:
                future.result(timeout=60.0)
            stream = zipfian_users(users, 32, alpha=1.1, seed=7)
            futures = [service.submit(int(u), k=5) for u in stream]
            for future in futures:
                future.result(timeout=60.0)
            stats = service.stats()
        total = len(users) + 32
        # Legacy keys keep their names and meanings ...
        assert stats["requests"] == total
        assert stats["workers"] == 2
        # ... and the new merged registry snapshot rides alongside.
        snap = stats["metrics"]
        hists = snap["histograms"]
        assert {
            "serve.queue_wait.seconds",
            "serve.adapt.seconds",
            "serve.score.seconds",
            "serve.rpc.seconds",
            "serve.request.seconds",
        } <= set(hists)
        assert hists["serve.queue_wait.seconds"]["count"] == total
        assert hists["serve.request.seconds"]["count"] == total
        # Worker-side cache traffic shows up in the merged counters too.
        counters = snap["counters"]
        assert counters.get("serve.cache.hits", 0) >= 1
        assert counters.get("serve.cache.misses", 0) >= 1

    def test_worker_restart_preserves_counter_totals(self, artifact):
        """Regression: killing a worker must not zero its merged counters.

        The front-end folds the dead worker's last-known snapshot into the
        shard's retired totals at revive time, so cumulative counters
        (requests served, cache hits/misses) only ever grow across a
        restart even though the replacement starts from zero.
        """
        path, tasks = artifact
        users = sorted(tasks)[:6]
        with ShardedService(
            path, n_workers=2, max_wait_ms=2.0, heartbeat_interval=0.05
        ) as service:
            assert service.wait_ready(timeout=60.0)
            for user in users:
                service.register_user_history(tasks[user])
            service.recommend_many(users, k=5)
            service.recommend_many(users, k=5)  # second pass: cache hits
            # This stats() round-trip stashes each worker's snapshot as the
            # shard's last-known metrics — what the fold preserves.
            before = service.stats()["metrics"]["counters"]
            assert before.get("serve.cache.hits", 0) >= len(users)

            victim = service._shards[0]
            victim.proc.kill()
            deadline = time.monotonic() + 10.0
            while victim.restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert victim.restarts >= 1
            # The replacement serves fresh traffic on a cleared cache.
            service.recommend_many(users, k=5)
            after = service.stats()["metrics"]["counters"]

        for key in ("serve.cache.hits", "serve.cache.misses"):
            assert after.get(key, 0) >= before.get(key, 0), key
        assert after.get("serve.restarts", 0) >= 1
        # The new worker's traffic accumulates on top of the retired totals.
        assert after.get("serve.cache.misses", 0) > before.get(
            "serve.cache.misses", 0
        )

    def test_cli_serve_writes_merged_metrics_json(self, artifact, tmp_path):
        """`repro serve --workers 2 --metrics-json` — the acceptance path."""
        import json as json_module

        from repro.experiments.cli import main as cli_main

        path, _ = artifact
        out = tmp_path / "metrics.json"
        code = cli_main(
            [
                "serve",
                "--artifact",
                path,
                "--requests",
                "24",
                "--distinct-users",
                "6",
                "--workers",
                "2",
                "--zipf-alpha",
                "1.1",
                "--metrics-json",
                str(out),
                "--metrics-interval",
                "0.2",
            ]
        )
        assert code == 0
        payload = json_module.loads(out.read_text())
        # The dump is the full stats view plus the merged registry snapshot.
        assert payload["requests"] == 24
        assert payload["workers"] == 2
        assert "restarts" in payload
        for entry in payload["shards"]:
            assert {"cache", "adaptation"} <= set(entry["worker"])
        hists = payload["metrics"]["histograms"]
        assert {
            "serve.queue_wait.seconds",
            "serve.adapt.seconds",
            "serve.score.seconds",
        } <= set(hists)
        assert hists["serve.queue_wait.seconds"]["count"] == 24


class TestLoadGenerator:
    def test_zipf_probabilities_normalized_and_skewed(self):
        p = zipf_probabilities(100, alpha=1.1)
        assert p.shape == (100,)
        assert np.isclose(p.sum(), 1.0)
        assert np.all(np.diff(p) < 0)  # strictly hotter head

    def test_zipfian_users_deterministic_and_bounded(self):
        pool = [7, 11, 13, 17]
        a = zipfian_users(pool, 200, alpha=1.2, seed=3)
        b = zipfian_users(pool, 200, alpha=1.2, seed=3)
        assert np.array_equal(a, b)
        assert set(a) <= set(pool)
        # Rank-0 user dominates under heavy skew.
        assert (a == 7).sum() > (a == 17).sum()

    def test_run_open_loop_reports_latency_and_qps(self):
        from concurrent.futures import Future

        def instant_submit(user: int) -> Future:
            future: Future = Future()
            future.set_result(user)
            return future

        report = run_open_loop(instant_submit, [1, 2, 3, 4], rate=1000.0)
        assert report.n_requests == 4
        assert report.qps > 0
        assert report.percentile(99) >= report.percentile(50) >= 0.0
        payload = report.to_dict()
        assert {"qps", "p50_ms", "p99_ms", "elapsed_s"} <= set(payload)

    def test_open_loop_against_sharded_service(self, artifact):
        path, tasks = artifact
        users = sorted(tasks)[:8]
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            assert service.wait_ready(timeout=60.0)
            stream = zipfian_users(users, 30, alpha=1.1, seed=2)
            report = run_open_loop(service.submit, stream, rate=500.0)
        assert report.n_requests == 30
        assert np.isfinite(report.latencies).all()
        assert report.percentile(50) > 0
