"""Frozen-tower precompute: fast-path scoring must be bitwise-faithful.

The serving tables (:mod:`repro.meta.serving`) replace the item/user tower
GEMMs with row gathers whenever the per-user fast weights provably alias
the tower arrays the tables were baked from.  Everything here pins the
*exactness* contract: fast == full forward bit for bit for decision-only
adaptation, unadapted users and mixed batches; full-adaptation states fall
back; ``meta_refresh`` invalidates tables only when it actually rewrote a
tower; format-2 artifacts round-trip (and format-1 artifacts still load);
and a memory-mapped load materializes no table copy.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interface import ARTIFACT_FORMAT, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.splits import Scenario
from repro.meta.maml import batched_candidate_scores
from repro.meta.serving import build_frozen_tower_tables
from repro.registry import build_method
from repro.service import RecommenderService


@pytest.fixture(scope="module")
def fitted_melu(bench_experiment):
    """Decision-only adaptation: tower weights stay aliased in fast states."""
    method = build_method({"name": "MeLU", "meta_epochs": 1}, seed=0)
    return method.fit(bench_experiment.ctx)


@pytest.fixture(scope="module")
def fitted_full_adapt(bench_experiment):
    """Full-adaptation MetaDPA: fast states rewrite the towers."""
    method = build_method(
        {"name": "MetaDPA", "use_augmentation": False, "meta_epochs": 1},
        seed=0,
    )
    return method.fit(bench_experiment.ctx)


@pytest.fixture(scope="module")
def cold_tasks(bench_experiment):
    return list(bench_experiment.task_sets[Scenario.C_U])


def full_batch(method, states, instances):
    """The historical batched scoring path: no tables involved."""
    content = method._packed_content()
    return batched_candidate_scores(
        method.maml, content.user, content.item, states, instances
    )


def full_solo(method, state, instance):
    """The historical single-instance path ``score_with_state`` replaced.

    Note this is *not* the batched path restricted to one instance: the
    batched kernel feeds repeated ``(m, C)`` user rows where the solo path
    feeds ``(1, C)`` — a GEMM-vs-GEMV difference that flips last-ulp bits.
    Each fast entry point must match the specific path it replaced.
    """
    content = method._packed_content()
    params = state if state is not None else method.maml.params
    return method.maml.predict(
        content.user[instance.user_row][None, :],
        content.item[instance.candidates],
        params=params,
    )


def make_instance(rng, n_users, n_items, n_candidates):
    user = int(rng.integers(0, n_users))
    cands = rng.choice(n_items, size=n_candidates, replace=False)
    return EvalInstance(
        user_row=user, pos_item=int(cands[0]), neg_items=np.asarray(cands[1:])
    )


class TestFastPathBitwise:
    def test_unadapted_solo_matches_full(self, fitted_melu):
        method = fitted_melu
        rng = np.random.default_rng(0)
        serving = method.serving
        for n_cands in (2, 3, 17, serving.n_items):
            inst = make_instance(rng, serving.n_users, serving.n_items, n_cands)
            fast = method.score_with_state(None, inst)
            full = full_solo(method, None, inst)
            assert np.array_equal(fast, full)

    def test_adapted_solo_matches_full(self, fitted_melu, cold_tasks):
        method = fitted_melu
        rng = np.random.default_rng(1)
        serving = method.serving
        states = method.adapt_users(cold_tasks[:3])
        for state in states:
            inst = make_instance(rng, serving.n_users, serving.n_items, 50)
            fast = method.score_with_state(state, inst)
            full = full_solo(method, state, inst)
            assert np.array_equal(fast, full)

    def test_single_candidate_uses_full_forward(self, fitted_melu):
        method = fitted_melu
        inst = EvalInstance(user_row=0, pos_item=3, neg_items=np.array([], dtype=int))
        fast = method.score_with_state(None, inst)
        full = full_solo(method, None, inst)
        assert np.array_equal(fast, full)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_mixed_batches_match_full_bitwise(
        self, fitted_melu, cold_tasks, data
    ):
        """Batched fast scoring == the historical stacked path, bit for bit.

        Batches mix unadapted users (shared meta-params group), several
        distinct adapted users, duplicated states, and candidate lists of
        varying sizes (including single-candidate instances).
        """
        method = fitted_melu
        serving = method.serving
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        adapted = method.adapt_users(cold_tasks[:4])
        n = data.draw(st.integers(min_value=1, max_value=10))
        states = []
        instances = []
        for _ in range(n):
            choice = rng.integers(0, len(adapted) + 1)
            states.append(None if choice == len(adapted) else adapted[choice])
            n_cands = int(rng.integers(1, 40))
            instances.append(
                make_instance(rng, serving.n_users, serving.n_items, n_cands)
            )
        fast = method.score_with_state_batch(states, instances)
        full = full_batch(method, states, instances)
        for f, g in zip(fast, full):
            assert np.array_equal(f, g)


class TestFallbackAndInvalidation:
    def test_full_adaptation_states_fall_back(self, fitted_full_adapt, cold_tasks):
        method = fitted_full_adapt
        rng = np.random.default_rng(2)
        serving = method.serving
        states = method.adapt_users(cold_tasks[:2])
        tables = method._scoring_tables()
        for state in states:
            assert state is not None
            # Full adaptation rewrote the towers: not fast-path eligible.
            assert not tables.item_current(state)
            inst = make_instance(rng, serving.n_users, serving.n_items, 30)
            fast = method.score_with_state(state, inst)
            full = full_solo(method, state, inst)
            assert np.array_equal(fast, full)
        batch_insts = [
            make_instance(rng, serving.n_users, serving.n_items, 25)
            for _ in range(len(states) + 1)
        ]
        batch_states = [*states, None]
        fast = method.score_with_state_batch(batch_states, batch_insts)
        full = full_batch(method, batch_states, batch_insts)
        for f, g in zip(fast, full):
            assert np.array_equal(f, g)

    def test_meta_refresh_invalidates_when_towers_move(
        self, fitted_full_adapt, cold_tasks
    ):
        method = fitted_full_adapt
        before = method._scoring_tables()
        method.meta_refresh(cold_tasks[:2], meta_lr=0.05)
        # Full adaptation: refresh rewrote the tower arrays, tables dropped.
        assert method._tables is None
        after = method._scoring_tables()
        assert after is not before
        assert after.item_current(method.maml.params)
        rng = np.random.default_rng(3)
        serving = method.serving
        inst = make_instance(rng, serving.n_users, serving.n_items, 40)
        fast = method.score_with_state(None, inst)
        full = full_solo(method, None, inst)
        assert np.array_equal(fast, full)

    def test_meta_refresh_keeps_tables_when_towers_frozen(
        self, fitted_melu, cold_tasks
    ):
        method = fitted_melu
        before = method._scoring_tables()
        method.meta_refresh(cold_tasks[:2], meta_lr=0.05)
        # Decision-only refresh moves only mlp.* keys: the bake is intact.
        assert method._scoring_tables() is before

    def test_stale_tables_never_served(self, fitted_melu):
        """A tables object baked from older meta-params must be ignored."""
        method = fitted_melu
        content = method._packed_content()
        stale = build_frozen_tower_tables(method.maml, content)
        # Simulate a tower rewrite after the bake.
        key = next(k for k in method.maml.params if k.startswith("item_embed."))
        old = method.maml.params[key]
        method.maml.params[key] = old.copy()
        try:
            rng = np.random.default_rng(4)
            serving = method.serving
            inst = make_instance(rng, serving.n_users, serving.n_items, 10)
            got = batched_candidate_scores(
                method.maml,
                content.user,
                content.item,
                [None],
                [inst],
                tables=stale,
            )[0]
            expected = full_batch(method, [None], [inst])[0]
            assert np.array_equal(got, expected)
        finally:
            method.maml.params[key] = old
            method._tables = None


class TestArtifactTables:
    def test_format_2_artifact_bakes_tables(self, fitted_melu, tmp_path):
        path = fitted_melu.save(tmp_path / "melu.npz")
        with zipfile.ZipFile(path) as zf:
            names = set(zf.namelist())
            header = json.loads(
                np.load(zf.open("__config_json__.npy")).tobytes().decode()
            )
        assert ARTIFACT_FORMAT == 2
        assert header["format"] == 2
        assert "serving.table.item_embeddings.npy" in names
        assert "serving.table.user_embeddings.npy" in names

    def test_mmap_load_shares_tables_without_copy(self, fitted_melu, tmp_path):
        path = fitted_melu.save(tmp_path / "melu.npz")
        loaded = Recommender.load(path, mmap_mode="r")
        # Worker startup must not materialize the bake: the attached
        # tables are memmap views straight into the artifact.
        assert isinstance(loaded._tables.item, np.memmap)
        assert isinstance(loaded._tables.user, np.memmap)
        first = fitted_melu.recommend(0, k=10)
        second = loaded.recommend(0, k=10)
        assert np.array_equal(first.items, second.items)
        assert np.array_equal(first.scores, second.scores)

    def test_format_1_artifact_still_loads(self, fitted_melu, tmp_path):
        """Stripping the table members reproduces a pre-format-2 artifact."""
        from repro.nn.serialization import load_params, save_params

        path = fitted_melu.save(tmp_path / "melu.npz")
        arrays, header = load_params(path)
        stripped = {
            name: np.asarray(value)
            for name, value in arrays.items()
            if not name.startswith("serving.table.")
        }
        header["format"] = 1
        old_path = save_params(tmp_path / "melu_v1.npz", stripped, config=header)
        loaded = Recommender.load(old_path, mmap_mode="r")
        assert loaded._tables is None  # nothing baked at load time
        first = fitted_melu.recommend(1, k=10)
        second = loaded.recommend(1, k=10)
        assert np.array_equal(first.items, second.items)
        assert np.array_equal(first.scores, second.scores)
        assert loaded._tables is not None  # computed once, on first use


class TestServiceIntegration:
    def test_candidates_histogram_recorded(self, fitted_melu):
        service = RecommenderService(fitted_melu, cache_size=4)
        service.recommend(0, k=5)
        service.recommend_many([1, 2, 3], k=5)
        snap = service.metrics.snapshot()
        hist = snap["histograms"].get("serve.score.candidates")
        assert hist is not None
        assert hist["count"] == 4

    def test_service_results_unchanged_by_tables(self, fitted_melu, cold_tasks):
        """End-to-end: served rankings equal the table-free scoring path."""
        service = RecommenderService(fitted_melu, cache_size=8)
        task = cold_tasks[0]
        service.register_user_history(task)
        rec = service.recommend(task.user_row, k=10)
        pool = service._candidates_for(task.user_row, True)
        state = fitted_melu.adapt_users([task])[0]
        inst = EvalInstance(
            user_row=task.user_row,
            pos_item=int(pool[0]),
            neg_items=pool[1:],
        )
        scores = np.asarray(full_solo(fitted_melu, state, inst), float)
        order = np.argsort(-scores, kind="stable")[:10]
        assert np.array_equal(rec.items, pool[order])
        assert np.array_equal(rec.scores, scores[order])
