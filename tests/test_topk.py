"""``top_k_order`` must reproduce the full stable sort bit for bit.

The serving sites it replaced ranked with
``np.argsort(-scores, kind="stable")[:k]``; the partition-based selection
is only admissible because it returns the *exact* same index order —
including tie-breaking by ascending index and NaNs ranked last — for every
input.  These tests pin that equivalence on the adversarial shapes
(heavy ties, infinities, NaNs, degenerate k) plus a hypothesis sweep, and
pin the MetaCF potential-neighbour fix that rides on it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.metacf import MetaCF
from repro.utils.topk import top_k_order


def reference(scores: np.ndarray, k: int) -> np.ndarray:
    return np.argsort(-scores, kind="stable")[:k]


def assert_matches(scores, k) -> None:
    scores = np.asarray(scores)
    got = top_k_order(scores, k)
    expected = reference(scores, k)
    assert got.dtype.kind == expected.dtype.kind == "i"
    assert np.array_equal(got, expected), (scores, k, got, expected)


class TestTopKOrder:
    def test_random_vectors(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 100, 1000):
            for k in (1, 2, 3, n // 2, n - 1, n, n + 5):
                if k <= 0:
                    continue
                assert_matches(rng.standard_normal(n), k)

    def test_heavily_tied(self):
        rng = np.random.default_rng(1)
        for n in (10, 100, 1000):
            # Integer-valued scores from a tiny alphabet: nearly every
            # element ties, the regime where the unstable reversal breaks.
            scores = rng.integers(0, 4, size=n).astype(float)
            for k in (1, 3, n // 2, n):
                assert_matches(scores, k)

    def test_all_equal(self):
        scores = np.full(50, 3.25)
        for k in (1, 10, 50):
            assert np.array_equal(top_k_order(scores, k), np.arange(k))

    def test_float32_scores(self):
        rng = np.random.default_rng(2)
        scores = rng.integers(0, 5, size=200).astype(np.float32)
        assert_matches(scores, 17)

    def test_infinities(self):
        scores = np.array([1.0, -np.inf, np.inf, 0.0, np.inf, -np.inf])
        for k in range(1, 7):
            assert_matches(scores, k)

    def test_nans_rank_last(self):
        scores = np.array([0.5, np.nan, 2.0, np.nan, 1.0, -1.0])
        for k in range(1, 7):
            assert_matches(scores, k)

    def test_all_nan(self):
        assert_matches(np.full(5, np.nan), 3)

    def test_k_degenerate(self):
        scores = np.array([2.0, 1.0, 3.0])
        assert top_k_order(scores, 0).size == 0
        assert_matches(scores, len(scores) + 10)
        assert top_k_order(np.array([]), 3).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            top_k_order(np.zeros((3, 3)), 2)

    @settings(max_examples=200, deadline=None)
    @given(
        scores=st.lists(
            st.one_of(
                st.integers(min_value=-3, max_value=3).map(float),
                st.floats(allow_nan=True, allow_infinity=True, width=32),
            ),
            min_size=1,
            max_size=64,
        ),
        k=st.integers(min_value=1, max_value=80),
    )
    def test_hypothesis_matches_stable_argsort(self, scores, k):
        assert_matches(np.array(scores), k)


class TestMetaCFTieBreak:
    def test_potential_neighbours_tie_break_deterministically(self):
        """Equal co-occurrence counts must select ascending item ids."""
        method = MetaCF(n_potential=3)
        n_items = 8
        # Symmetric count matrix where every non-profile item co-occurs
        # with item 0 equally often: the selection is pure tie-break.
        cooc = np.ones((n_items, n_items), dtype=np.float64)
        method._cooc = cooc
        profile = method._extend_profile(np.array([0]))
        assert np.array_equal(profile, [0, 1, 2, 3])

    def test_potential_neighbours_prefer_higher_counts(self):
        method = MetaCF(n_potential=2)
        cooc = np.ones((6, 6))
        cooc[:, 4] = 5.0  # item 4 co-occurs most
        method._cooc = cooc
        profile = method._extend_profile(np.array([2]))
        assert np.array_equal(profile, [2, 4, 0])
