"""Stacked-parameter helpers, TaskBatch padding, and artifact round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.meta.maml import TaskBatch, TaskBatchItem
from repro.nn import (
    load_params,
    save_params,
    stack_params,
    tile_params,
    tree_map,
    unstack_params,
)

RNG = np.random.default_rng(0)


def _params(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {"W": rng.normal(size=(3, 2)), "b": rng.normal(size=(2,))}


class TestTreeMap:
    def test_applies_leafwise(self):
        doubled = tree_map(lambda v: 2 * v, _params(0))
        np.testing.assert_allclose(doubled["W"], 2 * _params(0)["W"])

    def test_zips_multiple_trees(self):
        a, b = _params(0), _params(1)
        summed = tree_map(np.add, a, b)
        np.testing.assert_allclose(summed["b"], a["b"] + b["b"])

    def test_rejects_mismatched_keys(self):
        with pytest.raises(ValueError, match="identical keys"):
            tree_map(np.add, {"W": np.ones(2)}, {"V": np.ones(2)})


class TestStackUnstack:
    def test_round_trip(self):
        originals = [_params(s) for s in range(4)]
        stacked = stack_params(originals)
        assert stacked["W"].shape == (4, 3, 2)
        for original, restored in zip(originals, unstack_params(stacked, 4)):
            for name in original:
                np.testing.assert_array_equal(original[name], restored[name])

    def test_unstack_shares_unstacked_keys(self):
        stacked = {"W": RNG.normal(size=(3, 3, 2)), "b": RNG.normal(size=(2,))}
        parts = unstack_params(stacked, 3, stacked_keys=["W"])
        assert all(part["b"] is stacked["b"] for part in parts)
        np.testing.assert_array_equal(parts[1]["W"], stacked["W"][1])

    def test_unstack_validates_leading_dim(self):
        with pytest.raises(ValueError, match="leading dim"):
            unstack_params({"W": np.zeros((2, 3))}, 4)

    def test_unstack_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="not present"):
            unstack_params({"W": np.zeros((2, 3))}, 2, stacked_keys=["V"])

    def test_stack_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            stack_params([])
        with pytest.raises(ValueError, match="identical keys"):
            stack_params([{"W": np.ones(2)}, {"V": np.ones(2)}])


class TestTileParams:
    def test_tiles_writable_copies(self):
        base = _params(0)
        tiled = tile_params(base, 5)
        assert tiled["W"].shape == (5, 3, 2)
        tiled["W"][0] += 1.0  # must not write through to the base weights
        np.testing.assert_array_equal(base["W"], _params(0)["W"])

    def test_keys_subset_stays_shared(self):
        base = _params(0)
        tiled = tile_params(base, 5, keys=["W"])
        assert tiled["b"] is base["b"]
        assert tiled["W"].shape == (5, 3, 2)


class TestStackedSerialization:
    def test_stacked_params_round_trip(self, tmp_path):
        """Stacked fast weights survive save/load bit-exactly."""
        stacked = stack_params([_params(s) for s in range(3)])
        stacked["shared"] = RNG.normal(size=(4,))
        path = tmp_path / "stacked.npz"
        save_params(path, stacked, config={"tasks": 3})
        loaded, header = load_params(path)
        assert header == {"tasks": 3}
        assert set(loaded) == set(stacked)
        for name in stacked:
            np.testing.assert_array_equal(loaded[name], stacked[name])
        for part in unstack_params(loaded, 3, stacked_keys=["W", "b"]):
            assert part["W"].shape == (3, 2)


def _item(seed: int, n_support: int, n_query: int, dim: int = 4) -> TaskBatchItem:
    rng = np.random.default_rng(seed)
    return TaskBatchItem(
        support_user=rng.random((n_support, dim)),
        support_item=rng.random((n_support, dim)),
        support_labels=(rng.random(n_support) < 0.5).astype(float),
        query_user=rng.random((n_query, dim)),
        query_item=rng.random((n_query, dim)),
        query_labels=(rng.random(n_query) < 0.5).astype(float),
    )


class TestTaskBatch:
    def test_pads_ragged_tasks_to_widest(self):
        batch = TaskBatch.from_items([_item(0, 3, 2), _item(1, 5, 4)])
        assert len(batch) == 2
        assert batch.support_user.shape == (2, 5, 4)
        assert batch.query_labels.shape == (2, 4)
        np.testing.assert_array_equal(batch.support_mask[0], [1, 1, 1, 0, 0])
        np.testing.assert_array_equal(batch.query_mask[1], [1, 1, 1, 1])

    def test_real_rows_preserved_padding_zero(self):
        items = [_item(0, 2, 1), _item(1, 4, 3)]
        batch = TaskBatch.from_items(items)
        np.testing.assert_array_equal(batch.support_user[0, :2], items[0].support_user)
        np.testing.assert_array_equal(batch.support_user[0, 2:], 0.0)
        np.testing.assert_array_equal(batch.support_labels[1], items[1].support_labels)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TaskBatch.from_items([])
