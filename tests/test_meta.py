"""Preference model, MAML and the MetaDPA recommender."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.splits import Scenario
from repro.data.tasks import PreferenceTask
from repro.meta.maml import MAML, MAMLConfig, TaskBatchItem, materialize_task, subsample_support
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.meta.trainer import MetaDPA, MetaDPAConfig, _sharpen_per_user
from repro.nn import numerical_gradient, relative_error

RNG = np.random.default_rng(0)


def _model(content_dim=6, dtype=np.float64) -> PreferenceModel:
    # float64 by default here: numerical-gradient checks (and the exact
    # adapt/finetune identities below) need more headroom than the float32
    # the meta stack trains in.
    return PreferenceModel(
        PreferenceModelConfig(
            content_dim=content_dim, embed_dim=4, hidden_dims=(5,), dtype=dtype
        )
    )


def _batch(n=8, content_dim=6, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.random((n, content_dim)),
        rng.random((n, content_dim)),
        (rng.random(n) < 0.5).astype(float),
    )


class TestPreferenceModel:
    def test_forward_shape_and_range(self):
        model = _model()
        params = model.init_params(0)
        cu, ci, _ = _batch()
        preds, _ = model.forward(params, cu, ci)
        assert preds.shape == (8,)
        assert np.all((preds > 0) & (preds < 1))

    def test_loss_grads_match_numerical(self):
        model = _model()
        params = model.init_params(1)
        cu, ci, labels = _batch()
        _, grads = model.loss_and_grads(params, cu, ci, labels)
        for name in ["user_embed.0.W", "item_embed.0.b", "mlp.0.W", "mlp.2.b"]:
            def loss(p, name=name):
                saved = params[name]
                params[name] = p
                value = model.loss_and_grads(params, cu, ci, labels)[0]
                params[name] = saved
                return value

            num = numerical_gradient(loss, params[name].copy())
            assert relative_error(grads[name], num) < 1e-4, name

    def test_decision_params_are_mlp(self):
        model = _model()
        params = model.init_params(0)
        decision = model.decision_params(params)
        assert decision
        assert all(name.startswith("mlp.") for name in decision)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PreferenceModelConfig(content_dim=0)
        with pytest.raises(ValueError):
            PreferenceModelConfig(content_dim=4, hidden_dims=(0,))

    def test_soft_labels_accepted(self):
        model = _model()
        params = model.init_params(0)
        cu, ci, _ = _batch()
        soft = np.linspace(0.1, 0.9, 8)
        loss, _ = model.loss_and_grads(params, cu, ci, soft)
        assert np.isfinite(loss)


def _task_item(content_dim=6, seed=0) -> TaskBatchItem:
    rng = np.random.default_rng(seed)
    return TaskBatchItem(
        support_user=rng.random((6, content_dim)),
        support_item=rng.random((6, content_dim)),
        support_labels=(rng.random(6) < 0.5).astype(float),
        query_user=rng.random((4, content_dim)),
        query_item=rng.random((4, content_dim)),
        query_labels=(rng.random(4) < 0.5).astype(float),
    )


class TestMAML:
    def test_adapt_changes_params_leaves_meta(self):
        maml = MAML(_model(), MAMLConfig(), seed=0)
        before = {k: v.copy() for k, v in maml.params.items()}
        fast = maml.adapt(_task_item())
        assert any(not np.allclose(fast[k], before[k]) for k in fast)
        for name in maml.params:
            np.testing.assert_array_equal(maml.params[name], before[name])

    def test_local_only_decision_freezes_embeddings(self):
        maml = MAML(_model(), MAMLConfig(local_only_decision=True), seed=0)
        fast = maml.adapt(_task_item())
        for name in fast:
            if not name.startswith("mlp."):
                np.testing.assert_array_equal(fast[name], maml.params[name])
        assert any(
            not np.allclose(fast[n], maml.params[n]) for n in fast if n.startswith("mlp.")
        )

    def test_meta_step_updates_params(self):
        maml = MAML(_model(), MAMLConfig(), seed=0)
        before = {k: v.copy() for k, v in maml.params.items()}
        loss = maml.meta_step([_task_item(seed=1), _task_item(seed=2)])
        assert np.isfinite(loss)
        assert any(not np.allclose(maml.params[k], before[k]) for k in before)

    def test_fit_reduces_loss(self):
        maml = MAML(_model(), MAMLConfig(outer_lr=5e-3), seed=0)
        tasks = [_task_item(seed=s) for s in range(12)]
        history = maml.fit(tasks, epochs=30)
        assert history[-1] < history[0]

    def test_empty_batch_rejected(self):
        maml = MAML(_model(), seed=0)
        with pytest.raises(ValueError):
            maml.meta_step([])
        with pytest.raises(ValueError):
            maml.fit([_task_item()], epochs=0)

    def test_finetune_steps_override(self):
        maml = MAML(_model(), MAMLConfig(inner_steps=1), seed=0)
        item = _task_item()
        zero = maml.finetune(item, steps=0)
        for name in zero:
            np.testing.assert_array_equal(zero[name], maml.params[name])
        many = maml.finetune(item, steps=4)
        assert any(not np.allclose(many[k], maml.params[k]) for k in many)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MAMLConfig(inner_lr=0.0)
        with pytest.raises(ValueError):
            MAMLConfig(inner_steps=0)


class TestSubsampleSupport:
    def _task(self):
        return PreferenceTask(
            user_row=0,
            support_items=np.arange(12),
            support_labels=np.array([1.0] * 6 + [0.0] * 6),
            query_items=np.array([20, 21]),
            query_labels=np.array([1.0, 0.0]),
        )

    def test_limits_positives(self):
        small = subsample_support(self._task(), np.random.default_rng(0), max_positives=3)
        assert (small.support_labels > 0.5).sum() == 3
        assert (small.support_labels < 0.5).sum() <= 6

    def test_preserves_query(self):
        task = self._task()
        small = subsample_support(task, np.random.default_rng(0))
        np.testing.assert_array_equal(small.query_items, task.query_items)

    def test_sampled_items_come_from_original(self):
        task = self._task()
        small = subsample_support(task, np.random.default_rng(0))
        assert set(small.support_items.tolist()) <= set(task.support_items.tolist())

    def test_labels_consistent_with_source(self):
        task = self._task()
        small = subsample_support(task, np.random.default_rng(1))
        for item, label in zip(small.support_items, small.support_labels):
            original = task.support_labels[task.support_items == item][0]
            assert original == label


class TestMaterializeTask:
    def test_broadcasts_user_content(self):
        uc = RNG.random((3, 5))
        ic = RNG.random((10, 5))
        item = materialize_task(
            uc, ic, 1,
            np.array([0, 2]), np.array([1.0, 0.0]),
            np.array([3]), np.array([1.0]),
        )
        assert item.support_user.shape == (2, 5)
        np.testing.assert_array_equal(item.support_user[0], uc[1])
        np.testing.assert_array_equal(item.support_item[1], ic[2])
        assert item.query_user.shape == (1, 5)


class TestSharpen:
    def test_full_range_per_user(self):
        matrix = np.array([[0.4, 0.5, 0.45], [0.2, 0.2, 0.8]])
        out = _sharpen_per_user(matrix)
        np.testing.assert_allclose(out.min(axis=1), 0.0)
        np.testing.assert_allclose(out.max(axis=1), 1.0)

    def test_order_preserved(self):
        row = np.array([[0.41, 0.47, 0.43]])
        out = _sharpen_per_user(row)
        assert np.argsort(out[0]).tolist() == np.argsort(row[0]).tolist()

    def test_constant_row_safe(self):
        out = _sharpen_per_user(np.full((1, 4), 0.5))
        assert np.isfinite(out).all()


class TestMetaDPAEndToEnd:
    @pytest.fixture(scope="class")
    def fitted(self, bench_experiment):
        config = MetaDPAConfig(cvae_epochs=40, meta_epochs=2)
        method = MetaDPA(config, seed=0)
        method.fit(bench_experiment.ctx)
        return method

    def test_fit_produces_augmentations(self, fitted, bench_experiment):
        assert fitted.augmented is not None
        assert fitted.augmented.k == len(bench_experiment.dataset.sources)

    def test_score_shapes(self, fitted, bench_experiment):
        scenario = Scenario.C_U
        tasks = bench_experiment.task_sets[scenario]
        inst = bench_experiment.instances[scenario][0]
        task = next(t for t in tasks if t.user_row == inst.user_row)
        scores = fitted.score(task, inst)
        assert scores.shape == inst.candidates.shape
        assert np.isfinite(scores).all()

    def test_score_without_task(self, fitted, bench_experiment):
        inst = bench_experiment.instances[Scenario.WARM][0]
        scores = fitted.score(None, inst)
        assert scores.shape == inst.candidates.shape

    def test_score_before_fit_raises(self, bench_experiment):
        method = MetaDPA(seed=0)
        inst = bench_experiment.instances[Scenario.WARM][0]
        with pytest.raises(RuntimeError):
            method.score(None, inst)

    def test_no_augmentation_variant(self, bench_experiment):
        config = MetaDPAConfig(use_augmentation=False, meta_epochs=1)
        method = MetaDPA(config, seed=0)
        method.fit(bench_experiment.ctx)
        assert method.augmented is None

    def test_deterministic_given_seed(self, bench_experiment):
        def run():
            config = MetaDPAConfig(cvae_epochs=5, meta_epochs=1)
            m = MetaDPA(config, seed=9)
            m.fit(bench_experiment.ctx)
            inst = bench_experiment.instances[Scenario.WARM][0]
            return m.score(None, inst)

        np.testing.assert_allclose(run(), run())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MetaDPAConfig(meta_epochs=0)
        with pytest.raises(ValueError):
            MetaDPAConfig(augmentation_weight=2.0)
