"""Streaming cold-start: appends, observe/invalidate, refresh, temporal eval.

Four layers of guarantees:

1. **Corpus appends** — a corpus grown incrementally (``TaskCorpus.append``
   / ``extend``, starting from a builder prefix or from
   ``TaskCorpus.empty``) is indistinguishable from one rebuilt from
   scratch: every packed array, every ``gather_batch`` and ``materialize``
   output is bitwise identical, so the training path cannot tell streams
   from batches.
2. **Event ingest** — ``RecommenderService.observe`` appends to exactly
   one user's support task, invalidates exactly that user's cached
   adaptation, excludes the observed item from recommendation pools, and
   (with ``refresh_every``) triggers a reptile meta-refresh that clears
   the whole cache.
3. **Serving-cache correctness** — the value-fingerprint cache (re-sent
   equal tasks hit, genuinely new history misses) including across shard
   pipes, exception-safe pending accounting, and up-front batch request
   validation.
4. **Temporal protocol** — ``split_task_stream`` partitions support sets
   without touching queries, and the acceptance bar: with equal adaptation
   budgets, periodic meta-refresh beats no-refresh on post-split NDCG.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.splits import Scenario
from repro.data.tasks import PreferenceTask, append_interaction, task_fingerprint
from repro.eval.temporal import compare_refresh_cadence, evaluate_stream, split_task_stream
from repro.meta.corpus import BatchScratch, TaskCorpus, TaskCorpusBuilder, pack_content
from repro.registry import build_method
from repro.serve import ShardedService, mixed_zipfian_stream, run_mixed_open_loop
from repro.service import RecommenderService

CONTENT_DIM = 5
N_ITEMS = 30
N_USERS = 8

seeds = st.integers(min_value=0, max_value=2**20)


def _content(seed: int = 0):
    rng = np.random.default_rng(seed)
    return pack_content(
        rng.random((N_USERS, CONTENT_DIM)), rng.random((N_ITEMS, CONTENT_DIM))
    )


def _task(rng: np.random.Generator, n_support: int | None = None) -> PreferenceTask:
    n_s = int(rng.integers(0, 7)) if n_support is None else n_support
    n_q = int(rng.integers(1, 6))
    return PreferenceTask(
        user_row=int(rng.integers(0, N_USERS)),
        support_items=rng.choice(N_ITEMS, size=n_s, replace=False).astype(int),
        support_labels=(rng.random(n_s) < 0.5).astype(float),
        query_items=rng.choice(N_ITEMS, size=n_q, replace=False).astype(int),
        query_labels=(rng.random(n_q) < 0.5).astype(float),
    )


_ARRAYS = (
    "user_rows",
    "support_items",
    "support_offsets",
    "support_lens",
    "support_labels",
    "support_label_offsets",
    "query_items",
    "query_offsets",
    "query_lens",
    "query_labels",
    "query_label_offsets",
    "view_base",
)


def _assert_corpora_identical(grown: TaskCorpus, rebuilt: TaskCorpus) -> None:
    for name in _ARRAYS:
        got, want = getattr(grown, name), getattr(rebuilt, name)
        assert got.dtype == want.dtype, name
        np.testing.assert_array_equal(got, want, err_msg=name)
    ids = np.arange(rebuilt.n_views)
    a = grown.gather_batch(ids, scratch=BatchScratch())
    b = rebuilt.gather_batch(ids, scratch=BatchScratch())
    for field in ("user_rows", "support_items", "support_labels", "support_mask",
                  "query_items", "query_labels", "query_mask"):
        np.testing.assert_array_equal(
            getattr(a, field), getattr(b, field), err_msg=field
        )
    for x, y in zip(grown.materialize(), rebuilt.materialize()):
        np.testing.assert_array_equal(x.support_item, y.support_item)
        np.testing.assert_array_equal(x.support_labels, y.support_labels)
        np.testing.assert_array_equal(x.query_item, y.query_item)
        np.testing.assert_array_equal(x.query_labels, y.query_labels)


class TestPackedContentExtend:
    def test_rows_appended_and_prefix_bitwise(self):
        content = _content(0)
        rng = np.random.default_rng(1)
        extra = rng.random((3, CONTENT_DIM))
        grown = content.extend(item=extra)
        assert grown.item.shape == (N_ITEMS + 3, CONTENT_DIM)
        np.testing.assert_array_equal(grown.item[:N_ITEMS], content.item)
        np.testing.assert_array_equal(
            grown.item[N_ITEMS:], extra.astype(np.float32)
        )
        # The untouched side is shared by reference, not copied.
        assert grown.user is content.user

    def test_single_row_and_dim_mismatch(self):
        content = _content(0)
        grown = content.extend(user=np.zeros(CONTENT_DIM))
        assert grown.user.shape == (N_USERS + 1, CONTENT_DIM)
        with pytest.raises(ValueError, match="content dim"):
            content.extend(item=np.zeros((2, CONTENT_DIM + 1)))


class TestCorpusAppend:
    @given(seed=seeds, n_tasks=st.integers(1, 8), n_prefix=st.integers(0, 8))
    @settings(max_examples=20, deadline=None)
    def test_appended_equals_rebuilt(self, seed, n_tasks, n_prefix):
        """Grow-by-append is bitwise indistinguishable from rebuild."""
        rng = np.random.default_rng(seed)
        content = _content(seed)
        tasks = [_task(rng) for _ in range(n_tasks)]
        n_prefix = min(n_prefix, n_tasks)

        rebuilt = TaskCorpusBuilder(content)
        rebuilt.extend(tasks)
        if n_prefix > 0:
            grown_builder = TaskCorpusBuilder(content)
            grown_builder.extend(tasks[:n_prefix])
            grown = grown_builder.build()
        else:
            grown = TaskCorpus.empty(content)
        grown.extend(tasks[n_prefix:])
        _assert_corpora_identical(grown, rebuilt.build())

    def test_append_returns_base_with_identity_view_last(self):
        corpus = TaskCorpus.empty(_content(0))
        rng = np.random.default_rng(3)
        base = corpus.append(_task(rng, n_support=4))
        assert base == 0 and corpus.n_views == 1
        second = corpus.append(_task(rng, n_support=2))
        assert second == 1
        assert int(corpus.view_base[-1]) == second

    def test_label_views_survive_later_appends(self):
        rng = np.random.default_rng(4)
        corpus = TaskCorpus.empty(_content(0))
        task = _task(rng, n_support=5)
        base = corpus.append(task)
        view = corpus.append_rating_view(base, rng.random(N_ITEMS))
        corpus.append(_task(rng, n_support=3))
        _, s_items, _, _, _ = corpus.view_arrays(view)
        np.testing.assert_array_equal(s_items, task.support_items)
        # Label views keep aliasing the (grown) index pools, never copying.
        assert np.shares_memory(s_items, corpus.support_items)

    def test_append_validates_against_content(self):
        corpus = TaskCorpus.empty(_content(0))
        rng = np.random.default_rng(5)
        bad_item = replace(
            _task(rng, n_support=2), support_items=np.array([0, N_ITEMS])
        )
        with pytest.raises(ValueError, match="item"):
            corpus.append(bad_item)
        bad_user = replace(_task(rng, n_support=2), user_row=N_USERS)
        with pytest.raises(ValueError, match="user"):
            corpus.append(bad_user)
        assert corpus.n_tasks == 0 and corpus.n_views == 0


class TestFingerprint:
    def test_stable_across_pickle(self):
        task = _task(np.random.default_rng(0), n_support=4)
        clone = pickle.loads(pickle.dumps(task))
        assert clone is not task
        assert task_fingerprint(clone) == task_fingerprint(task)
        assert task_fingerprint(replace(task)) == task_fingerprint(task)

    def test_sensitive_to_every_field(self):
        task = _task(np.random.default_rng(1), n_support=4)
        base = task_fingerprint(task)
        assert task_fingerprint(replace(task, user_row=task.user_row + 1)) != base
        flipped = replace(task, support_labels=1.0 - task.support_labels)
        assert task_fingerprint(flipped) != base
        rolled = replace(task, support_items=np.roll(task.support_items, 1))
        assert task_fingerprint(rolled) != base
        shorter = replace(
            task,
            support_items=task.support_items[:-1],
            support_labels=task.support_labels[:-1],
        )
        assert task_fingerprint(shorter) != base

    def test_append_interaction_branches(self):
        grown = append_interaction(None, user_row=3, item_row=7, rating=1.0)
        assert grown.user_row == 3 and grown.n_support == 1 and grown.n_query == 0
        assert int(grown.support_items[0]) == 7

        longer = append_interaction(grown, 3, 9, 0.0)
        np.testing.assert_array_equal(longer.support_items, [7, 9])
        np.testing.assert_array_equal(longer.support_labels, [1.0, 0.0])

        # Re-observing a known item replaces its rating instead of duplicating.
        replaced = append_interaction(longer, 3, 7, 0.0)
        np.testing.assert_array_equal(replaced.support_items, [7, 9])
        np.testing.assert_array_equal(replaced.support_labels, [0.0, 0.0])
        assert task_fingerprint(replaced) != task_fingerprint(longer)

        with pytest.raises(ValueError, match="user"):
            append_interaction(grown, 4, 1, 1.0)


class _CountingMethod:
    """Wrap a recommender, counting expensive adaptation calls."""

    def __init__(self, method):
        self._method = method
        self.adapt_calls = 0

    def __getattr__(self, name):
        return getattr(self._method, name)

    def adapt_user(self, task):
        self.adapt_calls += 1
        return self._method.adapt_user(task)

    def adapt_users(self, tasks):
        self.adapt_calls += len(tasks)
        return self._method.adapt_users(tasks)


class _ExplodingMethod(_CountingMethod):
    """Adaptation raises on demand — exercises the exception-safe paths."""

    explode = False

    def adapt_user(self, task):
        if self.explode:
            raise RuntimeError("adaptation backend down")
        return super().adapt_user(task)

    def adapt_users(self, tasks):
        if self.explode:
            raise RuntimeError("adaptation backend down")
        return super().adapt_users(tasks)


@pytest.fixture(scope="module")
def melu(bench_experiment):
    method = build_method({"name": "MeLU", "meta_epochs": 1}, seed=0)
    method.fit(bench_experiment.ctx)
    return method


@pytest.fixture()
def melu_restored(melu):
    """MeLU whose meta-parameters are restored after the test (refresh mutates)."""
    snapshot = {k: v.copy() for k, v in melu.maml.params.items()}
    yield melu
    melu.maml.params.update(snapshot)
    melu._stream_corpus = None


@pytest.fixture(scope="module")
def cold_tasks(bench_experiment):
    return {int(t.user_row): t for t in bench_experiment.task_sets[Scenario.C_U]}


class TestObserve:
    def test_invalidates_exactly_that_user(self, melu, cold_tasks):
        users = sorted(cold_tasks)[:3]
        counting = _CountingMethod(melu)
        service = RecommenderService(counting, cache_size=8)
        for user in users:
            service.register_user_history(cold_tasks[user])
            service.recommend(user, k=5)
        assert counting.adapt_calls == 3
        service.observe(users[0], item_row=0, rating=1.0)
        for user in users:
            service.recommend(user, k=5)
        # Only the observed user re-adapted; the other two stayed cached.
        assert counting.adapt_calls == 4
        stream = service.stats()["stream"]
        assert stream["events"] == 1 and stream["observed_users"] == 1

    def test_observed_item_leaves_candidate_pool(self, melu, cold_tasks):
        user = sorted(cold_tasks)[0]
        service = RecommenderService(melu, cache_size=8)
        service.register_user_history(cold_tasks[user])
        top = int(service.recommend(user, k=1).items[0])
        service.observe(user, top, rating=1.0)
        later = service.recommend(user, k=melu.serving.n_items // 2)
        assert top not in later.items

    def test_unknown_user_gets_fresh_history(self, melu, cold_tasks):
        user = sorted(cold_tasks)[0]
        counting = _CountingMethod(melu)
        service = RecommenderService(counting, cache_size=8)
        service.observe(user, item_row=1, rating=1.0)  # no registered task
        result = service.recommend(user, k=5)
        assert len(result) == 5 and counting.adapt_calls == 1

    def test_validates_ranges(self, melu):
        service = RecommenderService(melu)
        with pytest.raises(ValueError, match="user_row"):
            service.observe(melu.serving.n_users, 0)
        with pytest.raises(ValueError, match="item_row"):
            service.observe(0, melu.serving.n_items)
        assert service.stats()["stream"]["events"] == 0


class TestMetaRefresh:
    def test_refresh_every_triggers_and_clears_cache(self, melu_restored, cold_tasks):
        users = sorted(cold_tasks)[:2]
        counting = _CountingMethod(melu_restored)
        service = RecommenderService(counting, cache_size=8, refresh_every=2)
        for user in users:
            service.register_user_history(cold_tasks[user])
            service.recommend(user, k=5)
        assert counting.adapt_calls == 2
        service.observe(users[0], 0, 1.0)
        assert service.stats()["stream"]["refreshes"] == 0
        service.observe(users[0], 1, 1.0)  # second event: refresh due
        stats = service.stats()
        assert stats["stream"]["refreshes"] == 1
        assert stats["stream"]["dirty_users"] == 0
        # A refresh moved the meta-initialization, so every cached fast
        # weight is stale: both users re-adapt, not just the observed one.
        for user in users:
            service.recommend(user, k=5)
        assert counting.adapt_calls == 4

    def test_manual_refresh_without_dirty_users_is_free(self, melu_restored):
        counting = _CountingMethod(melu_restored)
        service = RecommenderService(counting, cache_size=8)
        info = service.meta_refresh()
        assert info == {"n_tasks": 0, "delta_rms": 0.0}
        assert service.stats()["stream"]["refreshes"] == 0

    def test_refresh_moves_params_toward_observations(self, melu_restored, cold_tasks):
        user = sorted(cold_tasks)[0]
        service = RecommenderService(melu_restored, cache_size=8)
        before = {
            k: v.copy() for k, v in melu_restored.maml.params.items()
        }
        service.register_user_history(cold_tasks[user])
        service.observe(user, 0, 1.0)
        info = service.meta_refresh()
        assert info["n_tasks"] == 1 and info["delta_rms"] > 0
        changed = [
            k
            for k, v in melu_restored.maml.params.items()
            if not np.array_equal(v, before[k])
        ]
        assert changed and all(k.startswith("mlp.") for k in changed)

    def test_refresh_every_requires_meta_method(self, bench_experiment):
        popularity = build_method({"name": "Popularity"}, seed=0)
        popularity.fit(bench_experiment.ctx)
        assert not popularity.supports_meta_refresh()
        with pytest.raises(ValueError, match="meta-refresh"):
            RecommenderService(popularity, refresh_every=4)


class TestServingCacheCorrectness:
    def test_batch_validates_every_request_up_front(self, melu, cold_tasks):
        from repro.service import ServeRequest

        users = sorted(cold_tasks)[:2]
        counting = _CountingMethod(melu)
        service = RecommenderService(counting, cache_size=8)
        for user in users:
            service.register_user_history(cold_tasks[user])
        requests = [
            ServeRequest(users[0], 5),
            ServeRequest(users[1], 0),  # invalid k, placed after a valid one
        ]
        with pytest.raises(ValueError, match="k must be positive"):
            service.recommend_batch(requests)
        # The bad batch left no partial state: nothing adapted, nothing
        # cached, no request counted.
        stats = service.stats()
        assert counting.adapt_calls == 0
        assert stats["requests"] == 0
        assert stats["cache"]["size"] == 0

    def test_failed_flush_releases_pending(self, melu, cold_tasks):
        user = sorted(cold_tasks)[0]
        exploding = _ExplodingMethod(melu)
        with RecommenderService(
            exploding, cache_size=8, batching=True, max_wait_ms=1.0
        ) as service:
            service.register_user_history(cold_tasks[user])
            exploding.explode = True
            with pytest.raises(RuntimeError, match="backend down"):
                service.recommend(user, k=5)
            assert service.stats()["adaptation"]["pending"] == 0
            # The service recovers once the backend does.
            exploding.explode = False
            assert len(service.recommend(user, k=5)) == 5


@pytest.fixture(scope="module")
def stream_artifact(bench_experiment, tmp_path_factory):
    """A saved tiny-budget MetaDPA artifact and its cold-user task pool."""
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 2, "meta_epochs": 1},
        seed=0,
    )
    method.fit(bench_experiment.ctx)
    path = method.save(tmp_path_factory.mktemp("stream") / "metadpa.npz")
    tasks = {int(t.user_row): t for t in bench_experiment.task_sets[Scenario.C_U]}
    return str(path), tasks


class TestShardedStreaming:
    def test_repeated_task_payloads_hit_cache_across_pipe(self, stream_artifact):
        """Regression: requests re-pickle tasks, so identity can never match.

        The cache must hit on task *value* — a repeat request carrying the
        same support history over the shard pipe adapts zero extra users.
        """
        path, tasks = stream_artifact
        user = sorted(tasks)[0]
        with ShardedService(path, n_workers=1, max_wait_ms=2.0) as service:
            assert service.wait_ready(timeout=60.0)
            first = service.recommend(user, k=5, task=tasks[user])
            before = service.stats()["shards"][0]["worker"]["adaptation"]["users"]
            second = service.recommend(user, k=5, task=tasks[user])
            after = service.stats()["shards"][0]["worker"]["adaptation"]["users"]
        assert after == before
        assert np.array_equal(first.items, second.items)
        assert np.array_equal(first.scores, second.scores)

    def test_observe_invalidates_exactly_that_user(self, stream_artifact):
        path, tasks = stream_artifact
        # Two users owned by the same shard under user % 2 routing.
        even = [u for u in sorted(tasks) if u % 2 == 0][:2]
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            assert service.wait_ready(timeout=60.0)
            for user in even:
                service.register_user_history(tasks[user])
                service.recommend(user, k=5)
            shard = service.shard_of(even[0])
            before = service.stats()["shards"][shard]["worker"]["adaptation"]["users"]
            service.observe(even[0], item_row=0, rating=1.0)
            for user in even:
                service.recommend(user, k=5)
            worker = service.stats()["shards"][shard]["worker"]
        assert worker["adaptation"]["users"] == before + 1
        assert worker["stream"]["events"] == 1

    def test_observe_stream_matches_single_process(self, stream_artifact):
        """Sharded observe keeps the bit-identical serving guarantee."""
        path, tasks = stream_artifact
        users = sorted(tasks)[:6]
        script = [
            ("recommend", u) for u in users
        ] + [
            ("observe", users[0], 3, 1.0),
            ("observe", users[1], 5, 0.0),
            ("observe", users[0], 7, 1.0),
        ] + [
            ("recommend", u) for u in users
        ]

        def run(service) -> list:
            results = []
            for op in script:
                if op[0] == "recommend":
                    results.append(service.recommend(op[1], k=7))
                else:
                    service.observe(op[1], op[2], op[3])
            return results

        reference = RecommenderService.from_artifact(path)
        for user in users:
            reference.register_user_history(tasks[user])
        expected = run(reference)
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            assert service.wait_ready(timeout=60.0)
            for user in users:
                service.register_user_history(tasks[user])
            results = run(service)
        for want, got in zip(expected, results):
            assert np.array_equal(want.items, got.items)
            assert np.array_equal(want.scores, got.scores)

    def test_mixed_open_loop_ingests_writes(self, stream_artifact):
        path, tasks = stream_artifact
        users = sorted(tasks)[:8]
        ops = mixed_zipfian_stream(users, range(10), 40, write_frac=0.3, seed=2)
        n_writes = sum(1 for op in ops if op.kind == "write")
        assert 0 < n_writes < len(ops)
        with ShardedService(path, n_workers=2, max_wait_ms=2.0) as service:
            assert service.wait_ready(timeout=60.0)
            for user in users:
                service.register_user_history(tasks[user])
            report = run_mixed_open_loop(service, ops, rate=500.0)
            stats = service.stats()
        assert report.n_requests == len(ops)
        assert np.isfinite(report.latencies).all()
        ingested = sum(
            s["worker"]["stream"]["events"] for s in stats["shards"]
        )
        assert ingested == n_writes


class TestMixedStream:
    def test_deterministic_and_bounded(self):
        ops = mixed_zipfian_stream(range(5), range(9), 64, write_frac=0.25, seed=4)
        again = mixed_zipfian_stream(range(5), range(9), 64, write_frac=0.25, seed=4)
        assert ops == again
        assert all(op.kind in ("read", "write") for op in ops)
        assert all(0 <= op.user_row < 5 for op in ops)
        writes = [op for op in ops if op.kind == "write"]
        assert writes and all(0 <= op.item_row < 9 for op in writes)
        assert all(0.0 <= op.rating <= 1.0 for op in writes)

    def test_write_frac_extremes_and_validation(self):
        assert all(
            op.kind == "read"
            for op in mixed_zipfian_stream(range(4), range(4), 16, write_frac=0.0)
        )
        assert all(
            op.kind == "write"
            for op in mixed_zipfian_stream(range(4), range(4), 16, write_frac=1.0)
        )
        with pytest.raises(ValueError, match="write_frac"):
            mixed_zipfian_stream(range(4), range(4), 16, write_frac=1.5)


class TestTemporalSplit:
    @given(seed=seeds, frac=st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_partitions_support_without_touching_queries(self, seed, frac):
        rng = np.random.default_rng(seed)
        tasks = [_task(rng, n_support=int(rng.integers(1, 8))) for _ in range(5)]
        initial, events = split_task_stream(tasks, initial_frac=frac, seed=seed)
        assert len(initial) == len(tasks)
        times = [e.time for e in events]
        assert times == sorted(times)
        for task, init in zip(tasks, initial):
            assert init.n_support >= 1
            np.testing.assert_array_equal(init.query_items, task.query_items)
            np.testing.assert_array_equal(init.query_labels, task.query_labels)
            # Tasks may share user rows; the rejoin check needs a unique one.
            if sum(int(t.user_row) == int(task.user_row) for t in tasks) > 1:
                continue
            kept = list(zip(init.support_items.tolist(), init.support_labels.tolist()))
            rejoined = sorted(
                kept
                + [
                    (e.item_row, e.rating)
                    for e in events
                    if e.user_row == int(task.user_row)
                ]
            )
            whole = sorted(
                zip(task.support_items.tolist(), task.support_labels.tolist())
            )
            assert rejoined == whole

    def test_deterministic_and_validates(self):
        rng = np.random.default_rng(9)
        tasks = [_task(rng, n_support=4) for _ in range(3)]
        a = split_task_stream(tasks, initial_frac=0.5, seed=1)
        b = split_task_stream(tasks, initial_frac=0.5, seed=1)
        assert a[1] == b[1]
        np.testing.assert_array_equal(a[0][0].support_items, b[0][0].support_items)
        with pytest.raises(ValueError, match="initial_frac"):
            split_task_stream(tasks, initial_frac=0.0)

    def test_evaluate_stream_shapes(self, melu_restored, cold_tasks, bench_experiment):
        tasks = list(cold_tasks.values())[:6]
        instances = [
            i
            for i in bench_experiment.instances[Scenario.C_U]
            if int(i.user_row) in {int(t.user_row) for t in tasks}
        ]
        initial, events = split_task_stream(tasks, initial_frac=0.5, seed=0)
        service = RecommenderService(melu_restored, cache_size=64)
        report = evaluate_stream(
            service, initial, instances, events, n_windows=3, k=5
        )
        assert len(report.windows) == 3
        assert sum(w.n_events for w in report.windows) == len(events)
        assert len(report.trace("ndcg")) == 4
        assert report.final is report.windows[-1].metrics
        payload = report.to_dict()
        assert len(payload["windows"]) == 3 and "ndcg" in payload["initial"]


@pytest.fixture(scope="module")
def metadpa_stream(bench_experiment):
    """A fitted fast MetaDPA plus a snapshot of its meta-parameters."""
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 2, "meta_epochs": 1},
        seed=0,
    )
    method.fit(bench_experiment.ctx)
    snapshot = {k: v.copy() for k, v in method.maml.params.items()}
    return method, snapshot


class TestRefreshBeatsNoRefresh:
    def test_periodic_refresh_wins_at_equal_serve_cost(
        self, metadpa_stream, bench_experiment
    ):
        """The acceptance bar: same split, same events, same number of
        adaptations — the arm that folds observed interactions back into
        the meta-initialization ranks the post-split queries better."""
        method, snapshot = metadpa_stream
        tasks = list(bench_experiment.task_sets[Scenario.C_U])
        instances = bench_experiment.instances[Scenario.C_U]

        def make_service():
            for key, value in snapshot.items():
                method.maml.params[key] = value.copy()
            method._stream_corpus = None
            return RecommenderService(method, cache_size=1024, refresh_lr=0.5)

        try:
            reports = compare_refresh_cadence(
                make_service,
                tasks,
                instances,
                initial_frac=0.4,
                n_windows=4,
                seed=0,
            )
        finally:
            for key, value in snapshot.items():
                method.maml.params[key] = value.copy()
            method._stream_corpus = None
        no, yes = reports["no_refresh"], reports["refresh"]
        assert yes.windows[-1].refreshes == 4
        assert no.windows[-1].refreshes == 0
        assert yes.total_adapted_users == no.total_adapted_users
        assert yes.final.ndcg > no.final.ndcg
