"""Stacked-vs-scalar equivalence: the batched paths ARE the per-task paths.

Property tests (hypothesis-driven shapes and seeds) asserting that every
stacked computation — layers, losses, :class:`PreferenceModel`, the
vectorized MAML inner loop, ``meta_step`` and ``adapt_many``, and the
stacked candidate-scoring backend — produces the same outputs, gradients
and optimizer states (to fp tolerance) as running the scalar per-task
reference one task at a time.  These are the acceptance tests of the
stacked-parameter redesign: any divergence means the vectorization changed
the math, not just the speed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.meta.maml import (
    MAML,
    MAMLConfig,
    TaskBatch,
    TaskBatchItem,
    batched_candidate_scores,
)
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.nn import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Relu,
    Sigmoid,
    Softmax,
    Tanh,
    binary_cross_entropy,
    binary_cross_entropy_tasks,
    mlp,
    stack_params,
)

RTOL = 1e-9
ATOL = 1e-11

#: (T, batch, features) shape strategy shared by the layer properties.
shapes = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),
)
seeds = st.integers(min_value=0, max_value=2**20)


def _assert_tree_close(actual, expected, **kw):
    assert set(actual) == set(expected)
    for name in expected:
        np.testing.assert_allclose(
            actual[name], expected[name], rtol=RTOL, atol=ATOL, err_msg=name, **kw
        )


def _check_layer(layer, params_list, xs, dys):
    """Stacked forward/backward == per-task forward/backward, per layer."""
    stacked = stack_params(params_list) if params_list[0] else {}
    y, cache = layer.forward(stacked, np.stack(xs))
    dx, grads = layer.backward(stacked, cache, np.stack(dys))
    for t, (params, x, dy) in enumerate(zip(params_list, xs, dys)):
        y_t, cache_t = layer.forward(params, x)
        dx_t, grads_t = layer.backward(params, cache_t, dy)
        np.testing.assert_allclose(y[t], y_t, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(dx[t], dx_t, rtol=RTOL, atol=ATOL)
        _assert_tree_close({k: v[t] for k, v in grads.items()}, grads_t)


class TestLayerEquivalence:
    @given(shape=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_linear_stacked_matches_per_task(self, shape, seed):
        n_tasks, batch, n_in = shape
        rng = np.random.default_rng(seed)
        layer = Linear(n_in, 3)
        params_list = [layer.init_params(rng) for _ in range(n_tasks)]
        xs = [rng.normal(size=(batch, n_in)) for _ in range(n_tasks)]
        dys = [rng.normal(size=(batch, 3)) for _ in range(n_tasks)]
        _check_layer(layer, params_list, xs, dys)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_linear_shared_weight_broadcasts(self, shape, seed):
        """Unstacked W against (T, batch, in) inputs: per-task grads."""
        n_tasks, batch, n_in = shape
        rng = np.random.default_rng(seed)
        layer = Linear(n_in, 3)
        params = layer.init_params(rng)
        xs = np.stack([rng.normal(size=(batch, n_in)) for _ in range(n_tasks)])
        dys = np.stack([rng.normal(size=(batch, 3)) for _ in range(n_tasks)])
        y, cache = layer.forward(params, xs)
        dx, grads = layer.backward(params, cache, dys)
        assert grads["W"].shape == (n_tasks, n_in, 3)
        for t in range(n_tasks):
            y_t, cache_t = layer.forward(params, xs[t])
            dx_t, grads_t = layer.backward(params, cache_t, dys[t])
            np.testing.assert_allclose(y[t], y_t, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(dx[t], dx_t, rtol=RTOL, atol=ATOL)
            _assert_tree_close({k: v[t] for k, v in grads.items()}, grads_t)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_layernorm_stacked_matches_per_task(self, shape, seed):
        n_tasks, batch, dim = shape
        rng = np.random.default_rng(seed)
        layer = LayerNorm(dim)
        params_list = [
            {"gamma": rng.normal(size=dim), "beta": rng.normal(size=dim)}
            for _ in range(n_tasks)
        ]
        xs = [rng.normal(size=(batch, dim)) for _ in range(n_tasks)]
        dys = [rng.normal(size=(batch, dim)) for _ in range(n_tasks)]
        _check_layer(layer, params_list, xs, dys)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_embedding_stacked_matches_per_task(self, shape, seed):
        n_tasks, batch, _ = shape
        rng = np.random.default_rng(seed)
        layer = Embedding(7, 3)
        params_list = [layer.init_params(rng) for _ in range(n_tasks)]
        xs = [rng.integers(0, 7, size=batch) for _ in range(n_tasks)]
        dys = [rng.normal(size=(batch, 3)) for _ in range(n_tasks)]
        _check_layer(layer, params_list, xs, dys)

    def test_stacked_embedding_rejects_misaligned_indices(self):
        layer = Embedding(5, 2)
        stacked = stack_params(
            [layer.init_params(np.random.default_rng(s)) for s in range(3)]
        )
        with pytest.raises(ValueError, match="stacked embedding"):
            layer.forward(stacked, np.array([0, 1]))

    @pytest.mark.parametrize("layer_cls", [Relu, Sigmoid, Tanh, Softmax])
    def test_activations_elementwise_over_task_axis(self, layer_cls):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4, 5))
        dy = rng.normal(size=(3, 4, 5))
        layer = layer_cls()
        y, cache = layer.forward({}, x)
        dx, _ = layer.backward({}, cache, dy)
        for t in range(3):
            y_t, cache_t = layer.forward({}, x[t])
            dx_t, _ = layer.backward({}, cache_t, dy[t])
            np.testing.assert_allclose(y[t], y_t, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(dx[t], dx_t, rtol=RTOL, atol=ATOL)

    def test_dropout_identity_matches(self):
        x = np.ones((2, 3, 4))
        y, _ = Dropout(0.5).forward({}, x, train=False)
        np.testing.assert_array_equal(y, x)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_sequential_mlp_stacked_matches_per_task(self, shape, seed):
        n_tasks, batch, n_in = shape
        rng = np.random.default_rng(seed)
        net = mlp([n_in, 4, 2], activation="tanh", out_activation="sigmoid")
        params_list = [net.init_params(rng) for _ in range(n_tasks)]
        xs = [rng.normal(size=(batch, n_in)) for _ in range(n_tasks)]
        dys = [rng.normal(size=(batch, 2)) for _ in range(n_tasks)]
        _check_layer(net, params_list, xs, dys)


class TestLossEquivalence:
    @given(
        n_tasks=st.integers(1, 5),
        widths=st.lists(st.integers(1, 9), min_size=5, max_size=5),
        seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_masked_per_task_bce_matches_scalar(self, n_tasks, widths, seed):
        """Padded+masked task rows reproduce each task's own scalar BCE."""
        rng = np.random.default_rng(seed)
        widths = widths[:n_tasks]
        max_w = max(widths)
        preds = rng.uniform(0.01, 0.99, size=(n_tasks, max_w))
        targets = rng.uniform(0.0, 1.0, size=(n_tasks, max_w))
        mask = np.zeros((n_tasks, max_w))
        for t, width in enumerate(widths):
            mask[t, :width] = 1.0
        losses, grads = binary_cross_entropy_tasks(preds, targets, mask=mask)
        for t, width in enumerate(widths):
            loss_t, grad_t = binary_cross_entropy(preds[t, :width], targets[t, :width])
            np.testing.assert_allclose(losses[t], loss_t, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(grads[t, :width], grad_t, rtol=RTOL, atol=ATOL)
            np.testing.assert_array_equal(grads[t, width:], 0.0)

    def test_unmasked_matches_scalar(self):
        rng = np.random.default_rng(3)
        preds = rng.uniform(0.05, 0.95, size=(4, 6))
        targets = (rng.random((4, 6)) < 0.5).astype(float)
        losses, grads = binary_cross_entropy_tasks(preds, targets)
        for t in range(4):
            loss_t, grad_t = binary_cross_entropy(preds[t], targets[t])
            np.testing.assert_allclose(losses[t], loss_t, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(grads[t], grad_t, rtol=RTOL, atol=ATOL)


def _model(content_dim: int = 5) -> PreferenceModel:
    # float64: these properties pin stacked == scalar at near-bitwise
    # tolerances, which the default float32 meta stack cannot express.
    return PreferenceModel(
        PreferenceModelConfig(
            content_dim=content_dim, embed_dim=3, hidden_dims=(4,), dtype=np.float64
        )
    )


def _items(rng: np.random.Generator, n_tasks: int, content_dim: int = 5):
    out = []
    for _ in range(n_tasks):
        n_s = int(rng.integers(1, 7))
        n_q = int(rng.integers(1, 5))
        out.append(
            TaskBatchItem(
                support_user=rng.random((n_s, content_dim)),
                support_item=rng.random((n_s, content_dim)),
                support_labels=(rng.random(n_s) < 0.5).astype(float),
                query_user=rng.random((n_q, content_dim)),
                query_item=rng.random((n_q, content_dim)),
                query_labels=(rng.random(n_q) < 0.5).astype(float),
            )
        )
    return out


class TestModelEquivalence:
    @given(n_tasks=st.integers(1, 5), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_stacked_loss_and_grads_match_per_task(self, n_tasks, seed):
        rng = np.random.default_rng(seed)
        model = _model()
        params_list = [model.init_params(int(rng.integers(0, 2**31))) for _ in range(n_tasks)]
        items = _items(rng, n_tasks)
        batch = TaskBatch.from_items(items)
        losses, grads = model.loss_and_grads(
            stack_params(params_list),
            batch.support_user,
            batch.support_item,
            batch.support_labels,
            mask=batch.support_mask,
        )
        for t, (params, item) in enumerate(zip(params_list, items)):
            loss_t, grads_t = model.loss_and_grads(
                params, item.support_user, item.support_item, item.support_labels
            )
            np.testing.assert_allclose(losses[t], loss_t, rtol=RTOL, atol=ATOL)
            _assert_tree_close({k: v[t] for k, v in grads.items()}, grads_t)


class TestMAMLEquivalence:
    @given(
        n_tasks=st.integers(1, 6),
        local_only=st.booleans(),
        seed=seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_meta_step_vectorized_matches_loop(self, n_tasks, local_only, seed):
        """Same params, same losses, same Adam moments after three steps."""
        rng = np.random.default_rng(seed)
        items = _items(rng, n_tasks)
        config = dict(inner_lr=0.1, inner_steps=2, outer_lr=1e-2,
                      local_only_decision=local_only)
        vec = MAML(_model(), MAMLConfig(vectorize=True, **config), seed=seed)
        ref = MAML(_model(), MAMLConfig(vectorize=False, **config), seed=seed)
        _assert_tree_close(vec.params, ref.params)
        for _ in range(3):
            loss_vec = vec.meta_step(items)
            loss_ref = ref.meta_step(items)
            np.testing.assert_allclose(loss_vec, loss_ref, rtol=1e-8, atol=1e-10)
        _assert_tree_close(vec.params, ref.params)
        _assert_tree_close(vec._optimizer._m, ref._optimizer._m)
        _assert_tree_close(vec._optimizer._v, ref._optimizer._v)
        assert vec._optimizer._t == ref._optimizer._t

    @given(
        n_tasks=st.integers(1, 6),
        steps=st.integers(0, 3),
        local_only=st.booleans(),
        seed=seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_adapt_many_matches_adapt(self, n_tasks, steps, local_only, seed):
        rng = np.random.default_rng(seed)
        maml = MAML(
            _model(),
            MAMLConfig(inner_lr=0.1, local_only_decision=local_only),
            seed=seed,
        )
        items = _items(rng, n_tasks)
        fasts = maml.adapt_many(items, steps=steps, max_chunk=3)
        for item, fast in zip(items, fasts):
            _assert_tree_close(fast, maml.adapt(item, steps=steps))

    @given(n_tasks=st.integers(2, 5), seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_stacked_candidate_scoring_matches_per_state(self, n_tasks, seed):
        """Distinct per-user fast weights score identically stacked or not."""
        from repro.data.negative_sampling import EvalInstance

        rng = np.random.default_rng(seed)
        maml = MAML(_model(), MAMLConfig(inner_lr=0.1), seed=seed)
        items = _items(rng, n_tasks)
        states = maml.adapt_many(items, steps=2)
        user_content = rng.random((n_tasks + 2, 5))
        item_content = rng.random((20, 5))
        instances = [
            EvalInstance(
                user_row=t,
                pos_item=int(rng.integers(0, 20)),
                neg_items=rng.choice(20, size=int(rng.integers(1, 8)), replace=False),
            )
            for t in range(n_tasks)
        ]
        batched = batched_candidate_scores(
            maml, user_content, item_content, states, instances
        )
        for state, instance, scores in zip(states, instances, batched):
            users = np.repeat(
                user_content[instance.user_row][None, :], instance.candidates.size, axis=0
            )
            expected = maml.predict(
                users, item_content[instance.candidates], params=state
            )
            np.testing.assert_allclose(scores, expected, rtol=1e-8, atol=1e-10)

    def test_scoring_with_skewed_group_sizes_matches(self):
        """One huge shared-params group + small per-user groups.

        The oversized group takes the concatenated path (so its size does
        not inflate every other group's padding) while the small adapted
        groups stack — results must be identical either way.
        """
        from repro.data.negative_sampling import EvalInstance

        rng = np.random.default_rng(7)
        maml = MAML(_model(), MAMLConfig(inner_lr=0.1), seed=7)
        items = _items(rng, 3)
        adapted = maml.adapt_many(items, steps=2)
        user_content = rng.random((10, 5))
        item_content = rng.random((50, 5))
        # Six un-adapted requests (None -> shared meta params, big group
        # with large candidate lists) plus three adapted users (small).
        states = [None] * 6 + adapted
        instances = [
            EvalInstance(u, int(rng.integers(0, 50)), rng.choice(50, 40, replace=False))
            for u in range(6)
        ] + [
            EvalInstance(6 + t, int(rng.integers(0, 50)), rng.choice(50, 4, replace=False))
            for t in range(3)
        ]
        batched = batched_candidate_scores(
            maml, user_content, item_content, states, instances
        )
        for state, instance, scores in zip(states, instances, batched):
            users = np.repeat(
                user_content[instance.user_row][None, :], instance.candidates.size, axis=0
            )
            expected = maml.predict(
                users, item_content[instance.candidates], params=state or maml.params
            )
            np.testing.assert_allclose(scores, expected, rtol=1e-8, atol=1e-10)

    def test_adapt_many_states_do_not_pin_chunk_storage(self):
        """Cached per-user fast weights own their arrays (no chunk views)."""
        rng = np.random.default_rng(0)
        maml = MAML(_model(), MAMLConfig(inner_lr=0.1), seed=0)
        items = _items(rng, 4)
        states = maml.adapt_many(items, steps=1)
        for state in states:
            for name, value in state.items():
                assert value.base is None or value.base is maml.params.get(name), name

    def test_finetune_delegates_to_adapt(self):
        maml = MAML(_model(), MAMLConfig(inner_steps=1), seed=0)
        item = _items(np.random.default_rng(0), 1)[0]
        _assert_tree_close(maml.finetune(item, steps=2), maml.adapt(item, steps=2))
        _assert_tree_close(maml.finetune(item), maml.adapt(item))


class TestStackedOptimizer:
    def test_stacked_adam_equals_independent_adams(self):
        """One Adam over stacked params == T Adams over the per-task dicts."""
        rng = np.random.default_rng(0)
        per_task = [{"W": rng.normal(size=(3, 2))} for _ in range(4)]
        stacked = stack_params(per_task)
        opt_stacked = Adam(stacked, lr=0.05)
        opts = [Adam(p, lr=0.05) for p in per_task]
        for step in range(5):
            grads = [{"W": rng.normal(size=(3, 2))} for _ in range(4)]
            opt_stacked.step({"W": np.stack([g["W"] for g in grads])})
            for opt, grad in zip(opts, grads):
                opt.step(grad)
        for t, params in enumerate(per_task):
            np.testing.assert_allclose(
                stacked["W"][t], params["W"], rtol=RTOL, atol=ATOL
            )
