"""Ranking metrics, evaluation protocol and significance testing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval.metrics import MetricSet, auc, hit_ratio, mrr, ndcg, rank_of_positive
from repro.eval.metrics import ndcg_curve
from repro.eval.significance import paired_metric_series, wilcoxon_one_sided


class TestRankOfPositive:
    def test_best_rank(self):
        assert rank_of_positive(np.array([0.9, 0.5, 0.1])) == 1.0

    def test_worst_rank(self):
        assert rank_of_positive(np.array([0.1, 0.5, 0.9])) == 3.0

    def test_tie_mid_rank(self):
        # Positive tied with both negatives: mid-rank 2 of 3.
        assert rank_of_positive(np.array([0.5, 0.5, 0.5])) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_of_positive(np.zeros((2, 2)))

    @given(arrays(float, st.integers(2, 50), elements=st.floats(-5, 5)))
    @settings(max_examples=40, deadline=None)
    def test_rank_bounds(self, scores):
        rank = rank_of_positive(scores)
        assert 1.0 <= rank <= scores.size


class TestTopKMetrics:
    def test_hr_within_and_outside_k(self):
        scores = np.array([0.5] + [1.0] * 10 + [0.0] * 89)  # rank 11
        assert hit_ratio(scores, 10) == 0.0
        assert hit_ratio(scores, 11) == 1.0

    def test_mrr_value(self):
        scores = np.array([0.8, 0.9, 0.1])  # rank 2
        assert mrr(scores, 10) == pytest.approx(0.5)

    def test_mrr_zero_outside_k(self):
        scores = np.array([0.0] + [1.0] * 20)
        assert mrr(scores, 10) == 0.0

    def test_ndcg_perfect(self):
        assert ndcg(np.array([1.0, 0.5, 0.1]), 10) == pytest.approx(1.0)

    def test_ndcg_rank2(self):
        scores = np.array([0.8, 0.9, 0.1])
        assert ndcg(scores, 10) == pytest.approx(1.0 / np.log2(3.0))

    def test_auc_perfect_and_worst(self):
        assert auc(np.array([1.0, 0.5, 0.2])) == 1.0
        assert auc(np.array([0.0, 0.5, 0.2])) == 0.0

    def test_auc_constant_scores(self):
        assert auc(np.full(100, 0.3)) == pytest.approx(0.5)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            hit_ratio(np.array([1.0, 0.0]), 0)

    @given(arrays(float, st.integers(2, 30), elements=st.floats(-2, 2)), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_metric_ranges(self, scores, k):
        assert 0.0 <= hit_ratio(scores, k) <= 1.0
        assert 0.0 <= mrr(scores, k) <= 1.0
        assert 0.0 <= ndcg(scores, k) <= 1.0
        assert 0.0 <= auc(scores) <= 1.0

    @given(arrays(float, 20, elements=st.floats(-2, 2)))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_k(self, scores):
        values = [ndcg(scores, k) for k in (1, 5, 10, 20)]
        assert values == sorted(values)


class TestMetricSet:
    def test_aggregation(self):
        perfect = np.array([1.0, 0.0, 0.0])
        worst = np.array([0.0, 1.0, 1.0])
        ms = MetricSet.from_score_lists([perfect, worst], k=10)
        assert ms.hr == pytest.approx(1.0)  # both within top-10 of 3 candidates
        assert ms.auc == pytest.approx(0.5)
        assert ms.n_trials == 2

    def test_empty(self):
        ms = MetricSet.from_score_lists([], k=10)
        assert ms.n_trials == 0
        assert ms.hr == 0.0

    def test_row_format(self):
        ms = MetricSet.from_score_lists([np.array([1.0, 0.0])], k=10)
        row = ms.as_row("Test")
        assert "Test" in row and "HR@10" in row

    def test_ndcg_curve_keys(self):
        curve = ndcg_curve([np.array([1.0, 0.0, 0.5])], [1, 5])
        assert set(curve) == {1, 5}


class TestWilcoxon:
    def test_detects_improvement(self):
        rng = np.random.default_rng(0)
        theirs = rng.random(30)
        ours = theirs + 0.05 + 0.01 * rng.random(30)
        res = wilcoxon_one_sided(ours, theirs, metric="ndcg")
        assert res.significant
        assert res.median_difference > 0

    def test_no_false_positive_when_worse(self):
        rng = np.random.default_rng(1)
        theirs = rng.random(30)
        ours = theirs - 0.05
        res = wilcoxon_one_sided(ours, theirs)
        assert not res.significant

    def test_identical_series(self):
        x = np.linspace(0, 1, 10)
        res = wilcoxon_one_sided(x, x.copy())
        assert res.p_value == 1.0
        assert not res.significant

    def test_validation(self):
        with pytest.raises(ValueError):
            wilcoxon_one_sided([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            wilcoxon_one_sided([1.0, 2.0], [0.5, 1.5])

    def test_paired_series_collection(self):
        def run(seed):
            return {"a": float(seed), "b": float(seed * 2)}

        series = paired_metric_series(run, seeds=[1, 2, 3])
        np.testing.assert_array_equal(series["a"], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(series["b"], [2.0, 4.0, 6.0])
