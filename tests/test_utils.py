"""Utility modules: RNG plumbing, batching, timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import Timer, ensure_rng, iter_batches, spawn_rngs


class TestEnsureRng:
    def test_from_seed(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.random() == b.random()

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_independent_children(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestIterBatches:
    def test_covers_all_indices(self):
        seen = np.concatenate(list(iter_batches(10, 3, rng=0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self):
        sizes = [b.size for b in iter_batches(10, 3, shuffle=False)]
        assert sizes == [3, 3, 3, 1]

    def test_drop_last(self):
        sizes = [b.size for b in iter_batches(10, 3, shuffle=False, drop_last=True)]
        assert sizes == [3, 3, 3]

    def test_no_shuffle_is_ordered(self):
        first = next(iter_batches(10, 4, shuffle=False))
        np.testing.assert_array_equal(first, [0, 1, 2, 3])

    def test_shuffle_deterministic_by_seed(self):
        a = np.concatenate(list(iter_batches(20, 6, rng=5)))
        b = np.concatenate(list(iter_batches(20, 6, rng=5)))
        np.testing.assert_array_equal(a, b)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches(10, 0))


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(100000))
        assert t.elapsed >= 0.0
        assert t.elapsed != first or t.elapsed >= 0.0
