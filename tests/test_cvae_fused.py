"""Fused multi-domain CVAE training == the sequential reference.

The fused trainer stacks k Dual-CVAEs on a leading domain axis and pads
their item axes to a common width; everything here pins that this is a pure
re-batching of the arithmetic: forwards, per-term losses, gradients, Adam
trajectories and full ``fit_generate`` matrices all match the scalar
per-domain path to float32 rounding, and the padded parameter regions never
leave zero.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cvae.augment import DiversePreferenceAugmenter
from repro.cvae.model import _COMPONENTS, CVAEConfig, DualCVAE, FusedDualCVAE, _unpad_component
from repro.cvae.trainer import DualCVAETrainer, MultiDomainCVAETrainer, TrainerConfig
from repro.nn.optim import Adam, StackedAdam, clip_grad_norm, clip_grad_norm_grouped
from repro.nn.losses import info_nce, info_nce_stacked

LOSS_TERMS = ("elbo_recon", "kl", "mse", "cross_recon", "mdi", "me", "total")


def _models(widths_s, widths_t, latent=3, hidden=8, content=5, beta1=0.1, beta2=1.0):
    return [
        DualCVAE(
            CVAEConfig(
                n_items_source=ws,
                n_items_target=wt,
                content_dim=content,
                latent_dim=latent,
                hidden_dim=hidden,
                beta1=beta1,
                beta2=beta2,
            ),
            rng=100 + i,
        )
        for i, (ws, wt) in enumerate(zip(widths_s, widths_t))
    ]


def _domain_batches(models, sizes, seed=0):
    """Per-domain batches plus matching pre-drawn noise streams.

    The scalar model draws side-s then side-t noise from one generator per
    domain; drawing the same shapes in the same order from an identically
    seeded generator reproduces the stream exactly.
    """
    rng = np.random.default_rng(seed)
    batches, eps = [], []
    for i, model in enumerate(models):
        cfg = model.config
        b = sizes[i]
        batches.append((
            (rng.random((b, cfg.n_items_source)) < 0.3).astype(np.float32),
            (rng.random((b, cfg.n_items_target)) < 0.3).astype(np.float32),
            rng.random((b, cfg.content_dim)).astype(np.float32),
            rng.random((b, cfg.content_dim)).astype(np.float32),
        ))
        gen = np.random.default_rng(1000 + seed * 97 + i)
        eps.append((
            gen.normal(size=(b, cfg.latent_dim)).astype(np.float32),
            gen.normal(size=(b, cfg.latent_dim)).astype(np.float32),
        ))
    return batches, eps


def _fused_inputs(fused, batches, eps, sizes):
    k = fused.k
    batch = max(sizes)
    ratings = np.zeros((fused.n_stack, batch, fused.n_items_max), fused.dtype)
    content = np.zeros((fused.n_stack, batch, fused.content_dim), fused.dtype)
    eps_arr = np.zeros((fused.n_stack, batch, fused.latent_dim), fused.dtype)
    for i, ((rs, rt, xs, xt), (es, et)) in enumerate(zip(batches, eps)):
        b = sizes[i]
        ratings[i, :b, : rs.shape[1]] = rs
        ratings[k + i, :b, : rt.shape[1]] = rt
        content[i, :b] = xs
        content[k + i, :b] = xt
        eps_arr[i, :b] = es
        eps_arr[k + i, :b] = et
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if np.all(sizes_arr == batch):
        row_mask = None
    else:
        mask = (np.arange(batch)[None, :] < sizes_arr[:, None]).astype(fused.dtype)
        row_mask = np.concatenate([mask, mask], axis=0)
    return ratings, content, eps_arr, row_mask, np.concatenate([sizes_arr, sizes_arr])


def _scalar_reference(models, batches, sizes, seed=0):
    out = []
    for i, model in enumerate(models):
        gen = np.random.default_rng(1000 + seed * 97 + i)
        out.append(model.loss_and_grads(*batches[i], rng=gen))
    return out


def _compare(fused, models, losses, grads, reference, atol=5e-5):
    k = fused.k
    for name in LOSS_TERMS:
        expected = np.array([reference[i][0][name] for i in range(k)])
        np.testing.assert_allclose(losses[name], expected, rtol=2e-4, atol=atol)
    for d in range(fused.n_stack):
        side = "s" if d < k else "t"
        model = models[d % k]
        n_items = int(fused.widths[d])
        for comp in _COMPONENTS:
            for name in fused._subs[comp]:
                got = _unpad_component(
                    comp, name, grads[f"{comp}.{name}"][d], n_items, fused.n_items_max
                )
                want = reference[d % k][1][f"{comp}_{side}.{name}"]
                np.testing.assert_allclose(got, want, rtol=2e-4, atol=atol)


widths = st.lists(st.integers(3, 9), min_size=2, max_size=3)


class TestFusedModelEquivalence:
    @given(
        ws=widths,
        extra_t=st.lists(st.integers(0, 5), min_size=3, max_size=3),
        batch=st.integers(2, 6),
        betas=st.sampled_from([(0.1, 1.0), (0.0, 1.0), (0.1, 0.0), (0.0, 0.0)]),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_full_batches_match_scalar(self, ws, extra_t, batch, betas, seed):
        wt = [w + e for w, e in zip(ws, extra_t)]
        models = _models(ws, wt, beta1=betas[0], beta2=betas[1])
        fused = FusedDualCVAE(models)
        sizes = [batch] * len(models)
        batches, eps = _domain_batches(models, sizes, seed=seed)
        inputs = _fused_inputs(fused, batches, eps, sizes)
        losses, grads = fused.loss_and_grads(*inputs[:3], row_mask=inputs[3], row_counts=inputs[4])
        _compare(fused, models, losses, grads, _scalar_reference(models, batches, sizes, seed=seed))

    @given(
        ws=widths,
        sizes=st.lists(st.integers(1, 6), min_size=2, max_size=3),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_ragged_batches_match_scalar(self, ws, sizes, seed):
        k = min(len(ws), len(sizes))
        ws, sizes = ws[:k], sizes[:k]
        models = _models(ws, [w + 2 for w in ws])
        fused = FusedDualCVAE(models)
        batches, eps = _domain_batches(models, sizes, seed=seed)
        inputs = _fused_inputs(fused, batches, eps, sizes)
        losses, grads = fused.loss_and_grads(*inputs[:3], row_mask=inputs[3], row_counts=inputs[4])
        _compare(fused, models, losses, grads, _scalar_reference(models, batches, sizes, seed=seed))

    def test_loss_only_matches_loss_and_grads(self):
        models = _models([5, 7], [6, 4])
        fused = FusedDualCVAE(models)
        sizes = [4, 4]
        batches, eps = _domain_batches(models, sizes)
        inputs = _fused_inputs(fused, batches, eps, sizes)
        losses, _ = fused.loss_and_grads(*inputs[:3], row_mask=inputs[3], row_counts=inputs[4])
        only = fused.loss_only(*inputs[:3], row_mask=inputs[3], row_counts=inputs[4])
        for name in LOSS_TERMS:
            np.testing.assert_allclose(only[name], losses[name], rtol=1e-6, atol=1e-7)

    def test_padded_regions_stay_zero_through_gradients(self):
        models = _models([4, 8], [6, 3])
        fused = FusedDualCVAE(models)
        sizes = [5, 3]
        batches, eps = _domain_batches(models, sizes)
        inputs = _fused_inputs(fused, batches, eps, sizes)
        _, grads = fused.loss_and_grads(*inputs[:3], row_mask=inputs[3], row_counts=inputs[4])
        i_max = fused.n_items_max
        for d in range(fused.n_stack):
            n = int(fused.widths[d])
            assert np.all(grads["crit.0.W"][d, n:] == 0.0)
            assert np.all(grads["dec.2.W"][d, :, n:] == 0.0)
            assert np.all(grads["dec.2.b"][d, n:] == 0.0)
            assert np.all(grads["enc.0.W"][d, n:i_max] == 0.0)
            assert np.all(fused.params["crit.0.W"][d, n:] == 0.0)
            assert np.all(fused.params["enc.0.W"][d, n:i_max] == 0.0)

    def test_write_back_round_trip(self):
        models = _models([4, 8], [6, 3])
        before = [{n: v.copy() for n, v in m.params.items()} for m in models]
        fused = FusedDualCVAE(models)
        fused.write_back()
        for model, saved in zip(models, before):
            for name, value in saved.items():
                np.testing.assert_array_equal(model.params[name], value)

    def test_everything_is_float32(self):
        models = _models([4, 8], [6, 3])
        fused = FusedDualCVAE(models)
        assert fused.dtype == np.float32
        assert all(v.dtype == np.float32 for v in fused.params.values())
        sizes = [3, 3]
        batches, eps = _domain_batches(models, sizes)
        inputs = _fused_inputs(fused, batches, eps, sizes)
        losses, grads = fused.loss_and_grads(*inputs[:3], row_mask=inputs[3], row_counts=inputs[4])
        assert all(g.dtype == np.float32 for g in grads.values())
        assert all(v.dtype == np.float32 for v in losses.values())

    def test_mismatched_hyperparams_rejected(self):
        a = DualCVAE(CVAEConfig(4, 5, 3, latent_dim=3, hidden_dim=8), rng=0)
        b = DualCVAE(CVAEConfig(4, 5, 3, latent_dim=4, hidden_dim=8), rng=1)
        with pytest.raises(ValueError):
            FusedDualCVAE([a, b])

    def test_softmax_with_ragged_widths_rejected(self):
        models = [
            DualCVAE(
                CVAEConfig(w, 5, 3, latent_dim=3, hidden_dim=8,
                           out_activation="softmax"),
                rng=i,
            )
            for i, w in enumerate([4, 6])
        ]
        with pytest.raises(ValueError):
            FusedDualCVAE(models)


class TestStackedAdamEquivalence:
    def _random_stack(self, rng, n_stack=4):
        shapes = {"W": (n_stack, 5, 3), "b": (n_stack, 3), "E": (n_stack, 2, 4, 2)}
        return {
            name: rng.normal(size=shape).astype(np.float32)
            for name, shape in shapes.items()
        }

    @pytest.mark.parametrize("weight_decay", [0.0, 1e-4])
    def test_matches_per_slice_adam(self, rng, weight_decay):
        n_stack = 4
        params = self._random_stack(rng, n_stack)
        singles = [
            {name: value[d].copy() for name, value in params.items()}
            for d in range(n_stack)
        ]
        stacked_opt = StackedAdam(params, n_stack, lr=1e-2, weight_decay=weight_decay)
        single_opts = [
            Adam(p, lr=1e-2, weight_decay=weight_decay) for p in singles
        ]
        active_schedule = [None, np.array([1, 1, 0, 1], bool), None,
                           np.array([0, 1, 1, 1], bool)]
        for step, active in enumerate(active_schedule):
            grads = {
                name: rng.normal(size=value.shape).astype(np.float32)
                for name, value in params.items()
            }
            for d in range(n_stack):
                if active is not None and not active[d]:
                    continue
                single_opts[d].step(
                    {name: grads[name][d].copy() for name in grads}
                )
            stacked_opt.step(grads, active=active)
            for d in range(n_stack):
                for name in params:
                    np.testing.assert_allclose(
                        params[name][d], singles[d][name], rtol=1e-6, atol=1e-7,
                        err_msg=f"step {step} slice {d} {name}",
                    )

    @staticmethod
    def _flat_pack(params, n_stack):
        """Slice-major (D, S) flat repack, as FusedDualCVAE builds it."""
        per_slice = sum(v.size for v in params.values()) // n_stack
        flat = np.empty((n_stack, per_slice), dtype=np.float32)
        slices, offset, views = {}, 0, {}
        for name in sorted(params):
            value = params[name]
            size = value.size // n_stack
            view = flat[:, offset : offset + size].reshape(value.shape)
            view[:] = value
            views[name] = view
            slices[name] = (offset, size, value.shape)
            offset += size
        return flat, slices, views

    def test_flat_storage_matches_dict_storage(self, rng):
        n_stack = 3
        params_a = self._random_stack(rng, n_stack)
        flat, slices, params_b = self._flat_pack(params_a, n_stack)
        opt_a = StackedAdam(params_a, n_stack, lr=3e-3, weight_decay=1e-5)
        opt_b = StackedAdam(
            params_b, n_stack, lr=3e-3, weight_decay=1e-5,
            flat_params=flat, flat_slices=slices,
        )
        schedule = [None, None, np.array([1, 0, 1], bool), None]
        for active in schedule:
            grads = {
                name: rng.normal(size=value.shape).astype(np.float32)
                for name, value in params_a.items()
            }
            opt_a.step({name: g.copy() for name, g in grads.items()}, active=active)
            opt_b.step({name: g.copy() for name, g in grads.items()}, active=active)
        for name in params_a:
            np.testing.assert_allclose(params_a[name], params_b[name], rtol=1e-6, atol=1e-7)

    def test_clipped_step_matches_clip_then_step(self, rng):
        n_stack = 4
        group_index = np.array([0, 1, 0, 1])
        params_a = self._random_stack(rng, n_stack)
        flat, slices, params_b = self._flat_pack(params_a, n_stack)
        opt_a = StackedAdam(params_a, n_stack, lr=1e-2, weight_decay=1e-5)
        opt_b = StackedAdam(
            params_b, n_stack, lr=1e-2, weight_decay=1e-5,
            flat_params=flat, flat_slices=slices,
        )
        for scale in (4.0, 0.1, 4.0):  # alternate clipping / not clipping
            grads = {
                name: (rng.normal(size=value.shape) * scale).astype(np.float32)
                for name, value in params_a.items()
            }
            ga = {name: g.copy() for name, g in grads.items()}
            norms_a = clip_grad_norm_grouped(ga, 2.0, group_index)
            opt_a.step(ga)
            norms_b = opt_b.clipped_step(
                {name: g.copy() for name, g in grads.items()}, 2.0, group_index
            )
            np.testing.assert_allclose(norms_a, norms_b, rtol=1e-5)
        for name in params_a:
            np.testing.assert_allclose(
                params_a[name], params_b[name], rtol=1e-5, atol=1e-6
            )

    def test_grouped_clip_matches_scalar_clip(self, rng):
        n_stack = 4
        group_index = np.array([0, 1, 0, 1])
        grads = {
            "W": rng.normal(size=(n_stack, 6, 4)).astype(np.float32) * 3.0,
            "b": rng.normal(size=(n_stack, 4)).astype(np.float32) * 3.0,
        }
        per_group = {
            g: {
                name: np.concatenate(
                    [value[d][None] for d in range(n_stack) if group_index[d] == g]
                )
                for name, value in grads.items()
            }
            for g in (0, 1)
        }
        norms = clip_grad_norm_grouped(grads, 2.0, group_index)
        for g in (0, 1):
            expected_norm = clip_grad_norm(per_group[g], 2.0)
            assert norms[g] == pytest.approx(expected_norm, rel=1e-5)
            rows = [d for d in range(n_stack) if group_index[d] == g]
            for name in grads:
                np.testing.assert_allclose(
                    grads[name][rows], per_group[g][name], rtol=1e-6, atol=1e-8
                )


class TestInfoNCEStacked:
    @given(batch=st.integers(2, 8), dim=st.integers(2, 5), seed=st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_matches_scalar_per_slice(self, batch, dim, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, batch, dim)).astype(np.float32)
        b = rng.normal(size=(3, batch, dim)).astype(np.float32)
        losses, da, db = info_nce_stacked(a, b, temperature=0.2)
        for d in range(3):
            loss, ga, gb = info_nce(a[d], b[d], temperature=0.2)
            np.testing.assert_allclose(losses[d], loss, rtol=1e-5, atol=1e-6)
            np.testing.assert_allclose(da[d], ga, rtol=1e-4, atol=1e-6)
            np.testing.assert_allclose(db[d], gb, rtol=1e-4, atol=1e-6)

    def test_masked_rows_match_truncated_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(2, 6, 4)).astype(np.float32)
        b = rng.normal(size=(2, 6, 4)).astype(np.float32)
        sizes = [6, 3]
        mask = (np.arange(6)[None, :] < np.array(sizes)[:, None]).astype(np.float32)
        a[1, 3:] = 0.0
        b[1, 3:] = 0.0
        losses, da, db = info_nce_stacked(a, b, row_mask=mask)
        for d, size in enumerate(sizes):
            loss, ga, gb = info_nce(a[d, :size], b[d, :size])
            np.testing.assert_allclose(losses[d], loss, rtol=1e-5, atol=1e-6)
            np.testing.assert_allclose(da[d, :size], ga, rtol=1e-4, atol=1e-6)
            np.testing.assert_allclose(da[d, size:], 0.0, atol=1e-7)

    def test_single_real_row_gives_zero(self):
        a = np.ones((1, 4, 3), np.float32)
        b = np.ones((1, 4, 3), np.float32)
        mask = np.array([[1.0, 0.0, 0.0, 0.0]], np.float32)
        losses, da, db = info_nce_stacked(a, b, row_mask=mask)
        assert losses[0] == 0.0
        assert np.all(da == 0.0) and np.all(db == 0.0)


class TestFusedTrainerEquivalence:
    """End to end: the fused trainer reproduces k sequential runs."""

    @pytest.fixture(scope="class")
    def both_paths(self, tiny_dataset):
        config = TrainerConfig(epochs=25)
        sequential = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=config, seed=0, fuse_domains=False
        )
        fused = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=config, seed=0, fuse_domains=True
        )
        return sequential.fit_generate(), fused.fit_generate(), sequential, fused

    def test_fit_generate_matrices_match(self, both_paths):
        seq_out, fused_out, _, _ = both_paths
        assert seq_out.source_names == fused_out.source_names
        for a, b in zip(seq_out.matrices, fused_out.matrices):
            np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-4)

    def test_model_parameters_match(self, both_paths):
        _, _, sequential, fused = both_paths
        for ts, tf in zip(sequential.trainers, fused.trainers):
            for name in ts.model.params:
                np.testing.assert_allclose(
                    ts.model.params[name], tf.model.params[name],
                    rtol=1e-3, atol=1e-4, err_msg=name,
                )

    def test_histories_match(self, both_paths):
        _, _, sequential, fused = both_paths
        for ts, tf in zip(sequential.trainers, fused.trainers):
            np.testing.assert_allclose(
                ts.history.train_loss, tf.history.train_loss, rtol=1e-4, atol=1e-4
            )
            np.testing.assert_allclose(
                ts.history.eval_loss, tf.history.eval_loss, rtol=1e-4, atol=1e-4
            )
            for term in ts.history.terms:
                np.testing.assert_allclose(
                    ts.history.terms[term], tf.history.terms[term],
                    rtol=1e-3, atol=1e-3,
                )

    def test_fused_is_the_default(self, tiny_dataset):
        augmenter = DiversePreferenceAugmenter(tiny_dataset, "Tgt")
        assert augmenter.fuse_domains
        trainers = augmenter._build_trainers()
        assert augmenter._can_fuse(trainers)

    def test_softmax_override_falls_back_to_sequential(self, tiny_dataset):
        augmenter = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt",
            cvae_config_overrides={"out_activation": "softmax"},
        )
        assert not augmenter._can_fuse(augmenter._build_trainers())

    def test_multi_domain_trainer_requires_shared_config(self, tiny_dataset):
        pairs = tiny_dataset.pairs_for_target("Tgt")
        trainers = [
            DualCVAETrainer(pairs[0], trainer_config=TrainerConfig(epochs=5)),
            DualCVAETrainer(pairs[1], trainer_config=TrainerConfig(epochs=6)),
        ]
        with pytest.raises(ValueError):
            MultiDomainCVAETrainer(trainers)


class TestEvalEvery:
    def test_sparse_eval_trace(self, tiny_dataset):
        pair = tiny_dataset.pairs[("SrcA", "Tgt")]
        trainer = DualCVAETrainer(
            pair, trainer_config=TrainerConfig(epochs=10, eval_every=4), seed=0
        )
        history = trainer.train()
        assert len(history.train_loss) == 10
        assert len(history.eval_loss) == 2  # epochs 4 and 8

    def test_eval_every_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(eval_every=0)

    def test_scalar_loss_only_matches_loss_and_grads(self, tiny_dataset):
        pair = tiny_dataset.pairs[("SrcA", "Tgt")]
        trainer = DualCVAETrainer(pair, seed=0)
        batch = trainer._batch(trainer._eval_rows)
        losses = trainer.model.loss_only(*batch, rng=np.random.default_rng(0))
        full, _ = trainer.model.loss_and_grads(*batch, rng=np.random.default_rng(0))
        for term in LOSS_TERMS:
            assert losses[term] == pytest.approx(full[term], rel=1e-6)
