"""Dual-CVAE: gradient correctness, training dynamics, augmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cvae.augment import AugmentedRatings, DiversePreferenceAugmenter, rating_diversity
from repro.cvae.model import CVAEConfig, DualCVAE
from repro.cvae.trainer import DualCVAETrainer, TrainerConfig
from repro.nn import numerical_gradient, relative_error


def _tiny_config(**overrides) -> CVAEConfig:
    defaults = dict(
        n_items_source=7,
        n_items_target=6,
        content_dim=5,
        latent_dim=3,
        hidden_dim=8,
        beta1=0.1,
        beta2=1.0,
    )
    defaults.update(overrides)
    return CVAEConfig(**defaults)


def _tiny_batch(n=4, config=None, seed=0):
    config = config or _tiny_config()
    rng = np.random.default_rng(seed)
    rs = (rng.random((n, config.n_items_source)) < 0.3).astype(float)
    rt = (rng.random((n, config.n_items_target)) < 0.3).astype(float)
    xs = rng.random((n, config.content_dim))
    xt = rng.random((n, config.content_dim))
    return rs, rt, xs, xt


class TestCVAEConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            _tiny_config(latent_dim=0)
        with pytest.raises(ValueError):
            _tiny_config(beta1=-1.0)
        with pytest.raises(ValueError):
            _tiny_config(out_activation="relu")
        with pytest.raises(ValueError):
            _tiny_config(content_dim=0)


class TestDualCVAEForward:
    def test_param_namespaces(self):
        model = DualCVAE(_tiny_config(), rng=0)
        prefixes = {name.split(".")[0] for name in model.params}
        assert prefixes == {
            "enc_s", "enc_x_s", "dec_s", "crit_s",
            "enc_t", "enc_x_t", "dec_t", "crit_t",
        }

    def test_encode_shapes(self):
        config = _tiny_config()
        model = DualCVAE(config, rng=0)
        rs, rt, xs, xt = _tiny_batch(config=config)
        mu, log_var, _ = model.encode("s", rs, xs)
        assert mu.shape == (4, config.latent_dim)
        assert log_var.shape == (4, config.latent_dim)

    def test_generate_from_content_range(self):
        config = _tiny_config()
        model = DualCVAE(config, rng=0)
        _, _, _, xt = _tiny_batch(config=config)
        out = model.generate_from_content(xt)
        assert out.shape == (4, config.n_items_target)
        assert np.all((out > 0.0) & (out < 1.0))

    def test_softmax_output_option(self):
        config = _tiny_config(out_activation="softmax")
        model = DualCVAE(config, rng=0)
        _, _, _, xt = _tiny_batch(config=config)
        out = model.generate_from_content(xt)
        # float32 end-to-end: sums match 1 to single-precision rounding.
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-6)

    def test_params_and_outputs_are_float32(self):
        """The training hot path must not let float64 creep back in."""
        config = _tiny_config()
        model = DualCVAE(config, rng=0)
        assert all(v.dtype == np.float32 for v in model.params.values())
        batch = _tiny_batch(config=config)
        losses, grads = model.loss_and_grads(*batch, rng=0)
        assert all(g.dtype == np.float32 for g in grads.values())
        out = model.generate_from_content(batch[3])
        assert out.dtype == np.float32


class TestDualCVAEGradients:
    """Full-model gradient check against numerical differentiation.

    The reparameterization noise is frozen by seeding the same generator, so
    the loss is a deterministic function of the parameters.
    """

    @pytest.mark.parametrize("beta1,beta2", [(0.0, 0.0), (0.1, 1.0)])
    def test_grads_match_numerical(self, beta1, beta2):
        config = _tiny_config(beta1=beta1, beta2=beta2)
        # float64: finite differences at eps=1e-5 would drown in float32
        # rounding; the shipped model trains in float32.
        model = DualCVAE(config, rng=0, dtype=np.float64)
        batch = _tiny_batch(config=config)

        def loss_fn():
            losses, _ = model.loss_and_grads(*batch, rng=np.random.default_rng(42))
            return losses["total"]

        _, grads = model.loss_and_grads(*batch, rng=np.random.default_rng(42))
        # Spot-check a few parameters from different components.
        for name in ["enc_s.0.W", "enc_x_t.0.b", "dec_t.0.W", "dec_s.2.b"]:
            p = model.params[name]

            def loss_given(p_new, name=name):
                saved = model.params[name]
                model.params[name] = p_new
                value = loss_fn()
                model.params[name] = saved
                return value

            num = numerical_gradient(loss_given, p.copy(), eps=1e-5)
            assert relative_error(grads[name], num) < 5e-3, name

    def test_critic_grads_only_with_me(self):
        config = _tiny_config(beta2=0.0)
        model = DualCVAE(config, rng=0)
        _, grads = model.loss_and_grads(*_tiny_batch(config=config), rng=0)
        crit_norm = sum(
            float(np.abs(g).sum()) for n, g in grads.items() if n.startswith("crit")
        )
        assert crit_norm == 0.0

    def test_loss_terms_present(self):
        model = DualCVAE(_tiny_config(), rng=0)
        losses, _ = model.loss_and_grads(*_tiny_batch(), rng=0)
        assert set(losses) == {
            "elbo_recon", "kl", "mse", "cross_recon", "mdi", "me", "total",
        }
        assert losses["total"] == pytest.approx(
            losses["elbo_recon"]
            + losses["kl"]
            + losses["mse"]
            + losses["cross_recon"]
            + 0.1 * losses["mdi"]
            + 1.0 * losses["me"]
        )

    def test_grads_cover_all_params(self):
        model = DualCVAE(_tiny_config(), rng=0)
        _, grads = model.loss_and_grads(*_tiny_batch(), rng=0)
        assert set(grads) == set(model.params)


class TestTrainer:
    def test_training_reduces_loss(self, tiny_dataset):
        pair = tiny_dataset.pairs[("SrcA", "Tgt")]
        trainer = DualCVAETrainer(
            pair, trainer_config=TrainerConfig(epochs=40), seed=0
        )
        history = trainer.train()
        assert history.train_loss[-1] < history.train_loss[0]
        assert len(history.train_loss) == 40
        assert len(history.eval_loss) == 40

    def test_config_mismatch_rejected(self, tiny_dataset):
        pair = tiny_dataset.pairs[("SrcA", "Tgt")]
        bad = CVAEConfig(
            n_items_source=3, n_items_target=3, content_dim=3
        )
        with pytest.raises(ValueError):
            DualCVAETrainer(pair, cvae_config=bad)

    def test_trainer_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(eval_fraction=1.0)


class TestAugmentation:
    @pytest.fixture(scope="class")
    def augmented(self, tiny_dataset):
        augmenter = DiversePreferenceAugmenter(
            tiny_dataset, "Tgt", trainer_config=TrainerConfig(epochs=30), seed=0
        )
        return augmenter, augmenter.fit_generate()

    def test_one_matrix_per_source(self, tiny_dataset, augmented):
        _, out = augmented
        assert out.k == len(tiny_dataset.sources)
        assert set(out.source_names) == set(tiny_dataset.sources)

    def test_matrix_shapes_and_range(self, tiny_dataset, augmented):
        _, out = augmented
        target = tiny_dataset.targets["Tgt"]
        for matrix in out.matrices:
            assert matrix.shape == (target.n_users, target.n_items)
            assert np.all((matrix >= 0.0) & (matrix <= 1.0))

    def test_for_user(self, augmented):
        _, out = augmented
        vectors = out.for_user(0)
        assert len(vectors) == out.k

    def test_diversity_positive(self, augmented):
        _, out = augmented
        assert rating_diversity(out) > 0.0

    def test_diversity_zero_for_single_source(self, augmented):
        _, out = augmented
        single = AugmentedRatings(
            target_name=out.target_name,
            source_names=out.source_names[:1],
            matrices=out.matrices[:1],
        )
        assert rating_diversity(single) == 0.0

    def test_generate_before_fit_raises(self, tiny_dataset):
        augmenter = DiversePreferenceAugmenter(tiny_dataset, "Tgt", seed=0)
        with pytest.raises(RuntimeError):
            augmenter.generate()

    def test_unknown_target_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            DiversePreferenceAugmenter(tiny_dataset, "Nope", seed=0)

    def test_validation_of_matrices(self):
        with pytest.raises(ValueError):
            AugmentedRatings(
                target_name="T",
                source_names=["a"],
                matrices=[np.zeros((2, 2)), np.zeros((2, 2))],
            )
        with pytest.raises(ValueError):
            AugmentedRatings(
                target_name="T",
                source_names=["a", "b"],
                matrices=[np.zeros((2, 2)), np.zeros((3, 2))],
            )


class TestMEConstraintEffect:
    """The ME constraint measurably changes what the decoders generate.

    Note: in this reproduction the ME term *aligns* each target decoder with
    its own source's reconstruction (maximizing their mutual information, as
    Eq. 7 specifies), which at simulator scale tends to trade raw
    cross-source L2 diversity for source-specific structure.  The functional
    consequence — the Fig. 5 accuracy ordering — is benchmarked separately;
    here we pin that β2 actually flows into the generations.
    """

    def _generate(self, dataset, beta2: float):
        augmenter = DiversePreferenceAugmenter(
            dataset,
            "Tgt",
            cvae_config_overrides={"beta2": beta2},
            trainer_config=TrainerConfig(epochs=60),
            seed=0,
        )
        return augmenter.fit_generate()

    def test_beta2_changes_generations(self, tiny_dataset):
        without = self._generate(tiny_dataset, 0.0)
        with_me = self._generate(tiny_dataset, 4.0)
        delta = np.abs(without.matrices[0] - with_me.matrices[0]).mean()
        assert delta > 1e-3

    def test_diversity_positive_under_me(self, tiny_dataset):
        out = self._generate(tiny_dataset, 1.0)
        assert rating_diversity(out) > 0.0
