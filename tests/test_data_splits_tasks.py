"""Splits, task construction and negative sampling: protocol invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.negative_sampling import build_eval_instances
from repro.data.splits import Scenario, make_cold_start_splits
from repro.data.tasks import TaskConfig, _split_support_query, build_task_set


@pytest.fixture(scope="module")
def target(tiny_dataset):
    return tiny_dataset.targets["Tgt"]


@pytest.fixture(scope="module")
def splits(target):
    return make_cold_start_splits(target, rng=0)


class TestSplits:
    def test_partitions_are_disjoint_and_complete(self, target, splits):
        users = np.concatenate([splits.existing_users, splits.new_users])
        assert sorted(users.tolist()) == list(range(target.n_users))
        items = np.concatenate([splits.existing_items, splits.new_items])
        assert sorted(items.tolist()) == list(range(target.n_items))

    def test_new_users_are_low_degree(self, target, splits):
        degrees = target.user_degree()
        assert (degrees[splits.new_users] < 5).all()
        assert (degrees[splits.existing_users] >= 5).all()

    def test_low_degree_items_always_cold(self, target, splits):
        degrees = target.item_degree()
        low = np.flatnonzero(degrees < 5)
        assert set(low.tolist()) <= set(splits.new_items.tolist())

    def test_cold_item_fraction_respected(self, target):
        sp = make_cold_start_splits(target, cold_item_frac=0.4, rng=0)
        expected = round(0.4 * target.n_items)
        assert abs(sp.new_items.size - expected) <= max(
            expected, (target.item_degree() < 5).sum()
        ) - min(expected, (target.item_degree() < 5).sum()) + 1

    def test_split_seed_changes_cold_items(self, target):
        a = make_cold_start_splits(target, rng=1)
        b = make_cold_start_splits(target, rng=2)
        assert set(a.new_items.tolist()) != set(b.new_items.tolist())

    def test_scenario_selectors(self, splits):
        assert splits.users_for(Scenario.WARM) is splits.existing_users
        assert splits.users_for(Scenario.C_U) is splits.new_users
        assert splits.items_for(Scenario.C_I) is splits.new_items
        assert splits.items_for(Scenario.C_U) is splits.existing_items

    def test_invalid_fraction(self, target):
        with pytest.raises(ValueError):
            make_cold_start_splits(target, cold_item_frac=0.0)


class TestTaskConstruction:
    def test_all_scenarios_produce_tasks(self, target, splits):
        for scenario in Scenario:
            tasks = build_task_set(target, splits, scenario, rng=0)
            assert len(tasks) > 0, scenario

    def test_task_items_within_scenario_block(self, target, splits):
        for scenario in Scenario:
            allowed = set(splits.items_for(scenario).tolist())
            users = set(splits.users_for(scenario).tolist())
            for task in build_task_set(target, splits, scenario, rng=0):
                assert task.user_row in users
                items = np.concatenate([task.support_items, task.query_items])
                assert set(items.tolist()) <= allowed

    def test_positives_are_true_interactions(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.WARM, rng=0)
        for task in tasks:
            sup_pos = task.support_items[task.support_labels > 0.5]
            qry_pos = task.query_items[task.query_labels > 0.5]
            for item in np.concatenate([sup_pos, qry_pos]):
                assert target.ratings[task.user_row, int(item)] == 1.0

    def test_negatives_are_non_interactions(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.WARM, rng=0)
        for task in tasks:
            sup_neg = task.support_items[task.support_labels < 0.5]
            for item in sup_neg:
                assert target.ratings[task.user_row, int(item)] == 0.0

    def test_support_and_query_nonempty_positives(self, target, splits):
        for scenario in Scenario:
            for task in build_task_set(target, splits, scenario, rng=0):
                assert (task.support_labels > 0.5).sum() >= 1
                assert (task.query_labels > 0.5).sum() >= 1

    def test_no_item_in_both_support_and_query(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.WARM, rng=0)
        for task in tasks:
            overlap = set(task.support_items.tolist()) & set(task.query_items.tolist())
            assert not overlap

    def test_max_positives_cap(self, target, splits):
        config = TaskConfig(max_positives=4)
        tasks = build_task_set(target, splits, Scenario.WARM, config=config, rng=0)
        for task in tasks:
            n_pos = (task.support_labels > 0.5).sum() + (task.query_labels > 0.5).sum()
            assert n_pos <= 4

    def test_with_labels_rewrites_labels_only(self, target, splits):
        task = build_task_set(target, splits, Scenario.WARM, rng=0).tasks[0]
        fake = np.linspace(0, 1, target.n_items)
        aug = task.with_labels(fake)
        np.testing.assert_array_equal(aug.support_items, task.support_items)
        np.testing.assert_allclose(aug.support_labels, fake[task.support_items])
        np.testing.assert_allclose(aug.query_labels, fake[task.query_items])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TaskConfig(support_frac=0.0)
        with pytest.raises(ValueError):
            TaskConfig(min_positives=1)
        with pytest.raises(ValueError):
            TaskConfig(n_neg_per_pos=-1)

    @given(n_pos=st.integers(2, 30), n_neg=st.integers(0, 60), frac=st.floats(0.1, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_split_support_query_properties(self, n_pos, n_neg, frac):
        rng = np.random.default_rng(0)
        positives = np.arange(n_pos)
        negatives = np.arange(100, 100 + n_neg)
        task = _split_support_query(0, positives, negatives, frac, rng)
        # Conservation: every input item appears exactly once.
        all_items = np.concatenate([task.support_items, task.query_items])
        assert sorted(all_items.tolist()) == sorted(
            np.concatenate([positives, negatives]).tolist()
        )
        # At least one positive on each side.
        assert (task.support_labels > 0.5).sum() >= 1
        assert (task.query_labels > 0.5).sum() >= 1


class TestNegativeSampling:
    def test_instances_well_formed(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.WARM, rng=0)
        instances = build_eval_instances(target, splits, Scenario.WARM, tasks, rng=0)
        assert instances
        for inst in instances:
            # The positive is a held-out query positive, truly interacted.
            assert target.ratings[inst.user_row, inst.pos_item] == 1.0
            # Negatives never interacted with this user anywhere.
            for item in inst.neg_items:
                assert target.ratings[inst.user_row, int(item)] == 0.0
            assert inst.pos_item not in set(inst.neg_items.tolist())

    def test_candidates_layout(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.WARM, rng=0)
        inst = build_eval_instances(target, splits, Scenario.WARM, tasks, rng=0)[0]
        assert inst.candidates[0] == inst.pos_item
        assert inst.labels[0] == 1.0
        assert inst.labels[1:].sum() == 0.0

    def test_negative_count_respects_pool(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.C_UI, rng=0)
        instances = build_eval_instances(
            target, splits, Scenario.C_UI, tasks, n_negatives=99, rng=0
        )
        max_pool = splits.new_items.size
        for inst in instances:
            assert inst.neg_items.size <= min(99, max_pool)

    def test_invalid_negatives(self, target, splits):
        tasks = build_task_set(target, splits, Scenario.WARM, rng=0)
        with pytest.raises(ValueError):
            build_eval_instances(target, splits, Scenario.WARM, tasks, n_negatives=0)
