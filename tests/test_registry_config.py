"""The typed config registry: profiles, validation, dict round-trips."""

from __future__ import annotations

import pytest

from repro.experiments.registry import MethodSpec
from repro.registry import (
    PROFILES,
    TABLE3_METHODS,
    MethodConfig,
    build_method,
    config_class,
    make_method,
    method_names,
)


class TestBuildMethod:
    def test_every_registered_name_buildable_from_dict(self):
        for name in method_names():
            method = build_method({"name": name, "profile": "fast"})
            assert hasattr(method, "fit") and hasattr(method, "score")
            assert method._method_config is not None

    def test_table3_methods_registered(self):
        assert set(TABLE3_METHODS) <= set(method_names())

    def test_dict_seed_and_profile_keys(self):
        method = build_method({"name": "NeuMF", "profile": "fast", "seed": 7})
        assert method.seed == 7
        assert method.epochs == 5  # fast preset applied

    def test_override_beats_profile_preset(self):
        method = build_method({"name": "NeuMF", "epochs": 2}, profile="fast")
        assert method.epochs == 2

    def test_plain_name_string(self):
        method = build_method("Popularity", seed=3)
        assert method.seed == 3

    def test_unknown_method_lists_known(self):
        with pytest.raises(KeyError, match="MetaDPA"):
            build_method({"name": "nope"})

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="turbo"):
            build_method({"name": "MeLU", "profile": "turbo"})

    def test_unknown_config_key_lists_valid_fields(self):
        with pytest.raises(ValueError) as exc_info:
            build_method({"name": "MetaDPA", "cvae_epochsss": 3})
        message = str(exc_info.value)
        assert "cvae_epochsss" in message
        assert "cvae_epochs" in message  # the helpful part: valid fields listed

    def test_missing_name_key(self):
        with pytest.raises(ValueError, match="name"):
            build_method({"profile": "fast"})

    def test_config_object_accepted(self):
        config = config_class("NeuMF").from_dict({"epochs": 3})
        method = build_method(config, seed=1)
        assert method.epochs == 3 and method.seed == 1


class TestMethodConfig:
    def test_to_dict_round_trip(self):
        cls = config_class("MetaDPA")
        config = cls.from_dict({"cvae_epochs": 60, "hidden_dims": [16, 8]})
        restored = cls.from_dict(config.to_dict())
        assert restored == config
        assert restored.hidden_dims == (16, 8)  # lists coerced back to tuples

    def test_profiles_known(self):
        assert PROFILES == ("full", "fast")
        for name in method_names():
            cls = config_class(name)
            assert set(cls.profiles) <= set(PROFILES)
            for preset in cls.profiles.values():
                assert set(preset) <= set(cls.field_names())

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            MethodConfig().build()


class TestAblationVariants:
    def test_variant_configs(self):
        me_only = make_method("MetaDPA-ME", profile="fast")
        mdi_only = make_method("MetaDPA-MDI", profile="fast")
        assert me_only.config.beta1 == 0.0 and me_only.config.beta2 > 0
        assert mdi_only.config.beta2 == 0.0 and mdi_only.config.beta1 > 0
        no_aug = make_method("MetaDPA-NoAug", profile="fast")
        assert not no_aug.config.use_augmentation

    def test_variants_inherit_fast_preset(self):
        method = make_method("MetaDPA-ME", profile="fast")
        assert method.config.cvae_epochs == 60 and method.config.meta_epochs == 6


class TestMethodSpecCompat:
    def test_call_builds(self):
        method = MethodSpec("NeuMF")(seed=2, profile="fast")
        assert method.seed == 2 and method.epochs == 5

    def test_overrides_validated(self):
        with pytest.raises(ValueError, match="bogus_knob"):
            MethodSpec("MetaDPA")(profile="fast", bogus_knob=1)

    def test_valid_override_passes_through(self):
        method = MethodSpec("MetaDPA")(profile="fast", beta1=0.0)
        assert method.config.beta1 == 0.0
