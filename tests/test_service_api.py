"""Serving lifecycle: save/load round-trips, recommend, cache, batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interface import Recommender, training_visibility
from repro.data.negative_sampling import EvalInstance
from repro.data.splits import Scenario
from repro.registry import build_method
from repro.service import LRUCache, MicroBatcher, RecommenderService, ServeRequest

#: tiny budgets: the lifecycle under test is fit → save → load → recommend,
#: not model quality.
ROUND_TRIP_SPECS = {
    "Popularity": {"name": "Popularity"},
    "NeuMF": {"name": "NeuMF", "epochs": 2},
    "MetaDPA": {"name": "MetaDPA", "cvae_epochs": 2, "meta_epochs": 1},
}


@pytest.fixture(scope="module", params=sorted(ROUND_TRIP_SPECS))
def fitted_pair(request, bench_experiment, tmp_path_factory):
    """(fitted method, reloaded copy) for each round-trip method."""
    method = build_method(ROUND_TRIP_SPECS[request.param], seed=0)
    method.fit(bench_experiment.ctx)
    path = method.save(
        tmp_path_factory.mktemp("artifacts") / f"{request.param}.npz"
    )
    return method, Recommender.load(path)


@pytest.fixture(scope="module")
def cold_task(bench_experiment):
    """A user-cold-start support task aligned with its eval instance."""
    tasks = {t.user_row: t for t in bench_experiment.task_sets[Scenario.C_U]}
    instance = next(
        i
        for i in bench_experiment.instances[Scenario.C_U]
        if i.user_row in tasks
    )
    return tasks[instance.user_row], instance


class TestSaveLoadRoundTrip:
    def test_recommend_identical(self, fitted_pair):
        method, reloaded = fitted_pair
        first = method.recommend(0, k=10)
        second = reloaded.recommend(0, k=10)
        assert np.array_equal(first.items, second.items)
        assert np.allclose(first.scores, second.scores)

    def test_score_identical_with_adaptation(self, fitted_pair, cold_task):
        method, reloaded = fitted_pair
        task, instance = cold_task
        assert np.allclose(
            method.score(task, instance), reloaded.score(task, instance)
        )

    def test_header_preserves_config(self, fitted_pair):
        method, reloaded = fitted_pair
        assert type(reloaded) is type(method)
        assert reloaded.config_dict() == method.config_dict()

    def test_directly_constructed_method_round_trips(
        self, bench_experiment, tmp_path
    ):
        # Non-default hyper-parameters of a hand-built instance must survive
        # save/load even though no registry config was attached at build.
        from repro.baselines import NeuMF

        method = NeuMF(embed_dim=8, hidden_dims=(16,), epochs=1, seed=0)
        method.fit(bench_experiment.ctx)
        path = method.save(tmp_path / "direct.npz")
        reloaded = Recommender.load(path)
        assert reloaded.embed_dim == 8 and reloaded.hidden_dims == (16,)
        first, second = method.recommend(0, k=10), reloaded.recommend(0, k=10)
        assert np.array_equal(first.items, second.items)

    def test_typed_load_rejects_wrong_class(self, fitted_pair, tmp_path):
        from repro.baselines import NeuMF

        method, _ = fitted_pair
        if isinstance(method, NeuMF):
            pytest.skip("NeuMF artifact legitimately loads as NeuMF")
        path = method.save(tmp_path / "artifact.npz")
        with pytest.raises(TypeError):
            NeuMF.load(path)


class TestRecommend:
    def test_excludes_seen_items(self, fitted_pair, bench_experiment):
        method, _ = fitted_pair
        seen = np.flatnonzero(bench_experiment.ctx.visible_ratings[0] > 0)
        result = method.recommend(0, k=50)
        assert not np.intersect1d(result.items, seen).size

    def test_include_seen_widens_pool(self, fitted_pair):
        method, _ = fitted_pair
        n_items = method.serving.n_items
        result = method.recommend(0, k=n_items, exclude_seen=False)
        assert len(result) == n_items

    def test_candidates_restrict_pool(self, fitted_pair):
        method, _ = fitted_pair
        pool = np.array([3, 5, 7, 9])
        result = method.recommend(0, k=10, exclude_seen=False, candidates=pool)
        assert set(result.items) <= set(pool.tolist())

    def test_scores_sorted_descending(self, fitted_pair):
        method, _ = fitted_pair
        result = method.recommend(1, k=20)
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_unfitted_method_raises(self):
        method = build_method({"name": "Popularity"})
        with pytest.raises(RuntimeError, match="serving state"):
            method.recommend(0)

    def test_invalid_k(self, fitted_pair):
        method, _ = fitted_pair
        with pytest.raises(ValueError):
            method.recommend(0, k=0)

    def test_out_of_range_user_rejected(self, fitted_pair):
        method, _ = fitted_pair
        with pytest.raises(ValueError, match="out of range"):
            method.recommend(method.serving.n_users, k=5)
        # Negative rows must not silently alias numpy's -1 indexing.
        with pytest.raises(ValueError, match="out of range"):
            method.recommend(-1, k=5)


class TestScoreBatchContract:
    def test_score_batch_misalignment(self, fitted_pair):
        method, _ = fitted_pair
        instance = EvalInstance(user_row=0, pos_item=0, neg_items=np.array([1, 2]))
        with pytest.raises(ValueError, match="align"):
            method.score_batch([None, None], [instance])

    def test_score_with_state_batch_misalignment(self, fitted_pair):
        method, _ = fitted_pair
        instance = EvalInstance(user_row=0, pos_item=0, neg_items=np.array([1, 2]))
        with pytest.raises(ValueError, match="align"):
            method.score_with_state_batch([None, None], [instance])

    def test_batched_matches_sequential(self, fitted_pair, cold_task):
        method, _ = fitted_pair
        task, instance = cold_task
        other = EvalInstance(user_row=1, pos_item=2, neg_items=np.array([4, 6, 8]))
        states = [method.adapt_user(task), None]
        batched = method.score_with_state_batch(states, [instance, other])
        for state, inst, scores in zip(states, [instance, other], batched):
            assert np.allclose(scores, method.score_with_state(state, inst))


class TestTrainingVisibilityDtype:
    def test_default_is_float32(self, bench_experiment):
        ctx = bench_experiment.ctx
        visible = training_visibility(
            ctx.domain.n_users, ctx.domain.n_items, ctx.warm_tasks
        )
        assert visible.dtype == np.float32

    def test_dtype_parameter(self, bench_experiment):
        ctx = bench_experiment.ctx
        f64 = training_visibility(
            ctx.domain.n_users, ctx.domain.n_items, ctx.warm_tasks, dtype=np.float64
        )
        f32 = training_visibility(
            ctx.domain.n_users, ctx.domain.n_items, ctx.warm_tasks
        )
        assert f64.dtype == np.float64
        assert np.array_equal(f64, f32)
        assert f32.nbytes * 2 == f64.nbytes


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None and cache.misses == 1
        cache.put("a", 1)
        assert cache.get("a") == 1 and cache.hits == 1

    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is least recent
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_invalidate(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        assert cache.invalidate("a") and not cache.invalidate("a")


class _CountingMethod:
    """Wrap a recommender, counting expensive adaptation calls."""

    def __init__(self, method):
        self._method = method
        self.adapt_calls = 0

    def __getattr__(self, name):
        return getattr(self._method, name)

    def adapt_user(self, task):
        self.adapt_calls += 1
        return self._method.adapt_user(task)


@pytest.fixture(scope="module")
def fitted_melu(bench_experiment):
    method = build_method({"name": "MeLU", "meta_epochs": 1}, seed=0)
    return method.fit(bench_experiment.ctx)


class TestRecommenderService:
    def test_repeat_requests_hit_adaptation_cache(self, fitted_melu, cold_task):
        task, _ = cold_task
        counting = _CountingMethod(fitted_melu)
        service = RecommenderService(counting, cache_size=8)
        service.register_user_history(task)
        first = service.recommend(task.user_row, k=5)
        second = service.recommend(task.user_row, k=5)
        # The expensive fine-tuning ran exactly once; the repeat request was
        # served from the LRU cache — that cached adaptation is the speedup.
        assert counting.adapt_calls == 1
        assert service.stats()["cache"]["hits"] == 1
        assert np.array_equal(first.items, second.items)
        assert np.allclose(first.scores, second.scores)

    def test_eviction_forces_readaptation(self, fitted_melu, cold_task):
        task, _ = cold_task
        counting = _CountingMethod(fitted_melu)
        service = RecommenderService(counting, cache_size=1)
        service.register_user_history(task)
        service.recommend(task.user_row, k=5)
        service.recommend(task.user_row + 1, k=5)  # evicts the first user
        service.recommend(task.user_row, k=5)
        assert counting.adapt_calls == 3

    def test_new_explicit_task_bypasses_stale_cache(self, fitted_melu, cold_task):
        from dataclasses import replace

        task, _ = cold_task
        counting = _CountingMethod(fitted_melu)
        service = RecommenderService(counting, cache_size=8)
        service.recommend(task.user_row, k=5, task=task)
        service.recommend(task.user_row, k=5, task=task)  # same object: cached
        assert counting.adapt_calls == 1
        # An equal-value copy is NOT fresh history — staleness is by value
        # fingerprint, so a re-sent (e.g. re-pickled) task stays cached.
        service.recommend(task.user_row, k=5, task=replace(task))
        assert counting.adapt_calls == 1
        # Genuinely new interactions for the same user bypass the cache.
        fresh = replace(task, support_labels=1.0 - task.support_labels)
        service.recommend(task.user_row, k=5, task=fresh)
        assert counting.adapt_calls == 2
        service.recommend(task.user_row, k=5)  # no task: cached again
        assert counting.adapt_calls == 2

    def test_register_history_invalidates(self, fitted_melu, cold_task):
        task, _ = cold_task
        counting = _CountingMethod(fitted_melu)
        service = RecommenderService(counting, cache_size=8)
        service.register_user_history(task)
        service.recommend(task.user_row, k=5)
        service.register_user_history(task)  # new interactions arrived
        service.recommend(task.user_row, k=5)
        assert counting.adapt_calls == 2

    def test_matches_direct_recommend(self, fitted_melu, cold_task):
        task, _ = cold_task
        service = RecommenderService(fitted_melu)
        service.register_user_history(task)
        from_service = service.recommend(task.user_row, k=7)
        direct = fitted_melu.recommend(task.user_row, k=7, task=task)
        assert np.array_equal(from_service.items, direct.items)
        assert np.allclose(from_service.scores, direct.scores)

    def test_batching_path_matches_direct(self, fitted_melu, cold_task):
        task, _ = cold_task
        with RecommenderService(
            fitted_melu, batching=True, max_wait_ms=1.0
        ) as batched:
            batched.register_user_history(task)
            direct = RecommenderService(fitted_melu)
            direct.register_user_history(task)
            for user in (task.user_row, 0, 1):
                a = batched.recommend(user, k=5)
                b = direct.recommend(user, k=5)
                assert np.array_equal(a.items, b.items)
                assert np.allclose(a.scores, b.scores)
            assert batched.stats()["batching"]["requests"] == 3

    def test_recommend_many_matches_individual(self, fitted_melu):
        service = RecommenderService(fitted_melu)
        users = [0, 1, 2]
        many = service.recommend_many(users, k=5)
        for user, result in zip(users, many):
            single = service.recommend(user, k=5)
            assert np.array_equal(result.items, single.items)

    def test_candidate_pool_restricts(self, fitted_melu):
        pool = np.arange(10)
        service = RecommenderService(fitted_melu, candidate_pool=pool)
        result = service.recommend(0, k=20, exclude_seen=False)
        assert set(result.items) <= set(pool.tolist())

    def test_out_of_range_user_rejected(self, fitted_melu):
        service = RecommenderService(fitted_melu)
        with pytest.raises(ValueError, match="out of range"):
            service.recommend(fitted_melu.serving.n_users, k=5)
        with pytest.raises(ValueError, match="out of range"):
            service.recommend(-1, k=5)

    def test_out_of_range_pool_rejected(self, fitted_melu):
        n_items = fitted_melu.serving.n_items
        with pytest.raises(ValueError):
            RecommenderService(fitted_melu, candidate_pool=np.array([n_items + 1]))

    def test_from_artifact(self, fitted_melu, tmp_path):
        path = fitted_melu.save(tmp_path / "melu.npz")
        service = RecommenderService.from_artifact(path)
        result = service.recommend(0, k=5)
        assert np.array_equal(result.items, fitted_melu.recommend(0, k=5).items)


class _CountingBatchMethod(_CountingMethod):
    """Also count the coalesced ``adapt_users`` entry point."""

    def __init__(self, method):
        super().__init__(method)
        self.adapt_users_calls = 0
        self.adapted_users = 0

    def adapt_users(self, tasks):
        self.adapt_users_calls += 1
        self.adapted_users += len(tasks)
        return self._method.adapt_users(tasks)


class TestRecommendBatch:
    @staticmethod
    def _cold_tasks(bench_experiment, n):
        tasks = list(bench_experiment.task_sets[Scenario.C_U])
        assert len(tasks) >= n
        return tasks[:n]

    def test_matches_sequential_bitwise(self, fitted_melu, bench_experiment):
        from dataclasses import replace

        tasks = self._cold_tasks(bench_experiment, 4)
        # Duplicates, warm users, and a mid-stream history refresh: the
        # batch plan must replay exactly what sequential serving would do.
        stream = [
            ServeRequest(tasks[0].user_row, k=6),
            ServeRequest(0, k=6),
            ServeRequest(tasks[1].user_row, k=6),
            ServeRequest(tasks[0].user_row, k=6),
            ServeRequest(tasks[2].user_row, k=6, task=replace(tasks[2])),
            ServeRequest(1, k=6),
            ServeRequest(tasks[3].user_row, k=6),
            ServeRequest(tasks[2].user_row, k=6),
        ]
        sequential = RecommenderService(fitted_melu, cache_size=16)
        batched = RecommenderService(fitted_melu, cache_size=16)
        for service in (sequential, batched):
            for task in tasks:
                service.register_user_history(task)
        reference = [
            sequential.recommend(
                r.user_row, k=r.k, task=r.task, exclude_seen=r.exclude_seen
            )
            for r in stream
        ]
        results = batched.recommend_batch(stream)
        for want, got in zip(reference, results):
            np.testing.assert_array_equal(want.items, got.items)
            np.testing.assert_array_equal(want.scores, got.scores)

    def test_single_adapt_users_call_for_mixed_burst(
        self, fitted_melu, bench_experiment
    ):
        tasks = self._cold_tasks(bench_experiment, 4)
        counting = _CountingBatchMethod(fitted_melu)
        service = RecommenderService(counting, cache_size=16)
        for task in tasks:
            service.register_user_history(task)
        # Warm half the users through the solo path, then serve a burst
        # mixing cached, cold, and duplicate-cold users.
        for task in tasks[:2]:
            service.recommend(task.user_row, k=5)
        burst = [ServeRequest(t.user_row, k=5) for t in tasks]
        burst.append(ServeRequest(tasks[3].user_row, k=5))  # duplicate cold
        service.recommend_batch(burst)
        # Exactly one coalesced adaptation covering only the 2 cold users;
        # the duplicate reused the freshly adapted state within the batch.
        assert counting.adapt_users_calls == 1
        assert counting.adapted_users == 2

    def test_stats_expose_adaptation_counters(
        self, fitted_melu, bench_experiment
    ):
        tasks = self._cold_tasks(bench_experiment, 3)
        service = RecommenderService(fitted_melu, cache_size=16)
        for task in tasks:
            service.register_user_history(task)
        before = service.stats()["adaptation"]
        assert before == {"batches": 0, "users": 0, "pending": 0}
        service.recommend_batch([ServeRequest(t.user_row, k=5) for t in tasks])
        after = service.stats()["adaptation"]
        assert after["batches"] == 1
        assert after["users"] == 3
        assert after["pending"] == 0

    def test_batching_service_one_adapt_users_per_flush(
        self, fitted_melu, bench_experiment
    ):
        import threading

        tasks = self._cold_tasks(bench_experiment, 6)
        counting = _CountingBatchMethod(fitted_melu)
        reference = RecommenderService(fitted_melu, cache_size=16)
        with RecommenderService(
            counting, batching=True, cache_size=16, max_wait_ms=250.0
        ) as service:
            for task in tasks:
                service.register_user_history(task)
                reference.register_user_history(task)
            # Warm 3 users one at a time (each blocking call is its own
            # flush), then burst all 6 concurrently into a single flush.
            for task in tasks[:3]:
                service.recommend(task.user_row, k=5)
            calls_before = counting.adapt_users_calls
            batches_before = service.stats()["adaptation"]["batches"]
            results: dict[int, object] = {}

            def request(user):
                results[user] = service.recommend(user, k=5)

            threads = [
                threading.Thread(target=request, args=(t.user_row,))
                for t in tasks
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        # One flush resolved the whole burst: a single adapt_users call
        # fine-tuned exactly the 3 cache-missed users, and the pending
        # depth drained back to zero.
        assert counting.adapt_users_calls == calls_before + 1
        assert stats["adaptation"]["batches"] == batches_before + 1
        assert stats["adaptation"]["pending"] == 0
        for task in tasks:
            want = reference.recommend(task.user_row, k=5)
            got = results[task.user_row]
            np.testing.assert_array_equal(want.items, got.items)
            # The coalesced flush scores through the batched kernel, which
            # matches solo serving to float tolerance (recommend_batch is
            # the bit-identical path; see test_matches_sequential_bitwise).
            np.testing.assert_allclose(want.scores, got.scores, rtol=1e-5)


class TestMicroBatcher:
    @staticmethod
    def _echo_scorer(states, instances):
        return [np.asarray(i.candidates, dtype=float) for i in instances]

    def test_coalesces_queued_requests(self):
        batcher = MicroBatcher(self._echo_scorer, autostart=False)
        futures = [
            batcher.submit(None, EvalInstance(u, 0, np.array([1, 2])))
            for u in range(5)
        ]
        served = batcher.process_once()
        assert served == 5 and batcher.n_batches == 1
        assert batcher.largest_batch == 5
        for future in futures:
            assert np.array_equal(future.result(), [0.0, 1.0, 2.0])

    def test_respects_max_batch(self):
        batcher = MicroBatcher(self._echo_scorer, max_batch=2, autostart=False)
        for u in range(5):
            batcher.submit(None, EvalInstance(u, 0, np.array([1])))
        sizes = [batcher.process_once() for _ in range(3)]
        assert sizes == [2, 2, 1]

    def test_error_propagates_to_futures(self):
        def broken(states, instances):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(broken, autostart=False)
        future = batcher.submit(None, EvalInstance(0, 0, np.array([1])))
        batcher.process_once()
        with pytest.raises(RuntimeError, match="model exploded"):
            future.result()

    def test_threaded_worker_serves_concurrent_submits(self):
        import threading

        batcher = MicroBatcher(self._echo_scorer, max_wait_ms=20.0)
        futures: list = []
        lock = threading.Lock()

        def client(user):
            future = batcher.submit(None, EvalInstance(user, 0, np.array([1, 2])))
            with lock:
                futures.append(future)

        threads = [threading.Thread(target=client, args=(u,)) for u in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [f.result(timeout=5.0) for f in futures]
        batcher.close()
        assert len(results) == 8
        assert all(np.array_equal(r, [0.0, 1.0, 2.0]) for r in results)

    def test_close_flushes_partially_filled_batch(self):
        # A long wait window keeps the batch open (3 of 64 slots filled);
        # close() must serve those requests promptly, not wait the window
        # out or drop them.
        batcher = MicroBatcher(self._echo_scorer, max_batch=64, max_wait_ms=5000.0)
        futures = [
            batcher.submit(None, EvalInstance(u, 0, np.array([1, 2])))
            for u in range(3)
        ]
        batcher.close()
        for future in futures:
            np.testing.assert_array_equal(
                future.result(timeout=5.0), [0.0, 1.0, 2.0]
            )
        assert batcher.stats()["requests"] == 3
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(None, EvalInstance(9, 0, np.array([1])))

    def test_close_without_worker_drains_queue(self):
        batcher = MicroBatcher(self._echo_scorer, autostart=False)
        futures = [
            batcher.submit(None, EvalInstance(u, 0, np.array([1, 2])))
            for u in range(3)
        ]
        batcher.close()  # no worker thread ever ran: close itself drains
        for future in futures:
            assert future.done()
            np.testing.assert_array_equal(future.result(), [0.0, 1.0, 2.0])
        assert batcher.n_batches >= 1 and batcher.largest_batch <= 3

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(self._echo_scorer, autostart=False)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(None, EvalInstance(0, 0, np.array([1])))

    def test_shutdown_with_raising_scorer_resolves_pending(self):
        # A flush callable that raises during shutdown must not deadlock
        # close(): every pending future resolves with the error instead of
        # waiting forever on a batch that can never succeed.
        def broken(states, instances):
            raise RuntimeError("artifact vanished")

        batcher = MicroBatcher(broken, max_batch=64, max_wait_ms=5000.0)
        futures = [
            batcher.submit(None, EvalInstance(u, 0, np.array([1, 2])))
            for u in range(3)
        ]
        batcher.close()  # returns promptly despite the raising scorer
        for future in futures:
            assert future.done()
            with pytest.raises(RuntimeError, match="artifact vanished"):
                future.result()

    def test_deadline_caps_the_flush_window(self):
        import time

        # The window is 5s, but the request only has ~50ms of budget left:
        # the batch must fire at the deadline, not at the window's end.
        batcher = MicroBatcher(self._echo_scorer, max_batch=64, max_wait_ms=5000.0)
        t0 = time.monotonic()
        future = batcher.submit(
            None,
            EvalInstance(0, 0, np.array([1, 2])),
            deadline=time.time() + 0.05,
        )
        np.testing.assert_array_equal(
            future.result(timeout=5.0), [0.0, 1.0, 2.0]
        )
        assert time.monotonic() - t0 < 2.0
        batcher.close()

    def test_late_arrival_deadline_shrinks_an_open_window(self):
        import time

        # First request opens a 5s window; a second request with a tight
        # deadline joins it and must pull the whole flush forward.
        batcher = MicroBatcher(self._echo_scorer, max_batch=64, max_wait_ms=5000.0)
        t0 = time.monotonic()
        relaxed = batcher.submit(None, EvalInstance(0, 0, np.array([1, 2])))
        time.sleep(0.05)  # let the worker open the window on the first
        urgent = batcher.submit(
            None,
            EvalInstance(1, 0, np.array([1, 2])),
            deadline=time.time() + 0.05,
        )
        np.testing.assert_array_equal(
            urgent.result(timeout=5.0), [0.0, 1.0, 2.0]
        )
        np.testing.assert_array_equal(
            relaxed.result(timeout=5.0), [0.0, 1.0, 2.0]
        )
        assert time.monotonic() - t0 < 2.0
        assert batcher.n_batches == 1  # one coalesced flush, pulled forward
        batcher.close()
