"""Golden regression of the evaluation + grid-runner path.

``tests/golden/table3_mini.json`` pins the metrics of a small seeded grid
(2 methods × 2 scenarios, the committed snapshot of a mini Table III).  A
refactor of the metrics, the protocol, the prepared-experiment plumbing or
the grid engine that shifts any reported number fails here instead of
silently changing the paper tables.

This module is also the acceptance test of the grid engine itself: the
parallel run (``workers=4``) must reproduce the serial path exactly, and an
immediate relaunch must resume with zero cells recomputed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.eval.protocol import evaluate_prepared
from repro.runner import GridSpec, run_grid, table3_from_store

GOLDEN_PATH = Path(__file__).parent / "golden" / "table3_mini.json"
METRIC_NAMES = ("hr", "mrr", "ndcg", "auc")
TOLERANCE = 1e-6


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_spec(golden) -> GridSpec:
    return GridSpec.from_dict(golden["spec"])


@pytest.fixture(scope="module")
def grid_table(golden_spec, tmp_path_factory):
    """One parallel grid run shared by the tests of this module."""
    run_dir = tmp_path_factory.mktemp("golden-grid")
    report = run_grid(golden_spec, run_dir, workers=4)
    assert report.ok, report.failures
    assert report.n_computed == len(golden_spec.expand())
    return run_dir, table3_from_store(run_dir)


def test_parallel_grid_matches_golden(golden, golden_spec, grid_table):
    _, table = grid_table
    for target, per_scenario in golden["metrics"].items():
        for scenario_value, per_method in per_scenario.items():
            scenario = Scenario(scenario_value)
            for method, expected in per_method.items():
                for metric in METRIC_NAMES:
                    actual = table.mean(target, scenario, method, metric)
                    assert actual == pytest.approx(
                        expected[metric], abs=TOLERANCE
                    ), f"{method}/{target}/{scenario_value}/{metric} drifted"


def test_serial_path_matches_golden(golden, golden_spec, bench_dataset):
    """The non-grid evaluation path must agree with the same snapshot.

    ``bench_dataset`` is the very dataset the golden spec names (the
    conftest fixture and the spec share scale and seed), so any divergence
    here is an eval-path change, not a data change.
    """
    assert golden_spec.dataset.to_dict() == {"user_base": 120, "item_base": 80, "seed": 3}
    target = golden_spec.targets[0]
    experiment = prepare_experiment(
        bench_dataset,
        target,
        seed=golden_spec.seeds[0],
        n_negatives=golden_spec.n_negatives,
        scenarios=list(golden_spec.scenarios),
    )
    for entry in golden_spec.methods:
        label = golden_spec.method_label(entry)
        results = evaluate_prepared(
            golden_spec.resolve_method(entry),
            experiment,
            scenarios=list(golden_spec.scenarios),
            k=golden_spec.k,
        )
        for scenario in golden_spec.scenarios:
            expected = golden["metrics"][target][scenario.value][label]
            for metric in METRIC_NAMES:
                actual = getattr(results[scenario].metrics, metric)
                assert actual == pytest.approx(expected[metric], abs=TOLERANCE)


def test_relaunch_resumes_with_zero_recompute(golden_spec, grid_table):
    run_dir, _ = grid_table
    report = run_grid(golden_spec, run_dir, workers=4)
    assert report.ok
    assert report.n_computed == 0
    assert report.n_skipped == len(golden_spec.expand())
