"""Layer forward/backward correctness, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Relu,
    Sigmoid,
    Softmax,
    Tanh,
    numerical_gradient,
    relative_error,
)
from repro.nn.layers import sigmoid, softmax

RNG = np.random.default_rng(0)


def _check_layer_grads(layer, x, tol=1e-5):
    """Check analytic parameter and input gradients against finite differences."""
    params = layer.init_params(np.random.default_rng(1))
    # Use a random projection as the downstream "loss" so dy is generic.
    y0, cache = layer.forward(params, x)
    proj = np.random.default_rng(2).normal(size=y0.shape)

    def loss_given_x(x_in):
        y, _ = layer.forward(params, x_in)
        return float((y * proj).sum())

    dy = proj
    dx, grads = layer.backward(params, cache, dy)

    num_dx = numerical_gradient(loss_given_x, x.astype(float).copy())
    assert relative_error(dx, num_dx) < tol, "input gradient mismatch"

    for name in params:
        def loss_given_p(p, name=name):
            saved = params[name]
            params[name] = p
            y, _ = layer.forward(params, x)
            params[name] = saved
            return float((y * proj).sum())

        num = numerical_gradient(loss_given_p, params[name].copy())
        assert relative_error(grads[name], num) < tol, f"grad mismatch for {name}"


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3)
        params = layer.init_params(RNG)
        y, _ = layer.forward(params, np.ones((5, 4)))
        assert y.shape == (5, 3)

    def test_forward_matches_matmul(self):
        layer = Linear(3, 2)
        params = {"W": np.arange(6).reshape(3, 2).astype(float), "b": np.array([1.0, -1.0])}
        x = np.array([[1.0, 0.0, 2.0]])
        y, _ = layer.forward(params, x)
        np.testing.assert_allclose(y, x @ params["W"] + params["b"])

    def test_gradients(self):
        _check_layer_grads(Linear(4, 3), RNG.normal(size=(6, 4)))

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        params = layer.init_params(RNG)
        assert "b" not in params
        _check_layer_grads(Linear(4, 3, bias=False), RNG.normal(size=(5, 4)))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)


class TestEmbedding:
    def test_lookup(self):
        layer = Embedding(10, 4)
        params = layer.init_params(RNG)
        idx = np.array([0, 3, 3, 9])
        y, _ = layer.forward(params, idx)
        np.testing.assert_allclose(y, params["E"][idx])

    def test_backward_scatter_adds(self):
        layer = Embedding(5, 2)
        params = layer.init_params(RNG)
        idx = np.array([1, 1, 3])
        _, cache = layer.forward(params, idx)
        dy = np.ones((3, 2))
        _, grads = layer.backward(params, cache, dy)
        # Row 1 hit twice, row 3 once, others zero.
        np.testing.assert_allclose(grads["E"][1], [2.0, 2.0])
        np.testing.assert_allclose(grads["E"][3], [1.0, 1.0])
        np.testing.assert_allclose(grads["E"][0], [0.0, 0.0])

    def test_out_of_range_raises(self):
        layer = Embedding(5, 2)
        params = layer.init_params(RNG)
        with pytest.raises(IndexError):
            layer.forward(params, np.array([5]))
        with pytest.raises(IndexError):
            layer.forward(params, np.array([-1]))

    def test_2d_indices(self):
        layer = Embedding(6, 3)
        params = layer.init_params(RNG)
        idx = np.array([[0, 1], [2, 3]])
        y, _ = layer.forward(params, idx)
        assert y.shape == (2, 2, 3)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [Relu, Sigmoid, Tanh, Softmax])
    def test_gradients(self, layer_cls):
        _check_layer_grads(layer_cls(), RNG.normal(size=(5, 4)))

    def test_relu_zeroes_negatives(self):
        y, _ = Relu().forward({}, np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(y, [[0.0, 2.0]])

    def test_sigmoid_range_and_stability(self):
        x = np.array([[-1000.0, 0.0, 1000.0]])
        y, _ = Sigmoid().forward({}, x)
        assert np.all((y >= 0.0) & (y <= 1.0))
        assert np.isfinite(y).all()
        np.testing.assert_allclose(y[0, 1], 0.5)

    def test_softmax_rows_sum_to_one(self):
        y, _ = Softmax().forward({}, RNG.normal(size=(4, 7)) * 50)
        np.testing.assert_allclose(y.sum(axis=1), np.ones(4), atol=1e-12)
        assert np.isfinite(y).all()

    def test_tanh_matches_numpy(self):
        x = RNG.normal(size=(3, 3))
        y, _ = Tanh().forward({}, x)
        np.testing.assert_allclose(y, np.tanh(x))


class TestDropout:
    def test_identity_at_eval(self):
        x = RNG.normal(size=(4, 4))
        y, _ = Dropout(0.5).forward({}, x, train=False)
        np.testing.assert_array_equal(y, x)

    def test_training_masks_and_scales(self):
        x = np.ones((200, 50))
        layer = Dropout(0.5)
        y, mask = layer.forward({}, x, rng=np.random.default_rng(0), train=True)
        kept = y != 0
        # Kept entries are scaled by 1/keep.
        np.testing.assert_allclose(y[kept], 2.0)
        assert 0.4 < kept.mean() < 0.6

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.3)
        x = np.ones((10, 10))
        y, cache = layer.forward({}, x, rng=np.random.default_rng(1), train=True)
        dy = np.ones_like(y)
        dx, _ = layer.backward({}, cache, dy)
        np.testing.assert_array_equal(dx == 0, y == 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestLayerNorm:
    def test_normalizes(self):
        layer = LayerNorm(8)
        params = layer.init_params(RNG)
        y, _ = layer.forward(params, RNG.normal(size=(5, 8)) * 10 + 3)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients(self):
        _check_layer_grads(LayerNorm(6), RNG.normal(size=(4, 6)), tol=1e-4)


class TestStandaloneFunctions:
    def test_sigmoid_extremes(self):
        assert sigmoid(np.array([800.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-800.0]))[0] == pytest.approx(0.0)

    def test_softmax_invariant_to_shift(self):
        x = RNG.normal(size=(2, 5))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)
