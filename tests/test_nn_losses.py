"""Loss values and gradients, including hypothesis property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    binary_cross_entropy,
    gaussian_kl,
    gaussian_kl_to_code,
    info_nce,
    mse_loss,
    numerical_gradient,
    relative_error,
)
from repro.nn.losses import info_nce_mi_estimate

RNG = np.random.default_rng(0)


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        loss, _ = binary_cross_entropy(np.array([0.999999, 1e-6]), np.array([1.0, 0.0]))
        assert loss < 1e-4

    def test_uniform_prediction(self):
        loss, _ = binary_cross_entropy(np.full(4, 0.5), np.array([1.0, 0.0, 1.0, 0.0]))
        assert loss == pytest.approx(np.log(2.0))

    def test_gradient_matches_numerical(self):
        pred = RNG.uniform(0.05, 0.95, size=(6,))
        target = RNG.uniform(0.0, 1.0, size=(6,))
        loss, grad = binary_cross_entropy(pred, target)
        num = numerical_gradient(lambda p: binary_cross_entropy(p, target)[0], pred.copy())
        assert relative_error(grad, num) < 1e-5

    def test_soft_labels_supported(self):
        loss, grad = binary_cross_entropy(np.array([0.3]), np.array([0.3]))
        # Gradient is zero at pred == soft target.
        np.testing.assert_allclose(grad, 0.0, atol=1e-9)

    def test_weighting(self):
        pred = np.array([0.2, 0.8])
        target = np.array([1.0, 1.0])
        full, _ = binary_cross_entropy(pred, target)
        masked, grad = binary_cross_entropy(pred, target, weight=np.array([1.0, 0.0]))
        assert masked != full
        assert grad[1] == 0.0

    def test_clipping_handles_extremes(self):
        loss, grad = binary_cross_entropy(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    @given(
        arrays(float, 8, elements=st.floats(0.01, 0.99)),
        arrays(float, 8, elements=st.floats(0.0, 1.0)),
    )
    @settings(max_examples=30, deadline=None)
    def test_nonnegative(self, pred, target):
        loss, _ = binary_cross_entropy(pred, target)
        # BCE with soft targets is bounded below by the target entropy >= 0.
        assert loss >= -1e-9


class TestMSE:
    def test_zero_at_equal(self):
        x = RNG.normal(size=(3, 3))
        loss, grad = mse_loss(x, x.copy())
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_value(self):
        loss, _ = mse_loss(np.array([2.0, 0.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.0)

    def test_gradient(self):
        pred = RNG.normal(size=(4, 2))
        target = RNG.normal(size=(4, 2))
        _, grad = mse_loss(pred, target)
        num = numerical_gradient(lambda p: mse_loss(p, target)[0], pred.copy())
        assert relative_error(grad, num) < 1e-5


class TestGaussianKL:
    def test_zero_at_standard_normal(self):
        mu = np.zeros((3, 4))
        log_var = np.zeros((3, 4))
        kl, gm, gv = gaussian_kl(mu, log_var)
        assert kl == pytest.approx(0.0)
        np.testing.assert_allclose(gm, 0.0)
        np.testing.assert_allclose(gv, 0.0)

    def test_positive_otherwise(self):
        kl, _, _ = gaussian_kl(np.ones((2, 2)), np.ones((2, 2)))
        assert kl > 0.0

    def test_gradients(self):
        mu = RNG.normal(size=(3, 4))
        log_var = RNG.normal(size=(3, 4)) * 0.5
        _, gm, gv = gaussian_kl(mu, log_var)
        num_m = numerical_gradient(lambda m: gaussian_kl(m, log_var)[0], mu.copy())
        num_v = numerical_gradient(lambda v: gaussian_kl(mu, v)[0], log_var.copy())
        assert relative_error(gm, num_m) < 1e-5
        assert relative_error(gv, num_v) < 1e-5


class TestGaussianKLToCode:
    def test_reduces_to_standard_at_zero_code(self):
        mu = RNG.normal(size=(3, 4))
        log_var = RNG.normal(size=(3, 4)) * 0.3
        kl_code, *_ = gaussian_kl_to_code(mu, log_var, np.zeros_like(mu))
        kl_std, *_ = gaussian_kl(mu, log_var)
        assert kl_code == pytest.approx(kl_std)

    def test_zero_when_posterior_equals_prior(self):
        code = RNG.normal(size=(2, 3))
        kl, gm, gv, gc = gaussian_kl_to_code(code.copy(), np.zeros((2, 3)), code)
        assert kl == pytest.approx(0.0)
        np.testing.assert_allclose(gm, 0.0, atol=1e-12)
        np.testing.assert_allclose(gc, 0.0, atol=1e-12)

    def test_gradients(self):
        mu = RNG.normal(size=(3, 4))
        log_var = RNG.normal(size=(3, 4)) * 0.3
        code = RNG.normal(size=(3, 4))
        _, gm, gv, gc = gaussian_kl_to_code(mu, log_var, code)
        num_m = numerical_gradient(
            lambda m: gaussian_kl_to_code(m, log_var, code)[0], mu.copy()
        )
        num_v = numerical_gradient(
            lambda v: gaussian_kl_to_code(mu, v, code)[0], log_var.copy()
        )
        num_c = numerical_gradient(
            lambda c: gaussian_kl_to_code(mu, log_var, c)[0], code.copy()
        )
        assert relative_error(gm, num_m) < 1e-5
        assert relative_error(gv, num_v) < 1e-5
        assert relative_error(gc, num_c) < 1e-5


class TestInfoNCE:
    def test_single_pair_is_zero(self):
        a = RNG.normal(size=(1, 4))
        loss, ga, gb = info_nce(a, a.copy())
        assert loss == 0.0
        np.testing.assert_allclose(ga, 0.0)

    def test_aligned_batches_score_low(self):
        a = RNG.normal(size=(16, 8))
        loss_aligned, _, _ = info_nce(a, a + 0.01 * RNG.normal(size=a.shape))
        b_shuffled = a[RNG.permutation(16)]
        loss_shuffled, _, _ = info_nce(a, b_shuffled)
        assert loss_aligned < loss_shuffled

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            info_nce(np.zeros((3, 2)), np.zeros((4, 2)))

    @pytest.mark.parametrize("normalize", [True, False])
    def test_gradients(self, normalize):
        # Moderate magnitudes and temperature 1.0 keep the softmax away from
        # saturation, where the numerical clip inside log() would flatten
        # the finite-difference estimate.
        a = 0.5 * RNG.normal(size=(5, 3))
        b = 0.5 * RNG.normal(size=(5, 3))
        _, ga, gb = info_nce(a, b, temperature=1.0, normalize=normalize)
        num_a = numerical_gradient(
            lambda x: info_nce(x, b, temperature=1.0, normalize=normalize)[0], a.copy()
        )
        num_b = numerical_gradient(
            lambda x: info_nce(a, x, temperature=1.0, normalize=normalize)[0], b.copy()
        )
        assert relative_error(ga, num_a) < 1e-4
        assert relative_error(gb, num_b) < 1e-4

    def test_normalized_logits_bounded(self):
        # Huge-magnitude inputs stay stable with cosine similarities.
        a = RNG.normal(size=(8, 4)) * 1e6
        b = RNG.normal(size=(8, 4)) * 1e6
        loss, ga, gb = info_nce(a, b, normalize=True)
        assert np.isfinite(loss)
        assert np.isfinite(ga).all() and np.isfinite(gb).all()

    def test_mi_estimate_higher_for_dependent_batches(self):
        a = RNG.normal(size=(32, 8))
        dependent = info_nce_mi_estimate(a, a + 0.01 * RNG.normal(size=a.shape))
        independent = info_nce_mi_estimate(a, RNG.normal(size=a.shape))
        assert dependent > independent

    def test_mi_estimate_bounded_by_log_batch(self):
        a = RNG.normal(size=(16, 4))
        est = info_nce_mi_estimate(a, a.copy())
        assert est <= np.log(16) + 1e-9
