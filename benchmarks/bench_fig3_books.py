"""Figure 3: NDCG@k versus k on Books, all four scenarios."""

from repro.data.splits import Scenario
from repro.experiments import run_ndcg_curves

METHODS = ("NeuMF", "MeLU", "CoNN", "TDAR", "MetaDPA")


def test_fig3_books_curves(benchmark, dataset):
    result = benchmark.pedantic(
        run_ndcg_curves,
        args=(dataset, "Books"),
        kwargs=dict(methods=METHODS, ks=(5, 10, 15, 20, 25, 30), seeds=(0,), profile="fast"),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())
    for scenario in Scenario:
        for method in METHODS:
            curve = result.curve(scenario, method)
            # NDCG@k is non-decreasing in k for every method and scenario.
            assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:])), (
                scenario,
                method,
            )
    benchmark.extra_info["metadpa_cui_ndcg30"] = round(
        result.curve(Scenario.C_UI, "MetaDPA")[-1], 4
    )
