"""Sharded serving under a Zipfian open-loop load.

Drives :class:`~repro.serve.ShardedService` with a heavy-tailed user stream
— a hot head whose adaptations stay in each shard's LRU, a long tail whose
cold fine-tuning is coalesced into per-flush ``adapt_users`` calls — and
reports sustained QPS plus p50/p99 latency per worker count into the
standard ``BENCH_*.json`` format.

Environment knobs (all optional):

- ``BENCH_LOAD_WORKERS``: comma-separated worker counts (default ``1,2``).
- ``BENCH_LOAD_REQUESTS``: stream length per trial (default ``160``).
- ``BENCH_LOAD_RATE``: offered arrivals/s (default ``1500`` — well past
  one worker's capacity at smoke scale, so sustained QPS measures service
  capacity rather than the generator's clock).
- ``BENCH_LOAD_ALPHA``: Zipf skew (default ``1.1``).
- ``BENCH_LOAD_SCALE_FLOOR``: minimum allowed ``QPS(max workers) /
  QPS(min workers)`` ratio.  Defaults to ``0.0`` (report-only) because
  scaling needs real cores; the CI smoke job sets it.
- ``BENCH_LOAD_2W_FLOOR``: minimum allowed ``QPS(2 workers) / QPS(1
  worker)`` when both counts run.  Default ``0.0``; CI sets ``1.0`` as the
  sanity bar that a second worker never costs throughput.
"""

from __future__ import annotations

import os

import pytest

from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.obs import Histogram
from repro.registry import build_method
from repro.serve import ShardedService, run_open_loop, zipfian_users


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="module")
def load_artifact(dataset, tmp_path_factory):
    """A saved tiny MetaDPA artifact plus the cold-user task pool."""
    experiment = prepare_experiment(dataset, "Books", seed=0)
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 4, "meta_epochs": 1},
        seed=0,
    )
    method.fit(experiment.ctx)
    path = method.save(tmp_path_factory.mktemp("artifact") / "metadpa.npz")
    tasks = list(experiment.task_sets[Scenario.C_U])
    return str(path), tasks


def _run_trial(path: str, tasks, n_workers: int) -> dict:
    n_requests = _env_int("BENCH_LOAD_REQUESTS", 160)
    rate = _env_float("BENCH_LOAD_RATE", 1500.0)
    alpha = _env_float("BENCH_LOAD_ALPHA", 1.1)
    # A cache smaller than the pool keeps the tail cold for the whole run:
    # head users stay resident, tail users evict each other and re-adapt.
    cache_size = max(4, len(tasks) // 4)
    users = zipfian_users(
        [t.user_row for t in tasks], n_requests, alpha=alpha, seed=11
    )
    with ShardedService(
        path, n_workers=n_workers, cache_size=cache_size, max_wait_ms=2.0
    ) as service:
        assert service.wait_ready(timeout=120.0)
        for task in tasks:
            service.register_user_history(task)
        # One warmup request per shard takes first-touch page faults and
        # lazy model builds out of the measured stream.
        for shard in range(n_workers):
            service.recommend(int(users[shard % len(users)]), k=10)
            service.invalidate_user(int(users[shard % len(users)]))
        report = run_open_loop(service.submit, users, rate=rate)
        stats = service.stats()
    summary = report.to_dict()
    summary["n_workers"] = n_workers
    summary["restarts"] = stats["restarts"]
    return summary


def test_loadgen_and_service_percentiles_agree(load_artifact):
    """Generator-side and service-side latency percentiles cross-check.

    Both sides measure submit-to-completion — the load generator from raw
    per-request timestamps, the front-end by observing each round-trip into
    its ``serve.request.seconds`` histogram.  Because both use the same
    fixed log-bucket layout, each reported percentile is within one bucket
    ratio (``BUCKET_RATIO`` ≈ 1.585x) of the true quantile, so the two
    estimates can disagree by at most one bucket index — the documented
    bucket-resolution error bound.  A larger gap means one side is
    measuring a different interval (e.g. dropping queue wait).
    """
    path, tasks = load_artifact
    users = zipfian_users(
        [t.user_row for t in tasks], 96, alpha=1.1, seed=13
    )
    with ShardedService(
        path, n_workers=2, cache_size=64, max_wait_ms=2.0
    ) as service:
        assert service.wait_ready(timeout=120.0)
        for task in tasks:
            service.register_user_history(task)
        # Warm up, then reset the front-end registry so the service-side
        # histogram covers exactly the measured open-loop stream.
        for warm in range(2):
            service.recommend(int(users[warm]), k=10)
        service.metrics.clear()
        report = run_open_loop(service.submit, users, rate=800.0)
        snap = service.stats()["metrics"]
    service_hist = Histogram.from_snapshot(
        snap["histograms"]["serve.request.seconds"]
    )
    assert service_hist.count == report.n_requests
    load_hist = report.latency_histogram()
    for q in (50, 99):
        gap = abs(
            service_hist.percentile_bucket(q) - load_hist.percentile_bucket(q)
        )
        assert gap <= 1, (
            f"p{q} disagrees by {gap} buckets: "
            f"loadgen={load_hist.percentile(q) * 1e3:.2f}ms "
            f"service={service_hist.percentile(q) * 1e3:.2f}ms"
        )


def test_sharded_load_scaling(benchmark, load_artifact):
    path, tasks = load_artifact
    worker_counts = [
        int(w) for w in os.environ.get("BENCH_LOAD_WORKERS", "1,2").split(",")
    ]
    trials = {w: _run_trial(path, tasks, w) for w in worker_counts}
    for w, trial in trials.items():
        print(
            f"\nworkers={w}: qps={trial['qps']:.0f} "
            f"p50={trial['p50_ms']:.1f}ms p99={trial['p99_ms']:.1f}ms "
            f"(restarts={trial['restarts']})"
        )
        benchmark.extra_info[f"workers_{w}"] = {
            k: round(v, 3) if isinstance(v, float) else v
            for k, v in trial.items()
        }

    # The timed payload: one short re-run at the highest worker count.
    top = max(worker_counts)
    benchmark.pedantic(
        lambda: _run_trial(path, tasks, top), rounds=1, iterations=1
    )

    base = trials[min(worker_counts)]["qps"]
    peak = trials[top]["qps"]
    scale = peak / max(base, 1e-9)
    benchmark.extra_info["qps_scale"] = round(scale, 3)
    floor = _env_float("BENCH_LOAD_SCALE_FLOOR", 0.0)
    assert scale >= floor, (
        f"QPS scaled {scale:.2f}x from {min(worker_counts)} to {top} workers, "
        f"below the {floor:.2f}x floor"
    )
    if 1 in trials and 2 in trials:
        pair = trials[2]["qps"] / max(trials[1]["qps"], 1e-9)
        benchmark.extra_info["qps_scale_2w"] = round(pair, 3)
        pair_floor = _env_float("BENCH_LOAD_2W_FLOOR", 0.0)
        assert pair >= pair_floor, (
            f"2-worker QPS is {pair:.2f}x the 1-worker QPS, "
            f"below the {pair_floor:.2f}x floor"
        )
