"""Table III: the overall comparison of all eight methods on both targets.

Runs through the :mod:`repro.runner` grid engine (one prepared bundle per
(target, seed), every cell persisted to a RunStore) and folds the stored
cells back into the classic :class:`Table3Result`.

Expected shape (paper → here): MetaDPA has the best NDCG@10 in most
(target, scenario) cells; NeuMF sits near chance AUC on the cold scenarios.
"""

import numpy as np

from repro.data.splits import Scenario
from repro.experiments.registry import TABLE3_METHODS
from repro.runner import DatasetSpec, GridSpec, run_grid, table3_from_store


def _make_spec() -> GridSpec:
    return GridSpec(
        methods=list(TABLE3_METHODS),
        targets=["Books", "CDs"],
        scenarios=list(Scenario),
        seeds=[0],
        profile="fast",
        dataset=DatasetSpec(user_base=160, item_base=110, seed=0),
    )


def test_table3(benchmark, dataset, tmp_path):
    spec = _make_spec()
    run_dir = tmp_path / "table3-grid"

    def run_and_aggregate():
        report = run_grid(spec, run_dir, workers=1, dataset=dataset)
        assert report.ok, report.failures
        return table3_from_store(run_dir)

    result = benchmark.pedantic(run_and_aggregate, rounds=1, iterations=1)
    print("\n" + result.format_table())

    # Relaunching the same spec resumes entirely from the store.
    resumed = run_grid(spec, run_dir, workers=1, dataset=dataset)
    assert resumed.n_computed == 0
    assert resumed.n_skipped == len(spec.expand())

    # Who-wins shape: MetaDPA leads NDCG in at least a third of the cells
    # even at the reduced "fast" budget (the full profile is stronger).
    cells = [(t, sc) for t in ("Books", "CDs") for sc in Scenario]
    wins = sum(result.winner(t, sc) == "MetaDPA" for t, sc in cells)
    benchmark.extra_info["metadpa_ndcg_wins"] = wins
    benchmark.extra_info["metadpa_mean_ndcg"] = round(
        float(
            np.mean([result.mean(t, sc, "MetaDPA", "ndcg") for t, sc in cells])
        ),
        4,
    )
    assert wins >= 1

    # MetaDPA beats the meta-learning baseline on average (the headline
    # anti-meta-overfitting claim).
    metadpa = np.mean([result.mean(t, sc, "MetaDPA", "ndcg") for t, sc in cells])
    melu = np.mean([result.mean(t, sc, "MeLU", "ndcg") for t, sc in cells])
    benchmark.extra_info["melu_mean_ndcg"] = round(float(melu), 4)
    assert metadpa > 0.5 * melu  # sanity floor at the fast budget
