"""Table III: the overall comparison of all eight methods on both targets.

Expected shape (paper → here): MetaDPA has the best NDCG@10 in most
(target, scenario) cells; NeuMF sits near chance AUC on the cold scenarios.
"""

import numpy as np

from repro.data.splits import Scenario
from repro.experiments import run_table3
from repro.experiments.registry import TABLE3_METHODS


def test_table3(benchmark, dataset):
    result = benchmark.pedantic(
        run_table3,
        args=(dataset,),
        kwargs=dict(
            targets=("Books", "CDs"),
            methods=TABLE3_METHODS,
            seeds=(0,),
            profile="fast",
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())

    # Who-wins shape: MetaDPA leads NDCG in at least a third of the cells
    # even at the reduced "fast" budget (the full profile is stronger).
    cells = [(t, sc) for t in ("Books", "CDs") for sc in Scenario]
    wins = sum(result.winner(t, sc) == "MetaDPA" for t, sc in cells)
    benchmark.extra_info["metadpa_ndcg_wins"] = wins
    benchmark.extra_info["metadpa_mean_ndcg"] = round(
        float(
            np.mean([result.mean(t, sc, "MetaDPA", "ndcg") for t, sc in cells])
        ),
        4,
    )
    assert wins >= 1

    # MetaDPA beats the meta-learning baseline on average (the headline
    # anti-meta-overfitting claim).
    metadpa = np.mean([result.mean(t, sc, "MetaDPA", "ndcg") for t, sc in cells])
    melu = np.mean([result.mean(t, sc, "MeLU", "ndcg") for t, sc in cells])
    benchmark.extra_info["melu_mean_ndcg"] = round(float(melu), 4)
    assert metadpa > 0.5 * melu  # sanity floor at the fast budget
