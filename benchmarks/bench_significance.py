"""Section V-D: Wilcoxon signed-rank significance over repeated splits."""

from repro.experiments import run_significance


def test_significance_metadpa_vs_baselines(benchmark, dataset):
    report = benchmark.pedantic(
        run_significance,
        args=(dataset,),
        kwargs=dict(
            target="CDs",
            methods=("MeLU", "CoNN", "MetaDPA"),
            seeds=(0, 1, 2, 3, 4),
            profile="fast",
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.format_table())
    n_sig = sum(res.significant for _, res in report.results.values())
    n_positive = sum(
        res.median_difference > 0 for _, res in report.results.values()
    )
    benchmark.extra_info["significant_cells"] = n_sig
    benchmark.extra_info["positive_median_cells"] = n_positive
    assert len(report.results) == 16  # 4 scenarios x 4 metrics
