"""Figure 7: sensitivity of MetaDPA to the MDI weight β1 on CDs."""

from repro.experiments import run_hyperparam_sweep


def test_fig7_beta1_sweep(benchmark, dataset):
    result = benchmark.pedantic(
        run_hyperparam_sweep,
        args=(dataset, "beta1"),
        kwargs=dict(target="CDs", grid=(1e-2, 1e-1, 1.0, 1e1), seeds=(0,), profile="fast"),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())
    for scenario, curve in result.curves.items():
        assert all(v >= 0.0 for v in curve)
        benchmark.extra_info[f"spread_{scenario.name}"] = round(
            result.sensitivity_range(scenario), 4
        )
