"""Fused multi-domain CVAE training vs the sequential per-domain loop.

MetaDPA's block 1 trains one Dual-CVAE per source domain; the fused trainer
stacks the k models on a leading domain axis and runs every branch of every
domain in one numpy pass per step (`repro.cvae.trainer
.MultiDomainCVAETrainer`), with per-domain Adam state and clipping on the
same stacked axis.  This benchmark measures that fusion against the
``fuse_domains=False`` reference loop at k ∈ {2, 3}, asserts the >=3x
acceptance bar at k=3, and double-checks the numerics (both paths must
produce matching generated matrices — the speedup must not change the math).

Results land in ``BENCH_*.json`` via the shared conftest harness.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cvae.augment import DiversePreferenceAugmenter
from repro.cvae.cache import AugmentationCache
from repro.cvae.trainer import MultiDomainCVAETrainer, TrainerConfig
from repro.data.generator import (
    DomainSpec,
    GeneratorConfig,
    SyntheticMultiDomainGenerator,
)
from repro.utils.timing import Timer

# Simulator-scale domains (tens of items, ~1e2 users): the regime every
# repo experiment runs in, and the one the paper's 300-epoch size-32
# minibatch loop spends its wall clock in.
N_USERS = 110
N_ITEMS = 25
VOCAB = 40
EPOCHS = 50
#: evaluation is monitoring, not training — keep a couple of eval points so
#: both paths pay it, without letting it dominate the measured loop.
EVAL_EVERY = 10
ROUNDS = 3
# >=3x locally at k=3; CI sets BENCH_SPEEDUP_FLOOR lower because shared
# runners' timing noise can halve micro-benchmark ratios.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SPEEDUP_FLOOR", 3.0))


def _dataset(k: int):
    generator = SyntheticMultiDomainGenerator(
        GeneratorConfig(latent_dim=4, vocab_size=VOCAB, n_topics=5, review_length=10),
        seed=7,
    )
    return generator.generate(
        sources=[
            DomainSpec(
                name=f"Src{i}",
                n_users=N_USERS,
                n_items=N_ITEMS + 5 * i,
                shared_user_frac=0.6,
            )
            for i in range(k)
        ],
        targets=[
            DomainSpec(
                name="Tgt", n_users=N_USERS, n_items=N_ITEMS,
                is_target=True, cold_user_frac=0.3,
            )
        ],
    )


def _augmenter(dataset, fuse: bool) -> DiversePreferenceAugmenter:
    return DiversePreferenceAugmenter(
        dataset,
        "Tgt",
        trainer_config=TrainerConfig(epochs=EPOCHS, eval_every=EVAL_EVERY),
        seed=0,
        fuse_domains=fuse,
    )


def _best_fit_times(dataset, rounds: int = ROUNDS) -> tuple[float, float]:
    """Best-of-N training wall times (sequential, fused).

    Best-of-n because single-core shared runners inject multiplicative
    noise; the minimum is the cleanest estimate of the true cost.  Fresh
    trainers every round — training mutates the models.
    """
    best_seq = best_fused = float("inf")
    for _ in range(rounds):
        trainers = _augmenter(dataset, fuse=False)._build_trainers()
        with Timer() as t_seq:
            for trainer in trainers:
                trainer.train()
        best_seq = min(best_seq, t_seq.elapsed)

        trainers = _augmenter(dataset, fuse=True)._build_trainers()
        with Timer() as t_fused:
            MultiDomainCVAETrainer(trainers).train()
        best_fused = min(best_fused, t_fused.elapsed)
    return best_seq, best_fused


def _record(benchmark, k, seq, fused):
    speedup = seq / max(fused, 1e-9)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["epochs"] = EPOCHS
    benchmark.extra_info["sequential_seconds"] = round(seq, 4)
    benchmark.extra_info["fused_seconds"] = round(fused, 4)
    benchmark.extra_info["fused_speedup"] = round(speedup, 2)
    print(
        f"\nk={k} Dual-CVAE fit over {EPOCHS} epochs: "
        f"sequential {seq:.3f}s, fused {fused:.3f}s ({speedup:.2f}x)"
    )
    return speedup


def test_fused_training_speedup_k2(benchmark):
    dataset = _dataset(2)
    seq, fused = _best_fit_times(dataset)
    benchmark.pedantic(
        lambda: MultiDomainCVAETrainer(
            _augmenter(dataset, fuse=True)._build_trainers()
        ).train(),
        rounds=2,
        iterations=1,
    )
    speedup = _record(benchmark, 2, seq, fused)
    # k=2 fuses less work per pass; it must still clearly win.
    assert speedup >= min(SPEEDUP_FLOOR, 1.5)


def test_fused_training_speedup_k3(benchmark):
    dataset = _dataset(3)
    seq, fused = _best_fit_times(dataset)

    # The speedup must be a pure re-batching: both paths produce matching
    # augmented matrices (fresh augmenters; the timed ones were consumed).
    out_seq = _augmenter(dataset, fuse=False).fit_generate()
    out_fused = _augmenter(dataset, fuse=True).fit_generate()
    max_diff = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(out_seq.matrices, out_fused.matrices)
    )
    assert max_diff < 5e-3, f"fused and sequential matrices diverged ({max_diff})"

    benchmark.pedantic(
        lambda: MultiDomainCVAETrainer(
            _augmenter(dataset, fuse=True)._build_trainers()
        ).train(),
        rounds=2,
        iterations=1,
    )
    speedup = _record(benchmark, 3, seq, fused)
    benchmark.extra_info["max_matrix_diff"] = max_diff
    assert speedup >= SPEEDUP_FLOOR


def test_augmentation_cache_hit_speedup(benchmark, tmp_path):
    """A warm cache turns the whole k-CVAE fit into one npz read."""
    dataset = _dataset(3)
    cache = AugmentationCache(tmp_path / "aug")

    def run():
        augmenter = _augmenter(dataset, fuse=True)
        augmenter.cache = cache
        augmenter._cache_token = "bench"
        return augmenter.fit_generate()

    with Timer() as t_miss:
        run()  # cold: trains k CVAEs, writes the entry
    with Timer() as t_hit:
        out = run()  # warm: disk read only
    benchmark.pedantic(run, rounds=3, iterations=1)

    speedup = t_miss.elapsed / max(t_hit.elapsed, 1e-9)
    benchmark.extra_info["miss_seconds"] = round(t_miss.elapsed, 4)
    benchmark.extra_info["hit_seconds"] = round(t_hit.elapsed, 4)
    benchmark.extra_info["cache_hit_speedup"] = round(speedup, 1)
    print(
        f"\naugmentation cache: miss {t_miss.elapsed:.3f}s, "
        f"hit {t_hit.elapsed:.4f}s ({speedup:.0f}x)"
    )
    assert out.k == 3
    assert speedup >= 5.0
