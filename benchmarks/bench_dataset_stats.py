"""Tables I–II: dataset statistics of the generated benchmark."""

from repro.data.statistics import domain_statistics
from repro.experiments import run_dataset_statistics


def test_tables_1_and_2(benchmark, dataset):
    text = benchmark.pedantic(
        run_dataset_statistics, args=(dataset,), rounds=1, iterations=1
    )
    print("\n" + text)
    books = domain_statistics(dataset.targets["Books"])
    benchmark.extra_info["books_users"] = books.n_users
    benchmark.extra_info["books_sparsity"] = round(books.sparsity, 4)
    # Shape checks mirroring the paper's tables: Books is the largest target,
    # Music the smallest source, and every domain is sparse.
    assert books.n_users > dataset.targets["CDs"].n_users
    assert dataset.sources["Music"].n_ratings < dataset.sources["Movies"].n_ratings
    assert all(
        domain_statistics(d).sparsity > 0.5
        for d in (*dataset.sources.values(), *dataset.targets.values())
    )
