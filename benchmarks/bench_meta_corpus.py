"""Packed task corpus vs the seed's materialized meta-training data path.

After PR 3 vectorized the inner loop, the meta-training bottleneck moved to
the *data path*: the seed materialized dense float64 ``(S, C)``/``(Q, C)``
content copies per task view (``np.repeat``-tiled user rows, k+1 byte-wise
identical content copies for the k augmented views of Eqs. 9-10) and
``MAML.fit`` re-padded them into ``TaskBatch`` arrays from Python lists on
every meta-step of every epoch.  The packed
:class:`~repro.meta.corpus.TaskCorpus` stores indices once + one float32
label row per view, fancy-indexes each meta-batch into reused buffers, and
the float32 meta stack skips the content-wide input-gradient GEMMs its
predecessor paid.

The reference timed here reproduces that seed pipeline faithfully — dense
float64 items fed to ``MAML.fit``'s materialized path, with the discarded
embedding input-gradient GEMMs restored (:class:`SeedReferenceModel`) —
so the measured ratio is the end-to-end meta-training speedup of the
packed redesign, not a comparison against an already-optimized reference.

Geometry mirrors the repo bench scale (``BenchmarkScale(160, 110)``,
target Books): content dim 300, ~112 warm tasks with 15-39 support/query
rows, k=3 augmented views.  Asserted at bench scale:

- **throughput**: packed ``MAML.fit`` >= 3x the seed reference
  (best-of-N minima, per the repo's single-core-VM convention);
- **memory**: the packed corpus holds >= 5x fewer bytes than the dense
  task layout at k=3 (in practice it is orders of magnitude).
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.tasks import PreferenceTask
from repro.meta.corpus import TaskCorpusBuilder, pack_content
from repro.meta.maml import MAML, MAMLConfig, TaskBatchItem
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.nn.losses import binary_cross_entropy, binary_cross_entropy_tasks
from repro.utils.timing import Timer

# The repo bench scale's warm-task geometry for target Books.
N_TASKS = 112
N_USERS = 160
N_ITEMS = 110
CONTENT_DIM = 300
K_AUG = 3
EPOCHS = 2
# >=3x locally; CI sets BENCH_SPEEDUP_FLOOR lower for shared-runner noise.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SPEEDUP_FLOOR", 3.0))
MEMORY_FLOOR = 5.0


class SeedReferenceModel(PreferenceModel):
    """The preference model as the seed computed it.

    Identical math, but the embedding branches' input gradients — dead
    values over content-wide arrays — are computed instead of skipped,
    exactly like the pre-corpus backward pass.  Used only to time the
    reference pipeline.
    """

    def backward(self, params, cache, d_preds):
        cache_u, cache_i, cache_m, user_broadcast = cache
        d_out = d_preds[..., None]
        d_joint, grads_m = self.mlp.backward(self._sub(params, "mlp"), cache_m, d_out)
        e = self.config.embed_dim
        d_xu = d_joint[..., :e]
        if user_broadcast:
            d_xu = d_xu.sum(axis=-2, keepdims=True)
        _, grads_u = self.user_embed.backward(
            self._sub(params, "user_embed"), cache_u, d_xu
        )
        _, grads_i = self.item_embed.backward(
            self._sub(params, "item_embed"), cache_i, d_joint[..., e:]
        )
        grads = {}
        for prefix, sub in (("user_embed", grads_u), ("item_embed", grads_i), ("mlp", grads_m)):
            for name, value in sub.items():
                grads[f"{prefix}.{name}"] = value
        return grads

    def decision_loss_and_grads(self, params, joint, labels, mask=None):
        out, cache_m = self.mlp.forward(self._sub(params, "mlp"), joint)
        preds = out[..., 0]
        if preds.ndim == 1 and mask is None:
            loss, d_preds = binary_cross_entropy(preds, labels)
        else:
            loss, d_preds = binary_cross_entropy_tasks(preds, labels, mask=mask)
        _, grads_m = self.mlp.backward(
            self._sub(params, "mlp"), cache_m, d_preds[..., None]
        )
        return loss, {f"mlp.{name}": value for name, value in grads_m.items()}


def _model(dtype=np.float32, cls=PreferenceModel) -> PreferenceModel:
    return cls(
        PreferenceModelConfig(
            content_dim=CONTENT_DIM, embed_dim=32, hidden_dims=(64, 32), dtype=dtype
        )
    )


def _seed_materialize(user_content, item_content, task) -> TaskBatchItem:
    """Dense float64 task arrays exactly as the seed built them."""
    cu = user_content[task.user_row]
    return TaskBatchItem(
        support_user=np.repeat(cu[None, :], task.support_items.size, axis=0),
        support_item=item_content[task.support_items],
        support_labels=np.asarray(task.support_labels, dtype=np.float64),
        query_user=np.repeat(cu[None, :], task.query_items.size, axis=0),
        query_item=item_content[task.query_items],
        query_labels=np.asarray(task.query_labels, dtype=np.float64),
    )


def _build(seed: int = 0):
    """The same task set twice: packed corpus and seed-style dense items."""
    rng = np.random.default_rng(seed)
    user_content = rng.random((N_USERS, CONTENT_DIM))
    item_content = rng.random((N_ITEMS, CONTENT_DIM))
    builder = TaskCorpusBuilder(pack_content(user_content, item_content))
    dense_items: list[TaskBatchItem] = []
    for _ in range(N_TASKS):
        n_s = int(rng.integers(15, 40))
        n_q = int(rng.integers(15, 40))
        task = PreferenceTask(
            user_row=int(rng.integers(0, N_USERS)),
            support_items=rng.choice(N_ITEMS, size=n_s, replace=False).astype(int),
            support_labels=(rng.random(n_s) < 0.5).astype(float),
            query_items=rng.choice(N_ITEMS, size=n_q, replace=False).astype(int),
            query_labels=(rng.random(n_q) < 0.5).astype(float),
        )
        base = builder.add_task(task)
        views = [task]
        for _ in range(K_AUG):
            vector = rng.random(N_ITEMS)
            builder.add_rating_view(base, vector)
            views.append(task.with_labels(vector))
        dense_items.extend(
            _seed_materialize(user_content, item_content, view) for view in views
        )
    return builder.build(), dense_items


def test_packed_fit_speedup_and_memory(benchmark):
    """``MAML.fit``: packed corpus vs the seed's dense-float64 pipeline."""
    corpus, dense_items = _build()
    packed = MAML(_model(), MAMLConfig(packed=True), seed=0)
    seed_ref = MAML(
        _model(dtype=np.float64, cls=SeedReferenceModel),
        MAMLConfig(packed=False),
        seed=0,
    )
    packed.fit(corpus, epochs=1)  # warm both paths (scratch, caches)
    seed_ref.fit(dense_items, epochs=1)

    rounds = 3
    t_ref = []
    t_packed = []
    for _ in range(rounds):
        with Timer() as t:
            seed_ref.fit(dense_items, epochs=EPOCHS)
        t_ref.append(t.elapsed)
        with Timer() as t:
            packed.fit(corpus, epochs=EPOCHS)
        t_packed.append(t.elapsed)

    benchmark.pedantic(lambda: packed.fit(corpus, epochs=1), rounds=3, iterations=1)

    # Best-of-N minima: single-core VM timing is noisy upward, never down.
    speedup = min(t_ref) / max(min(t_packed), 1e-9)
    corpus_bytes = corpus.nbytes
    dense_bytes = sum(
        arr.nbytes
        for item in dense_items
        for arr in (
            item.support_user,
            item.support_item,
            item.support_labels,
            item.query_user,
            item.query_item,
            item.query_labels,
        )
    )
    memory_ratio = dense_bytes / corpus_bytes
    views_per_second = corpus.n_views * EPOCHS / max(min(t_packed), 1e-9)

    benchmark.extra_info["n_views"] = corpus.n_views
    benchmark.extra_info["k_augmented"] = K_AUG
    benchmark.extra_info["materialized_seconds"] = round(min(t_ref), 5)
    benchmark.extra_info["packed_seconds"] = round(min(t_packed), 5)
    benchmark.extra_info["fit_speedup"] = round(speedup, 2)
    benchmark.extra_info["views_per_second"] = round(views_per_second, 1)
    benchmark.extra_info["corpus_bytes"] = int(corpus_bytes)
    benchmark.extra_info["materialized_bytes"] = int(dense_bytes)
    benchmark.extra_info["memory_ratio"] = round(memory_ratio, 1)
    print(
        f"\nMAML.fit over {corpus.n_views} views x {EPOCHS} epochs: "
        f"seed reference {min(t_ref):.4f}s, packed {min(t_packed):.4f}s "
        f"({speedup:.1f}x); corpus {corpus_bytes / 1024:.0f} KiB vs "
        f"dense {dense_bytes / 1024 / 1024:.1f} MiB ({memory_ratio:.0f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR
    assert memory_ratio >= MEMORY_FLOOR


def test_packed_adapt_corpus_speedup(benchmark):
    """Serving-side packed adaptation vs the seed's dense ``adapt_many``."""
    corpus, dense_items = _build(seed=1)
    packed = MAML(_model(), MAMLConfig(), seed=0)
    seed_ref = MAML(
        _model(dtype=np.float64, cls=SeedReferenceModel),
        MAMLConfig(packed=False),
        seed=0,
    )
    steps = 5
    packed.adapt_corpus(corpus, steps=steps)  # warm up
    seed_ref.adapt_many(dense_items, steps=steps)

    rounds = 3
    t_ref = []
    t_packed = []
    for _ in range(rounds):
        with Timer() as t:
            seed_ref.adapt_many(dense_items, steps=steps)
        t_ref.append(t.elapsed)
        with Timer() as t:
            packed.adapt_corpus(corpus, steps=steps)
        t_packed.append(t.elapsed)

    benchmark.pedantic(
        lambda: packed.adapt_corpus(corpus, steps=steps), rounds=3, iterations=1
    )
    speedup = min(t_ref) / max(min(t_packed), 1e-9)
    benchmark.extra_info["n_views"] = corpus.n_views
    benchmark.extra_info["adapt_speedup"] = round(speedup, 2)
    benchmark.extra_info["views_per_second"] = round(
        corpus.n_views / max(min(t_packed), 1e-9), 1
    )
    print(
        f"\nadapt over {corpus.n_views} views: seed reference {min(t_ref):.4f}s, "
        f"packed {min(t_packed):.4f}s ({speedup:.1f}x)"
    )
    # adapt_many already pre-materialized its items once (no per-step
    # rebuild), so the packed win here is content copies + float32 math.
    assert speedup >= min(SPEEDUP_FLOOR, 2.0)
