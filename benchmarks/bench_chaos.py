"""Availability under seeded chaos: kill a worker mid-burst, keep answering.

Replays the resilience acceptance scenario as a tracked benchmark: a
Zipfian open-loop burst drives :class:`~repro.serve.ShardedService` while
a deterministic :class:`~repro.serve.FaultPlan` crashes shard 0 partway
through (``incarnation=0`` — the replacement process is left alone, so
the plan expresses "kill once").  The resilience layer — deadlines,
retries, circuit breakers, and the degraded popularity fallback — must
keep end-to-end availability at or above the floor, and the whole run is
replayable: same plan seed, same stream, same restart count.

Reported per trial (``extra_info`` and the ``BENCH_chaos`` payload):
sustained QPS and latency percentiles from the load generator, plus
availability, the ok/degraded/error split, restarts, and the front-end
resilience counters (sheds, deadline hits, breaker state changes).

Environment knobs (all optional):

- ``BENCH_CHAOS_REQUESTS``: burst length (default ``160``).
- ``BENCH_CHAOS_WORKERS``: worker count (default ``2``).
- ``BENCH_CHAOS_RATE``: offered arrivals/s (default ``600``).
- ``BENCH_CHAOS_ALPHA``: Zipf skew (default ``1.1``).
- ``BENCH_CHAOS_SEED``: fault-plan seed (default ``7``).
- ``BENCH_CHAOS_CRASH_AT``: 1-based batch RPC that kills shard 0
  (default ``3`` — early in the burst, so most of the stream runs with
  one shard down or restarting).
- ``BENCH_CHAOS_DEADLINE``: per-request deadline seconds (default ``15``).
- ``BENCH_CHAOS_AVAILABILITY_FLOOR``: minimum fraction of offered
  requests that must resolve with a full-length answer (ok *or*
  degraded) by their deadline.  Default ``0.99`` — the acceptance bar
  from the resilience work; set to ``0`` to report only.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future

import pytest

from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.registry import build_method
from repro.serve import (
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    ShardedService,
    run_open_loop,
    zipfian_users,
)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="module")
def chaos_artifact(dataset, tmp_path_factory):
    """A saved tiny MetaDPA artifact plus the cold-user task pool."""
    experiment = prepare_experiment(dataset, "Books", seed=0)
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 4, "meta_epochs": 1},
        seed=0,
    )
    method.fit(experiment.ctx)
    path = method.save(tmp_path_factory.mktemp("artifact") / "metadpa.npz")
    tasks = list(experiment.task_sets[Scenario.C_U])
    return str(path), tasks


def _settled_counters(service: ShardedService, n_requests: int) -> dict:
    """Outcome counters are bumped *after* each future resolves — poll."""
    deadline = time.monotonic() + 10.0
    while True:
        counters = service.stats()["metrics"].get("counters", {})
        settled = sum(
            counters.get(f"serve.responses.{outcome}", 0)
            for outcome in ("ok", "degraded", "error")
        )
        if settled >= n_requests or time.monotonic() >= deadline:
            return counters
        time.sleep(0.01)


def _run_trial(path: str, tasks) -> dict:
    n_requests = _env_int("BENCH_CHAOS_REQUESTS", 160)
    n_workers = _env_int("BENCH_CHAOS_WORKERS", 2)
    rate = _env_float("BENCH_CHAOS_RATE", 600.0)
    alpha = _env_float("BENCH_CHAOS_ALPHA", 1.1)
    plan = FaultPlan(
        faults=(
            FaultSpec(
                kind="crash",
                shard=0,
                at=_env_int("BENCH_CHAOS_CRASH_AT", 3),
                incarnation=0,
            ),
        ),
        seed=_env_int("BENCH_CHAOS_SEED", 7),
    )
    cfg = ResilienceConfig(
        deadline=_env_float("BENCH_CHAOS_DEADLINE", 15.0),
        retry_limit=2,
        failure_threshold=100,
        fallback=True,
    )
    users = zipfian_users(
        [t.user_row for t in tasks], n_requests, alpha=alpha, seed=11
    )
    futures: list[Future] = []
    with ShardedService(
        path,
        n_workers=n_workers,
        max_batch=4,
        max_wait_ms=1.0,
        heartbeat_interval=0.1,
        resilience=cfg,
        fault_plan=plan,
    ) as service:
        assert service.wait_ready(timeout=120.0)
        for task in tasks:
            service.register_user_history(task)

        def submit(user_row: int) -> Future:
            future = service.submit(user_row, k=10)
            futures.append(future)
            return future

        report = run_open_loop(submit, users, rate=rate)
        ok = degraded = errors = 0
        for future in futures:
            try:
                result = future.result(timeout=cfg.deadline)
            except Exception:
                errors += 1
                continue
            if len(result) != 10:
                errors += 1
            elif result.degraded:
                degraded += 1
            else:
                ok += 1
        counters = _settled_counters(service, n_requests)
        stats = service.stats()

    summary = report.to_dict()
    summary.update(
        availability=(ok + degraded) / max(n_requests, 1),
        ok=ok,
        degraded=degraded,
        errors=errors,
        restarts=stats["restarts"],
        shed=counters.get("serve.shed", 0),
        deadline_exceeded=counters.get("serve.deadline_exceeded", 0),
        breaker_opened=counters.get("serve.breaker.opened", 0),
        fault_seed=plan.seed,
    )
    return summary


def test_availability_with_seeded_worker_kill(benchmark, chaos_artifact):
    path, tasks = chaos_artifact
    trial = _run_trial(path, tasks)
    print(
        f"\nchaos: availability={trial['availability']:.4f} "
        f"qps={trial['qps']:.0f} p99={trial['p99_ms']:.1f}ms "
        f"ok={trial['ok']} degraded={trial['degraded']} "
        f"errors={trial['errors']} restarts={trial['restarts']}"
    )
    benchmark.extra_info["chaos"] = {
        k: round(v, 4) if isinstance(v, float) else v for k, v in trial.items()
    }

    # The timed payload: one replay of the same seeded schedule.  Identical
    # plan + stream must survive the same crash, so the replay also checks
    # that the chaos run is deterministic enough to benchmark at all.
    replay = {}
    benchmark.pedantic(
        lambda: replay.update(_run_trial(path, tasks)), rounds=1, iterations=1
    )
    assert replay["restarts"] == trial["restarts"], (
        "seeded chaos replay diverged: "
        f"{replay['restarts']} restarts vs {trial['restarts']}"
    )
    benchmark.extra_info["replay_availability"] = round(
        replay["availability"], 4
    )

    floor = _env_float("BENCH_CHAOS_AVAILABILITY_FLOOR", 0.99)
    for label, run in (("first run", trial), ("replay", replay)):
        assert run["availability"] >= floor, (
            f"{label}: availability {run['availability']:.4f} under the "
            f"{floor:.2f} floor ({run['errors']} errors out of "
            f"{run['n_requests']} offered)"
        )
        assert run["restarts"] >= 1, f"{label}: the injected crash never fired"
