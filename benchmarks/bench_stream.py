"""Sharded serving under a mixed Zipfian read/write stream.

``bench_load`` measures pure read throughput; this benchmark asks what the
streaming write path costs.  The same open-loop harness replays two
streams against an identical :class:`~repro.serve.ShardedService`:

- *read-only*: every op is a recommendation request (``write_frac=0``);
- *mixed*: a ``write_frac`` fraction of ops are ``observe`` events — each
  one appends to the owner shard's support task and invalidates that
  user's cached adaptation, so hot users (Zipfian for reads *and* writes)
  keep getting their cache entries knocked out and re-adapted.

The headline number is the mixed/read-only QPS ratio: how much sustained
throughput survives a realistic write load.

Environment knobs (all optional):

- ``BENCH_STREAM_WORKERS``: shard count (default ``2``).
- ``BENCH_STREAM_REQUESTS``: ops per trial (default ``160``).
- ``BENCH_STREAM_RATE``: offered arrivals/s (default ``1500`` — past
  capacity at smoke scale, so QPS measures the service, not the clock).
- ``BENCH_STREAM_ALPHA``: Zipf skew for users (default ``1.1``).
- ``BENCH_STREAM_WRITE_FRAC``: write fraction of the mixed trial
  (default ``0.15``).
- ``BENCH_STREAM_RATIO_FLOOR``: minimum allowed ``QPS(mixed) /
  QPS(read-only)``.  Defaults to ``0.0`` (report-only); the CI smoke job
  sets a positive floor.
"""

from __future__ import annotations

import os

import pytest

from repro.core.interface import Recommender
from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.registry import build_method
from repro.serve import ShardedService, mixed_zipfian_stream, run_mixed_open_loop


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="module")
def stream_artifact(dataset, tmp_path_factory):
    """A saved tiny MetaDPA artifact, its cold-user tasks, and item count."""
    experiment = prepare_experiment(dataset, "Books", seed=0)
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 4, "meta_epochs": 1},
        seed=0,
    )
    method.fit(experiment.ctx)
    path = method.save(tmp_path_factory.mktemp("artifact") / "metadpa.npz")
    tasks = list(experiment.task_sets[Scenario.C_U])
    n_items = Recommender.load(path, mmap_mode="r").serving.n_items
    return str(path), tasks, n_items


def _run_trial(path: str, tasks, n_items: int, write_frac: float) -> dict:
    n_ops = _env_int("BENCH_STREAM_REQUESTS", 160)
    rate = _env_float("BENCH_STREAM_RATE", 1500.0)
    alpha = _env_float("BENCH_STREAM_ALPHA", 1.1)
    n_workers = _env_int("BENCH_STREAM_WORKERS", 2)
    cache_size = max(4, len(tasks) // 4)
    ops = mixed_zipfian_stream(
        [t.user_row for t in tasks],
        range(n_items),
        n_ops,
        write_frac=write_frac,
        alpha=alpha,
        seed=11,
    )
    with ShardedService(
        path, n_workers=n_workers, cache_size=cache_size, max_wait_ms=2.0
    ) as service:
        assert service.wait_ready(timeout=120.0)
        for task in tasks:
            service.register_user_history(task)
        for shard in range(n_workers):
            service.recommend(int(tasks[shard % len(tasks)].user_row), k=10)
            service.invalidate_user(int(tasks[shard % len(tasks)].user_row))
        report = run_mixed_open_loop(service, ops, rate=rate)
        stats = service.stats()
    summary = report.to_dict()
    summary["write_frac"] = write_frac
    summary["n_writes"] = sum(1 for op in ops if op.kind == "write")
    summary["n_events"] = sum(
        shard["worker"]["stream"]["events"] for shard in stats["shards"]
    )
    return summary


def test_mixed_stream_throughput(benchmark, stream_artifact):
    path, tasks, n_items = stream_artifact
    write_frac = _env_float("BENCH_STREAM_WRITE_FRAC", 0.15)
    read_only = _run_trial(path, tasks, n_items, write_frac=0.0)
    mixed = _run_trial(path, tasks, n_items, write_frac=write_frac)
    for label, trial in (("read_only", read_only), ("mixed", mixed)):
        print(
            f"\n{label}: qps={trial['qps']:.0f} "
            f"p50={trial['p50_ms']:.1f}ms p99={trial['p99_ms']:.1f}ms "
            f"(writes={trial['n_writes']}, ingested={trial['n_events']})"
        )
        benchmark.extra_info[label] = {
            k: round(v, 3) if isinstance(v, float) else v
            for k, v in trial.items()
        }
    assert mixed["n_events"] == mixed["n_writes"] > 0

    # The timed payload: one short re-run of the mixed stream.
    benchmark.pedantic(
        lambda: _run_trial(path, tasks, n_items, write_frac=write_frac),
        rounds=1,
        iterations=1,
    )

    ratio = mixed["qps"] / max(read_only["qps"], 1e-9)
    benchmark.extra_info["qps_ratio_mixed_vs_read"] = round(ratio, 3)
    floor = _env_float("BENCH_STREAM_RATIO_FLOOR", 0.0)
    assert ratio >= floor, (
        f"mixed-stream QPS is {ratio:.2f}x the read-only QPS, "
        f"below the {floor:.2f}x floor"
    )
