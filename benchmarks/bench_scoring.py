"""Frozen-tower scoring: table-gather fast path vs the full tower forward.

Serving-time candidate scoring runs the item tower over every candidate row
on every request even though decision-only adaptation (MeLU-style) never
moves the tower weights.  The frozen-tower tables bake both tower outputs
once and turn scoring into gather + MLP head; this benchmark sweeps the
candidate-pool width (1k / 4k / 16k) and asserts the speedup floor at the
widest pool, where the skipped ``(n, content_dim) @ (content_dim, E)`` GEMM
dominates.  The fast path is exact (pinned bitwise in
``tests/test_frozen_tower.py``), so the floor is pure throughput.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.negative_sampling import EvalInstance
from repro.meta.corpus import PackedContent
from repro.meta.maml import MAML, MAMLConfig, batched_candidate_scores
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.meta.serving import (
    ITEM_TABLE_KEY,
    USER_TABLE_KEY,
    build_frozen_tower_tables,
)
from repro.utils.timing import Timer

# Catalogue geometry: content vectors are wide (bag-of-words / review
# embeddings), tower outputs narrow — the regime the precompute targets.
CONTENT_DIM = 192
EMBED_DIM = 32
N_ITEMS = 20_000
N_USERS = 256
CANDIDATE_WIDTHS = (1_000, 4_000, 16_000)
# >=1.5x at 16k candidates locally (measured ~2x at content_dim 192); the
# CI knob exists because shared-runner noise can compress timing ratios.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SCORE_SPEEDUP_FLOOR", 1.5))


def _build():
    model = PreferenceModel(
        PreferenceModelConfig(
            content_dim=CONTENT_DIM, embed_dim=EMBED_DIM, hidden_dims=(64, 32)
        )
    )
    maml = MAML(model, MAMLConfig(local_only_decision=True), seed=0)
    rng = np.random.default_rng(0)
    user_content = rng.random((N_USERS, CONTENT_DIM), dtype=np.float32)
    item_content = rng.random((N_ITEMS, CONTENT_DIM), dtype=np.float32)
    content = PackedContent(user=user_content, item=item_content)
    tables = build_frozen_tower_tables(maml, content)
    return maml, user_content, item_content, tables


def _instances(rng, n_candidates, batch=8):
    return [
        EvalInstance(
            user_row=int(rng.integers(0, N_USERS)),
            pos_item=int(cands[0]),
            neg_items=np.asarray(cands[1:]),
        )
        for cands in (
            rng.choice(N_ITEMS, size=n_candidates, replace=False)
            for _ in range(batch)
        )
    ]


def test_frozen_tower_scoring_speedup(benchmark):
    """Batched candidate scoring with tables vs the full tower forward."""
    maml, user_content, item_content, tables = _build()
    rng = np.random.default_rng(1)
    summary = {}
    for width in CANDIDATE_WIDTHS:
        instances = _instances(rng, width)
        states = [None] * len(instances)

        def score(t):
            return batched_candidate_scores(
                maml, user_content, item_content, states, instances, tables=t
            )

        full = score(None)  # warm both paths once before timing
        fast = score(tables)
        for f, g in zip(fast, full):
            assert np.array_equal(f, g)  # the fast path is exact

        rounds = 5
        with Timer() as t_full:
            for _ in range(rounds):
                score(None)
        with Timer() as t_fast:
            for _ in range(rounds):
                score(tables)
        speedup = t_full.elapsed / max(t_fast.elapsed, 1e-9)
        scored = len(instances) * width * rounds
        summary[width] = {
            "full_seconds": round(t_full.elapsed / rounds, 5),
            "fast_seconds": round(t_fast.elapsed / rounds, 5),
            "speedup": round(speedup, 2),
            "candidates_per_second": round(scored / max(t_fast.elapsed, 1e-9)),
        }
        print(
            f"\n{width:>6} candidates x {len(instances)} requests: "
            f"full {t_full.elapsed / rounds:.4f}s, fast {t_fast.elapsed / rounds:.4f}s "
            f"({speedup:.2f}x)"
        )

    widest = CANDIDATE_WIDTHS[-1]
    instances = _instances(rng, widest)
    states = [None] * len(instances)
    benchmark.pedantic(
        lambda: batched_candidate_scores(
            maml, user_content, item_content, states, instances, tables=tables
        ),
        rounds=5,
        iterations=1,
    )
    benchmark.extra_info["content_dim"] = CONTENT_DIM
    benchmark.extra_info["n_items"] = N_ITEMS
    for width, stats in summary.items():
        benchmark.extra_info[f"speedup_{width}"] = stats["speedup"]
    benchmark.extra_info["candidates_per_second"] = summary[widest][
        "candidates_per_second"
    ]
    assert summary[widest]["speedup"] >= SPEEDUP_FLOOR


def test_table_keys_stable():
    """The artifact member names the sharded loader greps for."""
    assert ITEM_TABLE_KEY == "item_embeddings"
    assert USER_TABLE_KEY == "user_embeddings"
