"""Figure 4: NDCG@k versus k on CDs, all four scenarios."""

from repro.data.splits import Scenario
from repro.experiments import run_ndcg_curves

METHODS = ("NeuMF", "MeLU", "CoNN", "MetaCF", "MetaDPA")


def test_fig4_cds_curves(benchmark, dataset):
    result = benchmark.pedantic(
        run_ndcg_curves,
        args=(dataset, "CDs"),
        kwargs=dict(methods=METHODS, ks=(5, 10, 15, 20, 25, 30), seeds=(0,), profile="fast"),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())
    for scenario in Scenario:
        for method in METHODS:
            curve = result.curve(scenario, method)
            assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))
    benchmark.extra_info["metadpa_warm_ndcg10"] = round(
        result.curve(Scenario.WARM, "MetaDPA")[1], 4
    )
