"""Meta-batch adaptation: vectorized stacked inner loop vs the scalar loop.

The paper's single hottest path is the MAML inner loop, run once per task in
meta-training (Eq. 1) and once per cold-start user at meta-testing.  The
stacked-parameter redesign adapts a whole meta-batch in one numpy pass; this
benchmark measures the speedup over the per-task reference loop for both
``meta_step`` (training) and ``adapt_many`` (serving-time multi-user
fine-tuning), asserting the >=3x acceptance bar and recording the numbers in
``BENCH_*.json`` via the shared harness.
"""

from __future__ import annotations

import os

import numpy as np

from repro.meta.maml import MAML, MAMLConfig, TaskBatchItem
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.utils.timing import Timer

# Few-shot geometry: many tasks, small support sets — exactly the cold-start
# regime (1-10 ratings per user) where the per-task Python loop drowns in
# call overhead and the stacked pass shines.
N_TASKS = 64
CONTENT_DIM = 40
SUPPORT = 8
QUERY = 6
# >=3x locally (measured ~5-7x); CI sets BENCH_SPEEDUP_FLOOR lower because
# shared-runner timing noise can halve micro-benchmark ratios.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SPEEDUP_FLOOR", 3.0))


def _model() -> PreferenceModel:
    return PreferenceModel(
        PreferenceModelConfig(content_dim=CONTENT_DIM, embed_dim=16, hidden_dims=(32, 16))
    )


def _tasks(seed: int = 0, n_tasks: int = N_TASKS) -> list[TaskBatchItem]:
    rng = np.random.default_rng(seed)
    items = []
    for _ in range(n_tasks):
        items.append(
            TaskBatchItem(
                support_user=rng.random((SUPPORT, CONTENT_DIM)),
                support_item=rng.random((SUPPORT, CONTENT_DIM)),
                support_labels=(rng.random(SUPPORT) < 0.5).astype(float),
                query_user=rng.random((QUERY, CONTENT_DIM)),
                query_item=rng.random((QUERY, CONTENT_DIM)),
                query_labels=(rng.random(QUERY) < 0.5).astype(float),
            )
        )
    return items


def test_meta_step_vectorized_speedup(benchmark):
    """One vectorized meta_step vs the scalar per-task reference loop."""
    tasks = _tasks()
    vec = MAML(_model(), MAMLConfig(vectorize=True), seed=0)
    loop = MAML(_model(), MAMLConfig(vectorize=False), seed=0)
    vec.meta_step(tasks)  # warm both paths once before timing
    loop.meta_step(tasks)

    rounds = 5
    with Timer() as t_loop:
        for _ in range(rounds):
            loop.meta_step(tasks)
    with Timer() as t_vec:
        for _ in range(rounds):
            vec.meta_step(tasks)

    benchmark.pedantic(lambda: vec.meta_step(tasks), rounds=5, iterations=1)

    speedup = t_loop.elapsed / max(t_vec.elapsed, 1e-9)
    benchmark.extra_info["n_tasks"] = N_TASKS
    benchmark.extra_info["loop_seconds_per_step"] = round(t_loop.elapsed / rounds, 5)
    benchmark.extra_info["vectorized_seconds_per_step"] = round(t_vec.elapsed / rounds, 5)
    benchmark.extra_info["meta_step_speedup"] = round(speedup, 2)
    benchmark.extra_info["tasks_per_second"] = round(
        N_TASKS * rounds / max(t_vec.elapsed, 1e-9), 1
    )
    print(
        f"\nmeta_step over {N_TASKS} tasks: loop {t_loop.elapsed / rounds:.4f}s, "
        f"vectorized {t_vec.elapsed / rounds:.4f}s ({speedup:.1f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR


def test_adapt_many_vectorized_speedup(benchmark):
    """Serving-time multi-user fine-tuning: adapt_many vs a finetune loop."""
    tasks = _tasks(seed=1)
    maml = MAML(_model(), MAMLConfig(), seed=0)
    steps = 5
    maml.adapt_many(tasks, steps=steps)  # warm up
    maml.finetune(tasks[0], steps=steps)

    rounds = 3
    with Timer() as t_loop:
        for _ in range(rounds):
            serial = [maml.finetune(item, steps=steps) for item in tasks]
    with Timer() as t_vec:
        for _ in range(rounds):
            batched = maml.adapt_many(tasks, steps=steps)

    # Same fast weights either way (the speedup does not change the math).
    for fast, ref in zip(batched, serial):
        for name in ref:
            np.testing.assert_allclose(fast[name], ref[name], rtol=1e-8, atol=1e-10)

    benchmark.pedantic(
        lambda: maml.adapt_many(tasks, steps=steps), rounds=3, iterations=1
    )
    speedup = t_loop.elapsed / max(t_vec.elapsed, 1e-9)
    benchmark.extra_info["n_users"] = N_TASKS
    benchmark.extra_info["finetune_steps"] = steps
    benchmark.extra_info["adapt_many_speedup"] = round(speedup, 2)
    benchmark.extra_info["users_per_second"] = round(
        N_TASKS * rounds / max(t_vec.elapsed, 1e-9), 1
    )
    print(
        f"\nadapt_many over {N_TASKS} users: loop {t_loop.elapsed / rounds:.4f}s, "
        f"vectorized {t_vec.elapsed / rounds:.4f}s ({speedup:.1f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR
