"""Figure 5: ablation of the ME and MDI constraints on CDs.

Runs the variants through the :mod:`repro.runner` grid engine and rebuilds
the NDCG@k curves (and augmentation-diversity numbers) from the stored
per-instance score lists.

Expected shape: the full MetaDPA is at least as good as its single-
constraint variants overall, and all augmented variants remain competitive
with the no-augmentation meta-learner (MeLU).
"""

import numpy as np

from repro.data.splits import Scenario
from repro.experiments.ablation import ABLATION_VARIANTS
from repro.runner import DatasetSpec, GridSpec, ablation_from_store, run_grid


def test_fig5_ablation(benchmark, dataset, tmp_path):
    spec = GridSpec(
        methods=list(ABLATION_VARIANTS),
        targets=["CDs"],
        scenarios=list(Scenario),
        seeds=[0],
        profile="fast",
        dataset=DatasetSpec(user_base=160, item_base=110, seed=0),
    )
    run_dir = tmp_path / "fig5-grid"

    def run_and_aggregate():
        report = run_grid(spec, run_dir, workers=1, dataset=dataset)
        assert report.ok, report.failures
        return ablation_from_store(run_dir, ks=(5, 10, 15, 20, 25, 30))

    result = benchmark.pedantic(run_and_aggregate, rounds=1, iterations=1)
    print("\n" + result.format_table())

    def mean_ndcg(variant: str) -> float:
        return float(
            np.mean([result.curves[(sc, variant)] for sc in Scenario])
        )

    full = mean_ndcg("MetaDPA")
    me_only = mean_ndcg("MetaDPA-ME")
    mdi_only = mean_ndcg("MetaDPA-MDI")
    benchmark.extra_info["metadpa"] = round(full, 4)
    benchmark.extra_info["metadpa_me"] = round(me_only, 4)
    benchmark.extra_info["metadpa_mdi"] = round(mdi_only, 4)
    benchmark.extra_info["diversity_full"] = round(result.diversity["MetaDPA"], 4)

    # Loose shape assertions (fast budget, single seed): the full model is
    # not dominated by both ablations simultaneously.
    assert full >= min(me_only, mdi_only) * 0.9
