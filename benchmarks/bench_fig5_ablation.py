"""Figure 5: ablation of the ME and MDI constraints on CDs.

Expected shape: the full MetaDPA is at least as good as its single-
constraint variants overall, and all augmented variants remain competitive
with the no-augmentation meta-learner (MeLU).
"""

import numpy as np

from repro.data.splits import Scenario
from repro.experiments import run_ablation
from repro.experiments.ablation import ABLATION_VARIANTS


def test_fig5_ablation(benchmark, dataset):
    result = benchmark.pedantic(
        run_ablation,
        args=(dataset,),
        kwargs=dict(
            target="CDs",
            variants=ABLATION_VARIANTS,
            ks=(5, 10, 15, 20, 25, 30),
            seeds=(0,),
            profile="fast",
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())

    def mean_ndcg(variant: str) -> float:
        return float(
            np.mean([result.curves[(sc, variant)] for sc in Scenario])
        )

    full = mean_ndcg("MetaDPA")
    me_only = mean_ndcg("MetaDPA-ME")
    mdi_only = mean_ndcg("MetaDPA-MDI")
    benchmark.extra_info["metadpa"] = round(full, 4)
    benchmark.extra_info["metadpa_me"] = round(me_only, 4)
    benchmark.extra_info["metadpa_mdi"] = round(mdi_only, 4)
    benchmark.extra_info["diversity_full"] = round(result.diversity["MetaDPA"], 4)

    # Loose shape assertions (fast budget, single seed): the full model is
    # not dominated by both ablations simultaneously.
    assert full >= min(me_only, mdi_only) * 0.9
