"""Figure 6: per-block training time versus data size.

Expected shape: block 1 (Dual-CVAE epoch) grows with data size; blocks 2
(generation pass) and 3 (one meta-step over a fixed task batch) stay flat.
"""

import numpy as np

from repro.experiments import run_scalability


def test_fig6_scalability(benchmark):
    result = benchmark.pedantic(
        run_scalability,
        kwargs=dict(fractions=(0.2, 0.4, 0.6, 0.8, 1.0)),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())
    slope1, r2_1 = result.linear_fit(result.block1_seconds)
    benchmark.extra_info["block1_slope"] = round(slope1, 5)
    benchmark.extra_info["block1_r2"] = round(r2_1, 3)

    # Block 1 cost grows with data size.
    assert result.block1_seconds[-1] > result.block1_seconds[0]
    # Blocks 2-3 stay within a constant band (no growth proportional to data).
    b2 = np.asarray(result.block2_seconds)
    b3 = np.asarray(result.block3_seconds)
    assert b2.max() < 10 * max(b2.min(), 1e-4)
    assert b3.max() < 10 * max(b3.min(), 1e-3)
