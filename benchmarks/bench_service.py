"""Serving facade: cached adaptation and micro-batching.

Demonstrates the serving-layer win: the first ``recommend`` call for a
user pays the meta-learner's support-set fine-tuning, repeat calls are
served from the LRU cache and only pay one forward pass.  The cold/warm
ratio is attached to ``extra_info``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.registry import build_method
from repro.service import RecommenderService
from repro.utils.timing import Timer


@pytest.fixture(scope="module")
def served_metadpa(dataset):
    experiment = prepare_experiment(dataset, "Books", seed=0)
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 10, "meta_epochs": 2},
        seed=0,
    )
    method.fit(experiment.ctx)
    tasks = list(experiment.task_sets[Scenario.C_U])
    return method, tasks


def test_service_cached_adaptation(benchmark, served_metadpa):
    method, tasks = served_metadpa
    users = [t.user_row for t in tasks[:8]]
    service = RecommenderService(method, cache_size=64)
    for task in tasks[:8]:
        service.register_user_history(task)

    with Timer() as cold:
        for user in users:
            service.recommend(user, k=10)
    with Timer() as warm:
        for user in users:
            service.recommend(user, k=10)

    benchmark.pedantic(
        lambda: [service.recommend(u, k=10) for u in users],
        rounds=3,
        iterations=1,
    )
    speedup = cold.elapsed / max(warm.elapsed, 1e-9)
    benchmark.extra_info["cold_seconds"] = round(cold.elapsed, 4)
    benchmark.extra_info["warm_seconds"] = round(warm.elapsed, 4)
    benchmark.extra_info["cold_over_warm"] = round(speedup, 2)
    stats = service.stats()
    print(
        f"\ncold {cold.elapsed:.4f}s, warm {warm.elapsed:.4f}s "
        f"({speedup:.1f}x), cache {stats['cache']}"
    )
    # The acceptance bar: repeat requests are measurably faster than first
    # requests because the fine-tuning is cached.
    assert warm.elapsed < cold.elapsed
    assert stats["cache"]["hits"] >= len(users)


def test_service_microbatch_throughput(benchmark, served_metadpa):
    method, tasks = served_metadpa
    users = [t.user_row for t in tasks[:16]]

    def serve_batch():
        service = RecommenderService(method, cache_size=64)
        return service.recommend_many(users, k=10)

    results = benchmark.pedantic(serve_batch, rounds=3, iterations=1)
    assert len(results) == len(users)
    assert all(np.all(np.diff(r.scores) <= 1e-12) for r in results if len(r))
