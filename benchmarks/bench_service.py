"""Serving facade: cached adaptation and micro-batching.

Demonstrates the serving-layer win: the first ``recommend`` call for a
user pays the meta-learner's support-set fine-tuning, repeat calls are
served from the LRU cache and only pay one forward pass.  The cold/warm
ratio is attached to ``extra_info``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.experiment import prepare_experiment
from repro.data.splits import Scenario
from repro.meta.maml import materialize_task
from repro.registry import build_method
from repro.service import RecommenderService
from repro.utils.timing import Timer


@pytest.fixture(scope="module")
def served_metadpa(dataset):
    experiment = prepare_experiment(dataset, "Books", seed=0)
    method = build_method(
        {"name": "MetaDPA", "profile": "fast", "cvae_epochs": 10, "meta_epochs": 2},
        seed=0,
    )
    method.fit(experiment.ctx)
    tasks = list(experiment.task_sets[Scenario.C_U])
    return method, tasks


def test_service_cached_adaptation(benchmark, served_metadpa):
    method, tasks = served_metadpa
    users = [t.user_row for t in tasks[:8]]
    service = RecommenderService(method, cache_size=64)
    for task in tasks[:8]:
        service.register_user_history(task)

    with Timer() as cold:
        for user in users:
            service.recommend(user, k=10)
    with Timer() as warm:
        for user in users:
            service.recommend(user, k=10)

    benchmark.pedantic(
        lambda: [service.recommend(u, k=10) for u in users],
        rounds=3,
        iterations=1,
    )
    speedup = cold.elapsed / max(warm.elapsed, 1e-9)
    benchmark.extra_info["cold_seconds"] = round(cold.elapsed, 4)
    benchmark.extra_info["warm_seconds"] = round(warm.elapsed, 4)
    benchmark.extra_info["cold_over_warm"] = round(speedup, 2)
    stats = service.stats()
    print(
        f"\ncold {cold.elapsed:.4f}s, warm {warm.elapsed:.4f}s "
        f"({speedup:.1f}x), cache {stats['cache']}"
    )
    # The acceptance bar: repeat requests are measurably faster than first
    # requests because the fine-tuning is cached.
    assert warm.elapsed < cold.elapsed
    assert stats["cache"]["hits"] >= len(users)


@pytest.fixture(scope="module")
def served_melu(dataset):
    experiment = prepare_experiment(dataset, "Books", seed=0)
    method = build_method({"name": "MeLU", "profile": "fast", "meta_epochs": 2}, seed=0)
    method.fit(experiment.ctx)
    return method, list(experiment.task_sets[Scenario.C_U])


def test_service_batch_adaptation_speedup(benchmark, served_melu):
    """A flush of cold-start users: one vectorized adapt_users vs a loop.

    This is the serving-time win of the stacked-parameter redesign —
    ``recommend_many`` (and every micro-batch flush) fine-tunes all uncached
    users through one vectorized inner loop instead of one per user; MeLU's
    decision-only restriction additionally embeds each support set once
    instead of once per inner step.  The loop baseline is the pre-redesign
    per-user path: one full-model fine-tuning run per user.
    """
    method, tasks = served_melu
    cold = tasks[:16]
    maml = method.maml
    serving = method.serving

    def legacy_adapt_user(task):
        """The pre-redesign per-user path: full backward every inner step."""
        item = materialize_task(
            serving.user_content,
            serving.item_content,
            task.user_row,
            task.support_items,
            task.support_labels,
            task.query_items,
            task.query_labels,
        )
        fast = dict(maml.params)
        for _ in range(method.finetune_steps):
            _, grads = maml.model.loss_and_grads(
                fast, item.support_user, item.support_item, item.support_labels
            )
            for name, grad in grads.items():
                if name in maml._adaptable_keys:
                    fast[name] = fast[name] - maml.config.inner_lr * grad
        return fast

    serial = [legacy_adapt_user(t) for t in cold]  # warm both paths
    batched = method.adapt_users(cold)
    for state_a, state_b in zip(batched, serial):
        assert all(
            np.allclose(state_a[name], state_b[name]) for name in state_b
        )

    rounds = 3
    with Timer() as t_serial:
        for _ in range(rounds):
            [legacy_adapt_user(t) for t in cold]
    with Timer() as t_batched:
        for _ in range(rounds):
            method.adapt_users(cold)

    benchmark.pedantic(lambda: method.adapt_users(cold), rounds=3, iterations=1)
    speedup = t_serial.elapsed / max(t_batched.elapsed, 1e-9)
    benchmark.extra_info["n_cold_users"] = len(cold)
    benchmark.extra_info["serial_seconds"] = round(t_serial.elapsed / rounds, 4)
    benchmark.extra_info["batched_seconds"] = round(t_batched.elapsed / rounds, 4)
    benchmark.extra_info["adapt_users_speedup"] = round(speedup, 2)
    print(
        f"\nadapting {len(cold)} cold users: serial {t_serial.elapsed / rounds:.4f}s, "
        f"batched {t_batched.elapsed / rounds:.4f}s ({speedup:.1f}x)"
    )
    assert speedup >= float(os.environ.get("BENCH_SPEEDUP_FLOOR", 3.0))


def test_service_microbatch_throughput(benchmark, served_metadpa):
    method, tasks = served_metadpa
    users = [t.user_row for t in tasks[:16]]

    def serve_batch():
        service = RecommenderService(method, cache_size=64)
        return service.recommend_many(users, k=10)

    results = benchmark.pedantic(serve_batch, rounds=3, iterations=1)
    assert len(results) == len(users)
    assert all(np.all(np.diff(r.scores) <= 1e-12) for r in results if len(r))
