"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
("fast") budget so the whole suite completes in minutes on a laptop.  Pass
``-s`` to see the regenerated tables; headline numbers are also attached to
each benchmark's ``extra_info``.

Machine-readable results: after a benchmark run, every benchmark writes a
``BENCH_<name>.json`` file (wall time, throughput, ``extra_info``) into
``benchmarks/results/`` (override with ``BENCH_RESULTS_DIR``), so the perf
trajectory is trackable across PRs and CI uploads the files as artifacts.
Memory wins are tracked alongside speedups: every payload's ``extra_info``
records the process peak RSS at session end, and memory-focused benches add
their own byte counts (e.g. ``corpus_bytes`` in ``bench_meta_corpus``).

Observability: when the process-global :mod:`repro.obs` registry recorded
anything (training spans, serving counters), a compact summary is folded
into every payload's ``extra_info["obs"]`` and the full snapshot is written
as ``BENCH_obs_snapshot.json`` so CI uploads it with the other artifacts.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

import pytest

from repro.data.amazon import BenchmarkScale, make_amazon_like_benchmark
from repro.obs import Histogram, metrics, peak_rss_bytes


def _obs_summary() -> dict | None:
    """Compact view of the process-global registry for ``extra_info``.

    Counters verbatim; each histogram reduced to count/mean/p50/p99 so the
    per-epoch training spans (``meta.*``, ``cvae.*``) land in the stored
    payloads without dumping hundreds of bucket counts per benchmark.
    """
    snap = metrics().snapshot()
    histograms = {}
    for name, data in snap.get("histograms", {}).items():
        hist = Histogram.from_snapshot(data)
        if not hist.count:
            continue
        histograms[name] = {
            "count": hist.count,
            "mean": round(hist.mean, 6),
            "p50": round(hist.percentile(50), 6),
            "p99": round(hist.percentile(99), 6),
        }
    counters = dict(snap.get("counters", {}))
    if not counters and not histograms:
        return None
    return {"counters": counters, "histograms": histograms}


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per completed benchmark."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    out_dir = Path(
        os.environ.get("BENCH_RESULTS_DIR", Path(__file__).parent / "results")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    peak_rss = peak_rss_bytes() or None
    obs = _obs_summary()
    if obs is not None:
        # The full registry snapshot rides along as a BENCH_*.json so the
        # existing CI artifact glob uploads it next to the benchmark files.
        (out_dir / "BENCH_obs_snapshot.json").write_text(
            json.dumps(
                {"timestamp": time.time(), "metrics": metrics().snapshot()},
                indent=2,
                sort_keys=True,
                default=str,
            )
            + "\n"
        )
    for bench in bench_session.benchmarks:
        if getattr(bench, "has_error", False):
            continue
        if peak_rss is not None:
            bench.extra_info.setdefault("peak_rss_bytes", peak_rss)
        if obs is not None:
            bench.extra_info.setdefault("obs", obs)
        stats = bench.stats
        mean = float(stats.mean)
        payload = {
            "name": bench.name,
            "fullname": bench.fullname,
            "timestamp": time.time(),
            "wall_time_seconds": {
                "mean": mean,
                "min": float(stats.min),
                "max": float(stats.max),
                "stddev": float(stats.stddev),
                "rounds": int(stats.rounds),
            },
            "throughput_per_second": (1.0 / mean) if mean > 0 else None,
            "extra_info": dict(bench.extra_info),
        }
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", bench.name)
        path = out_dir / f"BENCH_{slug}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )


@pytest.fixture(scope="session")
def dataset():
    """The five-domain benchmark at a size suitable for benchmarking."""
    return make_amazon_like_benchmark(
        scale=BenchmarkScale(user_base=160, item_base=110), seed=0
    )
