"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
("fast") budget so the whole suite completes in minutes on a laptop.  Pass
``-s`` to see the regenerated tables; headline numbers are also attached to
each benchmark's ``extra_info``.

Machine-readable results: after a benchmark run, every benchmark writes a
``BENCH_<name>.json`` file (wall time, throughput, ``extra_info``) into
``benchmarks/results/`` (override with ``BENCH_RESULTS_DIR``), so the perf
trajectory is trackable across PRs and CI uploads the files as artifacts.
Memory wins are tracked alongside speedups: every payload's ``extra_info``
records the process peak RSS at session end, and memory-focused benches add
their own byte counts (e.g. ``corpus_bytes`` in ``bench_meta_corpus``).
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from pathlib import Path

import pytest

from repro.data.amazon import BenchmarkScale, make_amazon_like_benchmark


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes (None if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per completed benchmark."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    out_dir = Path(
        os.environ.get("BENCH_RESULTS_DIR", Path(__file__).parent / "results")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    peak_rss = _peak_rss_bytes()
    for bench in bench_session.benchmarks:
        if getattr(bench, "has_error", False):
            continue
        if peak_rss is not None:
            bench.extra_info.setdefault("peak_rss_bytes", peak_rss)
        stats = bench.stats
        mean = float(stats.mean)
        payload = {
            "name": bench.name,
            "fullname": bench.fullname,
            "timestamp": time.time(),
            "wall_time_seconds": {
                "mean": mean,
                "min": float(stats.min),
                "max": float(stats.max),
                "stddev": float(stats.stddev),
                "rounds": int(stats.rounds),
            },
            "throughput_per_second": (1.0 / mean) if mean > 0 else None,
            "extra_info": dict(bench.extra_info),
        }
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", bench.name)
        path = out_dir / f"BENCH_{slug}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )


@pytest.fixture(scope="session")
def dataset():
    """The five-domain benchmark at a size suitable for benchmarking."""
    return make_amazon_like_benchmark(
        scale=BenchmarkScale(user_base=160, item_base=110), seed=0
    )
