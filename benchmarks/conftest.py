"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
("fast") budget so the whole suite completes in minutes on a laptop.  Pass
``-s`` to see the regenerated tables; headline numbers are also attached to
each benchmark's ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.data.amazon import BenchmarkScale, make_amazon_like_benchmark


@pytest.fixture(scope="session")
def dataset():
    """The five-domain benchmark at a size suitable for benchmarking."""
    return make_amazon_like_benchmark(
        scale=BenchmarkScale(user_base=160, item_base=110), seed=0
    )
