"""Worker-count scaling of the grid engine.

Runs one small grid cold at several worker counts (fresh run directory
each time, dataset built inside the workers, prepared bundles shared
through the on-disk cache) and once warm (resume from a completed store).
``extra_info`` records the wall-clock per worker count and the resume time;
on multi-core hardware the cold times should shrink with workers, and the
warm relaunch should be near-instant regardless.
"""

import time

from repro.runner import DatasetSpec, GridSpec, prepared, run_grid, table3_from_store


def _make_spec() -> GridSpec:
    return GridSpec(
        methods=["Popularity", "NeuMF", "CoNN"],
        targets=["Books"],
        scenarios=["warm-start", "user cold-start"],
        seeds=[0, 1],
        profile="fast",
        dataset=DatasetSpec(user_base=120, item_base=80, seed=0),
    )


def test_grid_worker_scaling(benchmark, tmp_path):
    spec = _make_spec()
    n_cells = len(spec.expand())
    timings: dict[str, float] = {}
    tables = {}

    for workers in (1, 2, 4):
        run_dir = tmp_path / f"grid-w{workers}"
        prepared.clear_memos()  # cold: no in-process reuse between runs
        started = time.perf_counter()
        report = run_grid(spec, run_dir, workers=workers)
        timings[f"cold_w{workers}_s"] = round(time.perf_counter() - started, 3)
        assert report.ok, report.failures
        assert report.n_computed == n_cells
        tables[workers] = table3_from_store(run_dir)

    # Every worker count lands on byte-identical aggregated metrics.
    reference = tables[1]
    for workers, table in tables.items():
        for key, metrics in reference.cells.items():
            for metric, values in metrics.items():
                assert table.cells[key][metric] == values, (workers, key, metric)

    # The timed benchmark is the warm relaunch: everything resumes.
    warm_dir = tmp_path / "grid-w1"

    def warm_relaunch():
        return run_grid(spec, warm_dir, workers=1)

    warm_report = benchmark.pedantic(warm_relaunch, rounds=1, iterations=1)
    assert warm_report.n_computed == 0
    assert warm_report.n_skipped == n_cells

    timings["warm_resume_s"] = round(warm_report.elapsed, 3)
    benchmark.extra_info.update(timings)
    benchmark.extra_info["n_cells"] = n_cells
    print("\n[grid scaling] " + "  ".join(f"{k}={v}" for k, v in timings.items()))
