"""Preference meta-learning (paper Sec. IV-C).

The preference model of Eq. (11) — content embedding layers feeding a
multi-layer perceptron with a sigmoid head — is trained with MAML over user
tasks.  MetaDPA's meta-training set contains the original task of every user
*plus* k augmented views whose labels come from the Dual-CVAE generations;
cold-start evaluation fine-tunes the meta-initialization on a task's support
set and scores its query items.
"""

from repro.meta.corpus import (
    PackedContent,
    PackedContentMixin,
    TaskCorpus,
    TaskCorpusBuilder,
    pack_content,
)
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.meta.maml import MAML, MAMLConfig
from repro.meta.serving import (
    FrozenTowerTables,
    MAMLServingMixin,
    build_frozen_tower_tables,
)
from repro.meta.trainer import MetaDPA, MetaDPAConfig

__all__ = [
    "PreferenceModel",
    "PreferenceModelConfig",
    "MAML",
    "MAMLConfig",
    "MetaDPA",
    "MetaDPAConfig",
    "PackedContent",
    "PackedContentMixin",
    "TaskCorpus",
    "TaskCorpusBuilder",
    "pack_content",
    "FrozenTowerTables",
    "MAMLServingMixin",
    "build_frozen_tower_tables",
]
