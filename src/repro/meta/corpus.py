"""Packed task corpus: the index-based data path of meta-training.

The meta-training set of MetaDPA is hugely redundant when materialized: the
k augmented views of Eqs. (9)-(10) repeat their parent task's support/query
*content* byte for byte and differ only in labels, and every task tiles one
user-content row across all of its item rows.  :class:`TaskCorpus` stores
the whole corpus **once**, as contiguous int32 item-index pools in
offset-indexed ragged layout plus one float32 label row per view:

.. code-block:: text

    base tasks (B)                      views (V >= B)
    ------------------------------      -------------------------------
    user_rows        int32 (B,)         view_base            int32 (V,)
    support_items    int32 (sum S_b,)   support_labels     float32 (sum S_v,)
    support_offsets  int64 (B+1,)       support_label_offsets int64 (V+1,)
    query_items      int32 (sum Q_b,)   query_labels       float32 (sum Q_v,)
    query_offsets    int64 (B+1,)       query_label_offsets   int64 (V+1,)

A *view* is (base task, label rows): the original task is its own first
view, and augmented views share the parent's index arrays by construction —
adding one costs two label rows, never an index copy.  Content lives in one
float32 :class:`PackedContent` pair shared by the whole corpus (and by the
serving paths), so no ``(T, S, C)`` dense content exists outside a
meta-step: batches are built by fancy-indexing the pools into reused
scratch buffers and content rows are gathered inside the model forward.

Epoch iteration (:meth:`TaskCorpus.epoch_batches`) shuffles the views, then
stable-sorts them into geometric ``(support, query)`` width buckets so each
meta-batch pads to near-uniform width (waste bounded by the bucket ratio,
< 2x) while staying randomized within a bucket.  The materialized
:class:`~repro.meta.maml.TaskBatchItem` reference path consumes the *same*
schedule through :meth:`materialize`, which is what lets the equivalence
suite pin ``packed == materialized`` per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.tasks import PreferenceTask

_INDEX_DTYPE = np.int32
_OFFSET_DTYPE = np.int64
_LABEL_DTYPE = np.float32


@dataclass(frozen=True)
class PackedContent:
    """Cast-once float32 content matrices shared by corpus and serving."""

    user: np.ndarray  # (n_users, C) float32, C-contiguous
    item: np.ndarray  # (n_items, C) float32, C-contiguous

    @property
    def dim(self) -> int:
        return self.user.shape[1]

    def extend(
        self,
        user: np.ndarray | None = None,
        item: np.ndarray | None = None,
    ) -> "PackedContent":
        """Return a new :class:`PackedContent` with extra content rows.

        ``PackedContent`` is frozen (corpora and services alias its arrays),
        so growth is copy-on-extend: existing rows keep their indices, new
        rows take the next ones.  Passing ``None`` for a side keeps it
        shared by reference.
        """

        def grow(base: np.ndarray, extra: np.ndarray | None) -> np.ndarray:
            if extra is None:
                return base
            rows = np.ascontiguousarray(
                np.atleast_2d(np.asarray(extra)), dtype=base.dtype
            )
            if rows.shape[1] != base.shape[1]:
                raise ValueError(
                    f"content dim mismatch: {rows.shape[1]} != {base.shape[1]}"
                )
            return np.concatenate([base, rows], axis=0)

        return PackedContent(user=grow(self.user, user), item=grow(self.item, item))


def pack_content(
    user_content: np.ndarray,
    item_content: np.ndarray,
    dtype: np.dtype | type = np.float32,
) -> PackedContent:
    """Build a :class:`PackedContent`, reusing arrays already in shape.

    Arrays that are already C-contiguous in the target dtype are shared by
    reference, so repeated calls on the same serving content cost nothing.
    """
    dt = np.dtype(dtype)

    def coerce(a: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        if a.dtype == dt and a.flags.c_contiguous:
            return a
        return np.ascontiguousarray(a, dtype=dt)

    return PackedContent(user=coerce(user_content), item=coerce(item_content))


class PackedContentMixin:
    """Recommender mixin: cast-once float32 serving content, built lazily.

    Expects the host class to expose ``self.serving`` (the
    :class:`~repro.core.interface.Recommender` contract) and to reset
    ``self._content = None`` whenever the serving context changes (fit).
    """

    _content: PackedContent | None = None

    def _packed_content(self) -> PackedContent:
        if self._content is None:
            serving = self.serving  # type: ignore[attr-defined]
            self._content = pack_content(
                serving.user_content, serving.item_content
            )
        return self._content


class BatchScratch:
    """Reusable flat buffers backing per-batch arrays.

    One scratch instance serves one consumer at a time (a MAML instance):
    each logical name maps to a single geometrically-grown 1-D buffer whose
    prefix is reshaped to the requested shape, so bucketed batches of
    varying width never re-allocate once the largest bucket has been seen.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dt or buf.size < n:
            buf = np.empty(max(n, 1), dtype=dt)
            self._buffers[name] = buf
        return buf[:n].reshape(shape)


@dataclass(frozen=True)
class IndexedTaskBatch:
    """One meta-batch as padded index/label arrays (no content rows).

    ``support_items``/``query_items`` hold item indices (padded positions
    repeat a valid index and are masked out of every loss), ``user_rows``
    one content row per task — the model gathers/broadcasts actual content
    rows at forward time.
    """

    user_rows: np.ndarray  # (T,) int32
    support_items: np.ndarray  # (T, S) int32
    support_labels: np.ndarray  # (T, S) float32
    support_mask: np.ndarray  # (T, S) float32
    query_items: np.ndarray | None = None  # (T, Q) int32
    query_labels: np.ndarray | None = None  # (T, Q) float32
    query_mask: np.ndarray | None = None  # (T, Q) float32

    def __len__(self) -> int:
        return self.user_rows.shape[0]


def _widths_to_buckets(widths: np.ndarray) -> np.ndarray:
    """Geometric width classes (bit length), bounding padding waste < 2x."""
    return np.frexp(np.maximum(widths, 0))[1]


class _GrowableArray:
    """Amortized-O(1) appendable pool: a capacity buffer plus a live prefix.

    The initial array is adopted zero-copy (the live prefix aliases it until
    the first growth), so a corpus that is never appended to keeps exactly
    the builder's packed arrays.  Growth doubles capacity; prefix views
    handed out *before* a growth keep aliasing the old buffer, so consumers
    must re-read pools through the corpus properties after an append.
    """

    __slots__ = ("_buf", "_size")

    def __init__(self, initial: np.ndarray, dtype: np.dtype | type):
        arr = np.asarray(initial, dtype=dtype)
        self._buf = arr
        self._size = arr.shape[0]

    @property
    def view(self) -> np.ndarray:
        return self._buf[: self._size]

    def append(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self._buf.dtype)
        n = values.shape[0]
        needed = self._size + n
        if needed > self._buf.shape[0]:
            capacity = max(needed, 2 * self._buf.shape[0], 8)
            grown = np.empty(
                (capacity, *self._buf.shape[1:]), dtype=self._buf.dtype
            )
            grown[: self._size] = self._buf[: self._size]
            self._buf = grown
        self._buf[self._size : needed] = values
        self._size = needed

    def append_scalar(self, value: int) -> None:
        self.append(np.asarray([value]))


class TaskCorpus:
    """All meta-training tasks packed once; built by :class:`TaskCorpusBuilder`."""

    def __init__(
        self,
        content: PackedContent | None,
        user_rows: np.ndarray,
        support_items: np.ndarray,
        support_offsets: np.ndarray,
        query_items: np.ndarray,
        query_offsets: np.ndarray,
        view_base: np.ndarray,
        support_labels: np.ndarray,
        support_label_offsets: np.ndarray,
        query_labels: np.ndarray,
        query_label_offsets: np.ndarray,
    ):
        self.content = content
        self._user_rows = _GrowableArray(user_rows, _INDEX_DTYPE)
        self._support_items = _GrowableArray(support_items, _INDEX_DTYPE)
        self._support_offsets = _GrowableArray(support_offsets, _OFFSET_DTYPE)
        self._query_items = _GrowableArray(query_items, _INDEX_DTYPE)
        self._query_offsets = _GrowableArray(query_offsets, _OFFSET_DTYPE)
        self._view_base = _GrowableArray(view_base, _INDEX_DTYPE)
        self._support_labels = _GrowableArray(support_labels, _LABEL_DTYPE)
        self._support_label_offsets = _GrowableArray(
            support_label_offsets, _OFFSET_DTYPE
        )
        self._query_labels = _GrowableArray(query_labels, _LABEL_DTYPE)
        self._query_label_offsets = _GrowableArray(
            query_label_offsets, _OFFSET_DTYPE
        )
        self._support_lens = _GrowableArray(np.diff(support_offsets), _OFFSET_DTYPE)
        self._query_lens = _GrowableArray(np.diff(query_offsets), _OFFSET_DTYPE)

    # ------------------------------------------------------------------
    # Pools and offsets are live prefixes of growable buffers; re-read them
    # through these properties after an append (see :class:`_GrowableArray`).
    @property
    def user_rows(self) -> np.ndarray:
        return self._user_rows.view

    @property
    def support_items(self) -> np.ndarray:
        return self._support_items.view

    @property
    def support_offsets(self) -> np.ndarray:
        return self._support_offsets.view

    @property
    def query_items(self) -> np.ndarray:
        return self._query_items.view

    @property
    def query_offsets(self) -> np.ndarray:
        return self._query_offsets.view

    @property
    def view_base(self) -> np.ndarray:
        return self._view_base.view

    @property
    def support_labels(self) -> np.ndarray:
        return self._support_labels.view

    @property
    def support_label_offsets(self) -> np.ndarray:
        return self._support_label_offsets.view

    @property
    def query_labels(self) -> np.ndarray:
        return self._query_labels.view

    @property
    def query_label_offsets(self) -> np.ndarray:
        return self._query_label_offsets.view

    @property
    def support_lens(self) -> np.ndarray:
        return self._support_lens.view

    @property
    def query_lens(self) -> np.ndarray:
        return self._query_lens.view

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, content: PackedContent | None = None) -> "TaskCorpus":
        """A zero-task corpus ready to grow through :meth:`append`.

        Streaming consumers start here: :class:`TaskCorpusBuilder` refuses
        to build an empty corpus because a *training* corpus with no views
        is a bug, but an event-log corpus legitimately starts empty.
        """
        empty_offsets = np.zeros(1, dtype=_OFFSET_DTYPE)
        return cls(
            content=content,
            user_rows=np.empty(0, dtype=_INDEX_DTYPE),
            support_items=np.empty(0, dtype=_INDEX_DTYPE),
            support_offsets=empty_offsets,
            query_items=np.empty(0, dtype=_INDEX_DTYPE),
            query_offsets=empty_offsets.copy(),
            view_base=np.empty(0, dtype=_INDEX_DTYPE),
            support_labels=np.empty(0, dtype=_LABEL_DTYPE),
            support_label_offsets=empty_offsets.copy(),
            query_labels=np.empty(0, dtype=_LABEL_DTYPE),
            query_label_offsets=empty_offsets.copy(),
        )

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of *base* tasks (index-array owners)."""
        return self.user_rows.shape[0]

    @property
    def n_views(self) -> int:
        """Number of trainable views (base tasks + label-only views)."""
        return self.view_base.shape[0]

    def __len__(self) -> int:
        return self.n_views

    @property
    def index_nbytes(self) -> int:
        """Bytes of index storage (shared across all views of a base task)."""
        return (
            self.support_items.nbytes
            + self.query_items.nbytes
            + self.support_offsets.nbytes
            + self.query_offsets.nbytes
            + self.user_rows.nbytes
        )

    @property
    def nbytes(self) -> int:
        """Total packed corpus bytes (indices + labels + offsets)."""
        return (
            self.index_nbytes
            + self.support_labels.nbytes
            + self.query_labels.nbytes
            + self.support_label_offsets.nbytes
            + self.query_label_offsets.nbytes
            + self.view_base.nbytes
        )

    def materialized_nbytes(self) -> int:
        """Bytes the dense :class:`TaskBatchItem` layout needs for this corpus.

        Counts, per view, the user/item content rows and label rows of the
        materialized representation at the corpus dtypes — the memory the
        pre-corpus ``_build_meta_tasks`` path allocated (user content per
        row, item content per row, labels).
        """
        if self.content is None:
            raise ValueError("corpus has no content attached")
        rows = (self.support_lens + self.query_lens)[self.view_base].sum()
        itemsize = self.content.user.dtype.itemsize
        per_row = 2 * self.content.dim * itemsize  # user row + item row
        return int(rows) * per_row + int(rows) * self.support_labels.dtype.itemsize

    # ------------------------------------------------------------------
    def view_arrays(
        self, view: int
    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(user_row, s_items, s_labels, q_items, q_labels)`` views."""
        base = int(self.view_base[view])
        s0, s1 = self.support_offsets[base], self.support_offsets[base + 1]
        q0, q1 = self.query_offsets[base], self.query_offsets[base + 1]
        ls0, ls1 = self.support_label_offsets[view], self.support_label_offsets[view + 1]
        lq0, lq1 = self.query_label_offsets[view], self.query_label_offsets[view + 1]
        return (
            int(self.user_rows[base]),
            self.support_items[s0:s1],
            self.support_labels[ls0:ls1],
            self.query_items[q0:q1],
            self.query_labels[lq0:lq1],
        )

    def view_support_lens(self, view_ids: np.ndarray | None = None) -> np.ndarray:
        ids = np.arange(self.n_views) if view_ids is None else np.asarray(view_ids)
        return self.support_lens[self.view_base[ids]]

    # ------------------------------------------------------------------
    def append(self, task: PreferenceTask) -> int:
        """O(new rows) append of a base task plus its identity view.

        Existing base ids, view ids, and pool offsets are unchanged —
        label-only views keep aliasing their parent's index range — so an
        appended corpus gathers bitwise like one rebuilt from scratch with
        the same task sequence.  Returns the new base id; the task's
        identity view lands at ``n_views - 1``.
        """
        s_items = np.asarray(task.support_items, dtype=_INDEX_DTYPE)
        q_items = np.asarray(task.query_items, dtype=_INDEX_DTYPE)
        s_labels = np.asarray(task.support_labels, dtype=_LABEL_DTYPE)
        q_labels = np.asarray(task.query_labels, dtype=_LABEL_DTYPE)
        if s_labels.shape != s_items.shape:
            raise ValueError("support labels must match the support item width")
        if q_labels.shape != q_items.shape:
            raise ValueError("query labels must match the query item width")
        if self.content is not None:
            n_items = self.content.item.shape[0]
            for arr in (s_items, q_items):
                if arr.size and (arr.min() < 0 or arr.max() >= n_items):
                    raise ValueError("item index out of range for attached content")
            if not 0 <= int(task.user_row) < self.content.user.shape[0]:
                raise ValueError("user_row out of range for attached content")
        base = self.n_tasks
        self._user_rows.append_scalar(int(task.user_row))
        self._support_items.append(s_items)
        self._support_offsets.append_scalar(
            int(self.support_offsets[-1]) + s_items.size
        )
        self._support_lens.append_scalar(s_items.size)
        self._query_items.append(q_items)
        self._query_offsets.append_scalar(int(self.query_offsets[-1]) + q_items.size)
        self._query_lens.append_scalar(q_items.size)
        self._append_view(base, s_labels, q_labels)
        return base

    def extend(self, tasks: Sequence[PreferenceTask]) -> list[int]:
        """Append several base tasks; returns their base ids."""
        return [self.append(task) for task in tasks]

    def _append_view(
        self, base: int, support_labels: np.ndarray, query_labels: np.ndarray
    ) -> int:
        view = self.n_views
        self._view_base.append_scalar(base)
        self._support_labels.append(support_labels)
        self._support_label_offsets.append_scalar(
            int(self.support_label_offsets[-1]) + support_labels.size
        )
        self._query_labels.append(query_labels)
        self._query_label_offsets.append_scalar(
            int(self.query_label_offsets[-1]) + query_labels.size
        )
        return view

    def append_label_view(
        self, base: int, support_labels: np.ndarray, query_labels: np.ndarray
    ) -> int:
        """Attach a label-only view to an existing base task, post-build."""
        if not 0 <= base < self.n_tasks:
            raise ValueError(f"unknown base task {base}")
        support_labels = np.asarray(support_labels, dtype=_LABEL_DTYPE)
        query_labels = np.asarray(query_labels, dtype=_LABEL_DTYPE)
        if support_labels.size != int(self.support_lens[base]):
            raise ValueError("support labels must match the base task's width")
        if query_labels.size != int(self.query_lens[base]):
            raise ValueError("query labels must match the base task's width")
        return self._append_view(base, support_labels.ravel(), query_labels.ravel())

    def append_rating_view(self, base: int, rating_vector: np.ndarray) -> int:
        """Augmented view of Eqs. (9)-(10) against a live corpus."""
        if not 0 <= base < self.n_tasks:
            raise ValueError(f"unknown base task {base}")
        s0, s1 = self.support_offsets[base], self.support_offsets[base + 1]
        q0, q1 = self.query_offsets[base], self.query_offsets[base + 1]
        vector = np.asarray(rating_vector)
        return self._append_view(
            base,
            np.asarray(vector[self.support_items[s0:s1]], dtype=_LABEL_DTYPE),
            np.asarray(vector[self.query_items[q0:q1]], dtype=_LABEL_DTYPE),
        )

    # ------------------------------------------------------------------
    def epoch_batches(
        self,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
        bucketed: bool = True,
    ) -> Iterator[np.ndarray]:
        """Yield meta-batches of view ids for one epoch.

        Views are shuffled (one ``rng.shuffle`` draw, so packed and
        materialized runs seeded alike see identical schedules), then
        stable-sorted into geometric ``(support, query)`` width buckets;
        consecutive slices of ``batch_size`` become the meta-batches.
        ``bucketed=False`` skips the width sort (pure shuffled order, for
        consumers that never pad).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(self.n_views)
        if shuffle and rng is not None:
            rng.shuffle(order)
        if bucketed:
            base = self.view_base[order]
            s_bits = _widths_to_buckets(self.support_lens[base])
            q_bits = _widths_to_buckets(self.query_lens[base])
            key = s_bits * (q_bits.max(initial=0) + 1) + q_bits
            order = order[np.argsort(key, kind="stable")]
        for start in range(0, order.size, batch_size):
            yield order[start : start + batch_size]

    # ------------------------------------------------------------------
    def _gather_ragged(
        self,
        pool: np.ndarray,
        offsets: np.ndarray,
        lens: np.ndarray,
        rows: np.ndarray,
        width: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """Fill ``out (T, width)`` from a ragged pool; returns the row mask."""
        ar = np.arange(width)
        mask = ar[None, :] < lens[rows][:, None]
        # Padded positions read pool[0] (a valid entry, masked everywhere).
        pos = np.where(mask, offsets[rows][:, None] + ar[None, :], 0)
        if pool.size == 0:
            out[...] = 0
        else:
            np.take(pool, pos, out=out)
        return mask

    def gather_batch(
        self,
        view_ids: np.ndarray,
        scratch: BatchScratch | None = None,
        support_only: bool = False,
    ) -> IndexedTaskBatch:
        """Pack ``view_ids`` into padded index/label arrays in O(1) numpy ops.

        All arrays come from ``scratch`` when given (reused across batches);
        each batch pads to its own max width, so bucketed schedules keep the
        padded area within a small factor of the real row count.
        """
        scratch = scratch or BatchScratch()
        ids = np.asarray(view_ids)
        base = self.view_base[ids]
        n = ids.size

        def gather_side(
            prefix: str,
            pool: np.ndarray,
            offsets: np.ndarray,
            lens: np.ndarray,
            labels: np.ndarray,
            label_offsets: np.ndarray,
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            width = int(lens[base].max(initial=0))
            width = max(width, 1)
            items = scratch.get(f"{prefix}_items", (n, width), _INDEX_DTYPE)
            mask_bool = self._gather_ragged(pool, offsets, lens, base, width, items)
            labs = scratch.get(f"{prefix}_labels", (n, width), labels.dtype)
            ar = np.arange(width)
            lpos = np.where(mask_bool, label_offsets[ids][:, None] + ar[None, :], 0)
            if labels.size == 0:
                labs[...] = 0
            else:
                np.take(labels, lpos, out=labs)
            mask = scratch.get(f"{prefix}_mask", (n, width), labels.dtype)
            mask[...] = mask_bool
            labs *= mask  # padded labels at exactly 0, like the dense layout
            return items, labs, mask

        s_items, s_labels, s_mask = gather_side(
            "support",
            self.support_items,
            self.support_offsets,
            self.support_lens,
            self.support_labels,
            self.support_label_offsets,
        )
        if support_only:
            return IndexedTaskBatch(
                user_rows=self.user_rows[base],
                support_items=s_items,
                support_labels=s_labels,
                support_mask=s_mask,
            )
        q_items, q_labels, q_mask = gather_side(
            "query",
            self.query_items,
            self.query_offsets,
            self.query_lens,
            self.query_labels,
            self.query_label_offsets,
        )
        return IndexedTaskBatch(
            user_rows=self.user_rows[base],
            support_items=s_items,
            support_labels=s_labels,
            support_mask=s_mask,
            query_items=q_items,
            query_labels=q_labels,
            query_mask=q_mask,
        )

    # ------------------------------------------------------------------
    def materialize(self, view_ids: Sequence[int] | np.ndarray | None = None):
        """Dense :class:`~repro.meta.maml.TaskBatchItem` list for ``view_ids``.

        The reference data path (``MAMLConfig.packed=False``) and the
        equivalence tests consume the corpus through this, so both paths
        see the same float32 content and the same schedules.  User content
        rows are broadcast views, not copies.
        """
        from repro.meta.maml import TaskBatchItem

        if self.content is None:
            raise ValueError("corpus has no content attached")
        ids = range(self.n_views) if view_ids is None else view_ids
        user, item = self.content.user, self.content.item
        dim = self.content.dim
        items = []
        for view in ids:
            row, s_items, s_labels, q_items, q_labels = self.view_arrays(int(view))
            cu = user[row]
            items.append(
                TaskBatchItem(
                    support_user=np.broadcast_to(cu, (s_items.size, dim)),
                    support_item=item[s_items],
                    support_labels=s_labels,
                    query_user=np.broadcast_to(cu, (q_items.size, dim)),
                    query_item=item[q_items],
                    query_labels=q_labels,
                )
            )
        return items


class TaskCorpusBuilder:
    """Accumulates tasks and label-only views, then packs them once.

    ``add_task`` registers a base task (its index arrays plus its original
    labels as the first view); ``add_label_view`` attaches an augmented view
    to an existing base, storing only the label rows.
    """

    def __init__(self, content: PackedContent | None):
        self.content = content
        self._user_rows: list[int] = []
        self._support_items: list[np.ndarray] = []
        self._query_items: list[np.ndarray] = []
        self._view_base: list[int] = []
        self._support_labels: list[np.ndarray] = []
        self._query_labels: list[np.ndarray] = []

    def add_task(self, task: PreferenceTask) -> int:
        """Register a base task; returns its base id."""
        base = len(self._user_rows)
        self._user_rows.append(int(task.user_row))
        self._support_items.append(np.asarray(task.support_items, dtype=_INDEX_DTYPE))
        self._query_items.append(np.asarray(task.query_items, dtype=_INDEX_DTYPE))
        self._view_base.append(base)
        self._support_labels.append(np.asarray(task.support_labels, dtype=_LABEL_DTYPE))
        self._query_labels.append(np.asarray(task.query_labels, dtype=_LABEL_DTYPE))
        return base

    def extend(self, tasks: Sequence[PreferenceTask]) -> list[int]:
        """Register several base tasks; returns their base ids."""
        return [self.add_task(task) for task in tasks]

    def add_label_view(
        self, base: int, support_labels: np.ndarray, query_labels: np.ndarray
    ) -> int:
        """Attach a label-only (augmented) view to base task ``base``."""
        if not 0 <= base < len(self._user_rows):
            raise ValueError(f"unknown base task {base}")
        support_labels = np.asarray(support_labels, dtype=_LABEL_DTYPE)
        query_labels = np.asarray(query_labels, dtype=_LABEL_DTYPE)
        if support_labels.shape != self._support_items[base].shape:
            raise ValueError("support labels must match the base task's width")
        if query_labels.shape != self._query_items[base].shape:
            raise ValueError("query labels must match the base task's width")
        view = len(self._view_base)
        self._view_base.append(base)
        self._support_labels.append(support_labels)
        self._query_labels.append(query_labels)
        return view

    def add_rating_view(self, base: int, rating_vector: np.ndarray) -> int:
        """Augmented view of Eqs. (9)-(10): labels read from a rating vector."""
        s_items = self._support_items[base]
        q_items = self._query_items[base]
        vector = np.asarray(rating_vector)
        return self.add_label_view(base, vector[s_items], vector[q_items])

    def __len__(self) -> int:
        return len(self._view_base)

    @staticmethod
    def _pack(
        arrays: list[np.ndarray], dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray]:
        lens = np.fromiter((a.size for a in arrays), dtype=_OFFSET_DTYPE, count=len(arrays))
        offsets = np.zeros(len(arrays) + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(lens, out=offsets[1:])
        pool = (
            np.concatenate(arrays).astype(dtype, copy=False)
            if arrays
            else np.empty(0, dtype=dtype)
        )
        return pool, offsets

    def build(self) -> TaskCorpus:
        if not self._view_base:
            raise ValueError("empty corpus")
        support_items, support_offsets = self._pack(self._support_items, _INDEX_DTYPE)
        query_items, query_offsets = self._pack(self._query_items, _INDEX_DTYPE)
        support_labels, support_label_offsets = self._pack(
            self._support_labels, _LABEL_DTYPE
        )
        query_labels, query_label_offsets = self._pack(self._query_labels, _LABEL_DTYPE)
        return TaskCorpus(
            content=self.content,
            user_rows=np.asarray(self._user_rows, dtype=_INDEX_DTYPE),
            support_items=support_items,
            support_offsets=support_offsets,
            query_items=query_items,
            query_offsets=query_offsets,
            view_base=np.asarray(self._view_base, dtype=_INDEX_DTYPE),
            support_labels=support_labels,
            support_label_offsets=support_label_offsets,
            query_labels=query_labels,
            query_label_offsets=query_label_offsets,
        )
