"""Packed task corpus: the index-based data path of meta-training.

The meta-training set of MetaDPA is hugely redundant when materialized: the
k augmented views of Eqs. (9)-(10) repeat their parent task's support/query
*content* byte for byte and differ only in labels, and every task tiles one
user-content row across all of its item rows.  :class:`TaskCorpus` stores
the whole corpus **once**, as contiguous int32 item-index pools in
offset-indexed ragged layout plus one float32 label row per view:

.. code-block:: text

    base tasks (B)                      views (V >= B)
    ------------------------------      -------------------------------
    user_rows        int32 (B,)         view_base            int32 (V,)
    support_items    int32 (sum S_b,)   support_labels     float32 (sum S_v,)
    support_offsets  int64 (B+1,)       support_label_offsets int64 (V+1,)
    query_items      int32 (sum Q_b,)   query_labels       float32 (sum Q_v,)
    query_offsets    int64 (B+1,)       query_label_offsets   int64 (V+1,)

A *view* is (base task, label rows): the original task is its own first
view, and augmented views share the parent's index arrays by construction —
adding one costs two label rows, never an index copy.  Content lives in one
float32 :class:`PackedContent` pair shared by the whole corpus (and by the
serving paths), so no ``(T, S, C)`` dense content exists outside a
meta-step: batches are built by fancy-indexing the pools into reused
scratch buffers and content rows are gathered inside the model forward.

Epoch iteration (:meth:`TaskCorpus.epoch_batches`) shuffles the views, then
stable-sorts them into geometric ``(support, query)`` width buckets so each
meta-batch pads to near-uniform width (waste bounded by the bucket ratio,
< 2x) while staying randomized within a bucket.  The materialized
:class:`~repro.meta.maml.TaskBatchItem` reference path consumes the *same*
schedule through :meth:`materialize`, which is what lets the equivalence
suite pin ``packed == materialized`` per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.tasks import PreferenceTask

_INDEX_DTYPE = np.int32
_OFFSET_DTYPE = np.int64
_LABEL_DTYPE = np.float32


@dataclass(frozen=True)
class PackedContent:
    """Cast-once float32 content matrices shared by corpus and serving."""

    user: np.ndarray  # (n_users, C) float32, C-contiguous
    item: np.ndarray  # (n_items, C) float32, C-contiguous

    @property
    def dim(self) -> int:
        return self.user.shape[1]


def pack_content(
    user_content: np.ndarray,
    item_content: np.ndarray,
    dtype: np.dtype | type = np.float32,
) -> PackedContent:
    """Build a :class:`PackedContent`, reusing arrays already in shape.

    Arrays that are already C-contiguous in the target dtype are shared by
    reference, so repeated calls on the same serving content cost nothing.
    """
    dt = np.dtype(dtype)

    def coerce(a: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        if a.dtype == dt and a.flags.c_contiguous:
            return a
        return np.ascontiguousarray(a, dtype=dt)

    return PackedContent(user=coerce(user_content), item=coerce(item_content))


class PackedContentMixin:
    """Recommender mixin: cast-once float32 serving content, built lazily.

    Expects the host class to expose ``self.serving`` (the
    :class:`~repro.core.interface.Recommender` contract) and to reset
    ``self._content = None`` whenever the serving context changes (fit).
    """

    _content: PackedContent | None = None

    def _packed_content(self) -> PackedContent:
        if self._content is None:
            serving = self.serving  # type: ignore[attr-defined]
            self._content = pack_content(
                serving.user_content, serving.item_content
            )
        return self._content


class BatchScratch:
    """Reusable flat buffers backing per-batch arrays.

    One scratch instance serves one consumer at a time (a MAML instance):
    each logical name maps to a single geometrically-grown 1-D buffer whose
    prefix is reshaped to the requested shape, so bucketed batches of
    varying width never re-allocate once the largest bucket has been seen.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dt or buf.size < n:
            buf = np.empty(max(n, 1), dtype=dt)
            self._buffers[name] = buf
        return buf[:n].reshape(shape)


@dataclass(frozen=True)
class IndexedTaskBatch:
    """One meta-batch as padded index/label arrays (no content rows).

    ``support_items``/``query_items`` hold item indices (padded positions
    repeat a valid index and are masked out of every loss), ``user_rows``
    one content row per task — the model gathers/broadcasts actual content
    rows at forward time.
    """

    user_rows: np.ndarray  # (T,) int32
    support_items: np.ndarray  # (T, S) int32
    support_labels: np.ndarray  # (T, S) float32
    support_mask: np.ndarray  # (T, S) float32
    query_items: np.ndarray | None = None  # (T, Q) int32
    query_labels: np.ndarray | None = None  # (T, Q) float32
    query_mask: np.ndarray | None = None  # (T, Q) float32

    def __len__(self) -> int:
        return self.user_rows.shape[0]


def _widths_to_buckets(widths: np.ndarray) -> np.ndarray:
    """Geometric width classes (bit length), bounding padding waste < 2x."""
    return np.frexp(np.maximum(widths, 0))[1]


class TaskCorpus:
    """All meta-training tasks packed once; built by :class:`TaskCorpusBuilder`."""

    def __init__(
        self,
        content: PackedContent | None,
        user_rows: np.ndarray,
        support_items: np.ndarray,
        support_offsets: np.ndarray,
        query_items: np.ndarray,
        query_offsets: np.ndarray,
        view_base: np.ndarray,
        support_labels: np.ndarray,
        support_label_offsets: np.ndarray,
        query_labels: np.ndarray,
        query_label_offsets: np.ndarray,
    ):
        self.content = content
        self.user_rows = user_rows
        self.support_items = support_items
        self.support_offsets = support_offsets
        self.query_items = query_items
        self.query_offsets = query_offsets
        self.view_base = view_base
        self.support_labels = support_labels
        self.support_label_offsets = support_label_offsets
        self.query_labels = query_labels
        self.query_label_offsets = query_label_offsets
        self.support_lens = np.diff(support_offsets)
        self.query_lens = np.diff(query_offsets)

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of *base* tasks (index-array owners)."""
        return self.user_rows.shape[0]

    @property
    def n_views(self) -> int:
        """Number of trainable views (base tasks + label-only views)."""
        return self.view_base.shape[0]

    def __len__(self) -> int:
        return self.n_views

    @property
    def index_nbytes(self) -> int:
        """Bytes of index storage (shared across all views of a base task)."""
        return (
            self.support_items.nbytes
            + self.query_items.nbytes
            + self.support_offsets.nbytes
            + self.query_offsets.nbytes
            + self.user_rows.nbytes
        )

    @property
    def nbytes(self) -> int:
        """Total packed corpus bytes (indices + labels + offsets)."""
        return (
            self.index_nbytes
            + self.support_labels.nbytes
            + self.query_labels.nbytes
            + self.support_label_offsets.nbytes
            + self.query_label_offsets.nbytes
            + self.view_base.nbytes
        )

    def materialized_nbytes(self) -> int:
        """Bytes the dense :class:`TaskBatchItem` layout needs for this corpus.

        Counts, per view, the user/item content rows and label rows of the
        materialized representation at the corpus dtypes — the memory the
        pre-corpus ``_build_meta_tasks`` path allocated (user content per
        row, item content per row, labels).
        """
        if self.content is None:
            raise ValueError("corpus has no content attached")
        rows = (self.support_lens + self.query_lens)[self.view_base].sum()
        itemsize = self.content.user.dtype.itemsize
        per_row = 2 * self.content.dim * itemsize  # user row + item row
        return int(rows) * per_row + int(rows) * self.support_labels.dtype.itemsize

    # ------------------------------------------------------------------
    def view_arrays(
        self, view: int
    ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(user_row, s_items, s_labels, q_items, q_labels)`` views."""
        base = int(self.view_base[view])
        s0, s1 = self.support_offsets[base], self.support_offsets[base + 1]
        q0, q1 = self.query_offsets[base], self.query_offsets[base + 1]
        ls0, ls1 = self.support_label_offsets[view], self.support_label_offsets[view + 1]
        lq0, lq1 = self.query_label_offsets[view], self.query_label_offsets[view + 1]
        return (
            int(self.user_rows[base]),
            self.support_items[s0:s1],
            self.support_labels[ls0:ls1],
            self.query_items[q0:q1],
            self.query_labels[lq0:lq1],
        )

    def view_support_lens(self, view_ids: np.ndarray | None = None) -> np.ndarray:
        ids = np.arange(self.n_views) if view_ids is None else np.asarray(view_ids)
        return self.support_lens[self.view_base[ids]]

    # ------------------------------------------------------------------
    def epoch_batches(
        self,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
        bucketed: bool = True,
    ) -> Iterator[np.ndarray]:
        """Yield meta-batches of view ids for one epoch.

        Views are shuffled (one ``rng.shuffle`` draw, so packed and
        materialized runs seeded alike see identical schedules), then
        stable-sorted into geometric ``(support, query)`` width buckets;
        consecutive slices of ``batch_size`` become the meta-batches.
        ``bucketed=False`` skips the width sort (pure shuffled order, for
        consumers that never pad).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(self.n_views)
        if shuffle and rng is not None:
            rng.shuffle(order)
        if bucketed:
            base = self.view_base[order]
            s_bits = _widths_to_buckets(self.support_lens[base])
            q_bits = _widths_to_buckets(self.query_lens[base])
            key = s_bits * (q_bits.max(initial=0) + 1) + q_bits
            order = order[np.argsort(key, kind="stable")]
        for start in range(0, order.size, batch_size):
            yield order[start : start + batch_size]

    # ------------------------------------------------------------------
    def _gather_ragged(
        self,
        pool: np.ndarray,
        offsets: np.ndarray,
        lens: np.ndarray,
        rows: np.ndarray,
        width: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """Fill ``out (T, width)`` from a ragged pool; returns the row mask."""
        ar = np.arange(width)
        mask = ar[None, :] < lens[rows][:, None]
        # Padded positions read pool[0] (a valid entry, masked everywhere).
        pos = np.where(mask, offsets[rows][:, None] + ar[None, :], 0)
        if pool.size == 0:
            out[...] = 0
        else:
            np.take(pool, pos, out=out)
        return mask

    def gather_batch(
        self,
        view_ids: np.ndarray,
        scratch: BatchScratch | None = None,
        support_only: bool = False,
    ) -> IndexedTaskBatch:
        """Pack ``view_ids`` into padded index/label arrays in O(1) numpy ops.

        All arrays come from ``scratch`` when given (reused across batches);
        each batch pads to its own max width, so bucketed schedules keep the
        padded area within a small factor of the real row count.
        """
        scratch = scratch or BatchScratch()
        ids = np.asarray(view_ids)
        base = self.view_base[ids]
        n = ids.size

        def gather_side(
            prefix: str,
            pool: np.ndarray,
            offsets: np.ndarray,
            lens: np.ndarray,
            labels: np.ndarray,
            label_offsets: np.ndarray,
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            width = int(lens[base].max(initial=0))
            width = max(width, 1)
            items = scratch.get(f"{prefix}_items", (n, width), _INDEX_DTYPE)
            mask_bool = self._gather_ragged(pool, offsets, lens, base, width, items)
            labs = scratch.get(f"{prefix}_labels", (n, width), labels.dtype)
            ar = np.arange(width)
            lpos = np.where(mask_bool, label_offsets[ids][:, None] + ar[None, :], 0)
            if labels.size == 0:
                labs[...] = 0
            else:
                np.take(labels, lpos, out=labs)
            mask = scratch.get(f"{prefix}_mask", (n, width), labels.dtype)
            mask[...] = mask_bool
            labs *= mask  # padded labels at exactly 0, like the dense layout
            return items, labs, mask

        s_items, s_labels, s_mask = gather_side(
            "support",
            self.support_items,
            self.support_offsets,
            self.support_lens,
            self.support_labels,
            self.support_label_offsets,
        )
        if support_only:
            return IndexedTaskBatch(
                user_rows=self.user_rows[base],
                support_items=s_items,
                support_labels=s_labels,
                support_mask=s_mask,
            )
        q_items, q_labels, q_mask = gather_side(
            "query",
            self.query_items,
            self.query_offsets,
            self.query_lens,
            self.query_labels,
            self.query_label_offsets,
        )
        return IndexedTaskBatch(
            user_rows=self.user_rows[base],
            support_items=s_items,
            support_labels=s_labels,
            support_mask=s_mask,
            query_items=q_items,
            query_labels=q_labels,
            query_mask=q_mask,
        )

    # ------------------------------------------------------------------
    def materialize(self, view_ids: Sequence[int] | np.ndarray | None = None):
        """Dense :class:`~repro.meta.maml.TaskBatchItem` list for ``view_ids``.

        The reference data path (``MAMLConfig.packed=False``) and the
        equivalence tests consume the corpus through this, so both paths
        see the same float32 content and the same schedules.  User content
        rows are broadcast views, not copies.
        """
        from repro.meta.maml import TaskBatchItem

        if self.content is None:
            raise ValueError("corpus has no content attached")
        ids = range(self.n_views) if view_ids is None else view_ids
        user, item = self.content.user, self.content.item
        dim = self.content.dim
        items = []
        for view in ids:
            row, s_items, s_labels, q_items, q_labels = self.view_arrays(int(view))
            cu = user[row]
            items.append(
                TaskBatchItem(
                    support_user=np.broadcast_to(cu, (s_items.size, dim)),
                    support_item=item[s_items],
                    support_labels=s_labels,
                    query_user=np.broadcast_to(cu, (q_items.size, dim)),
                    query_item=item[q_items],
                    query_labels=q_labels,
                )
            )
        return items


class TaskCorpusBuilder:
    """Accumulates tasks and label-only views, then packs them once.

    ``add_task`` registers a base task (its index arrays plus its original
    labels as the first view); ``add_label_view`` attaches an augmented view
    to an existing base, storing only the label rows.
    """

    def __init__(self, content: PackedContent | None):
        self.content = content
        self._user_rows: list[int] = []
        self._support_items: list[np.ndarray] = []
        self._query_items: list[np.ndarray] = []
        self._view_base: list[int] = []
        self._support_labels: list[np.ndarray] = []
        self._query_labels: list[np.ndarray] = []

    def add_task(self, task: PreferenceTask) -> int:
        """Register a base task; returns its base id."""
        base = len(self._user_rows)
        self._user_rows.append(int(task.user_row))
        self._support_items.append(np.asarray(task.support_items, dtype=_INDEX_DTYPE))
        self._query_items.append(np.asarray(task.query_items, dtype=_INDEX_DTYPE))
        self._view_base.append(base)
        self._support_labels.append(np.asarray(task.support_labels, dtype=_LABEL_DTYPE))
        self._query_labels.append(np.asarray(task.query_labels, dtype=_LABEL_DTYPE))
        return base

    def add_label_view(
        self, base: int, support_labels: np.ndarray, query_labels: np.ndarray
    ) -> int:
        """Attach a label-only (augmented) view to base task ``base``."""
        if not 0 <= base < len(self._user_rows):
            raise ValueError(f"unknown base task {base}")
        support_labels = np.asarray(support_labels, dtype=_LABEL_DTYPE)
        query_labels = np.asarray(query_labels, dtype=_LABEL_DTYPE)
        if support_labels.shape != self._support_items[base].shape:
            raise ValueError("support labels must match the base task's width")
        if query_labels.shape != self._query_items[base].shape:
            raise ValueError("query labels must match the base task's width")
        view = len(self._view_base)
        self._view_base.append(base)
        self._support_labels.append(support_labels)
        self._query_labels.append(query_labels)
        return view

    def add_rating_view(self, base: int, rating_vector: np.ndarray) -> int:
        """Augmented view of Eqs. (9)-(10): labels read from a rating vector."""
        s_items = self._support_items[base]
        q_items = self._query_items[base]
        vector = np.asarray(rating_vector)
        return self.add_label_view(base, vector[s_items], vector[q_items])

    def __len__(self) -> int:
        return len(self._view_base)

    @staticmethod
    def _pack(
        arrays: list[np.ndarray], dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray]:
        lens = np.fromiter((a.size for a in arrays), dtype=_OFFSET_DTYPE, count=len(arrays))
        offsets = np.zeros(len(arrays) + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(lens, out=offsets[1:])
        pool = (
            np.concatenate(arrays).astype(dtype, copy=False)
            if arrays
            else np.empty(0, dtype=dtype)
        )
        return pool, offsets

    def build(self) -> TaskCorpus:
        if not self._view_base:
            raise ValueError("empty corpus")
        support_items, support_offsets = self._pack(self._support_items, _INDEX_DTYPE)
        query_items, query_offsets = self._pack(self._query_items, _INDEX_DTYPE)
        support_labels, support_label_offsets = self._pack(
            self._support_labels, _LABEL_DTYPE
        )
        query_labels, query_label_offsets = self._pack(self._query_labels, _LABEL_DTYPE)
        return TaskCorpus(
            content=self.content,
            user_rows=np.asarray(self._user_rows, dtype=_INDEX_DTYPE),
            support_items=support_items,
            support_offsets=support_offsets,
            query_items=query_items,
            query_offsets=query_offsets,
            view_base=np.asarray(self._view_base, dtype=_INDEX_DTYPE),
            support_labels=support_labels,
            support_label_offsets=support_label_offsets,
            query_labels=query_labels,
            query_label_offsets=query_label_offsets,
        )
