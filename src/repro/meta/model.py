"""The preference prediction model of Eq. (11).

``f(θ_e, θ_l, c_u, c_i)``: two fully-connected embedding layers map the user
content vector ``c_u`` and the item content vector ``c_i`` into dense
embeddings ``x_u`` and ``x_i``; their concatenation feeds a multi-layer
neural network whose sigmoid head predicts the interaction probability.

The model is purely functional (parameters live in a flat dict), so MAML
fast weights, fine-tuning and evaluation all reuse the same forward code.

It follows the stacked-parameter contract of :mod:`repro.nn`: parameters may
carry a leading task axis ``[T, ...]`` (possibly only for a subset of keys —
MeLU keeps embeddings global) against inputs of shape ``(T, batch, C)``, in
which case predictions are ``(T, batch)``, losses are per-task vectors and
gradients keep the task axis.  This is what lets MAML adapt a whole
meta-batch of tasks in one numpy pass.

The content inputs additionally support the *broadcast-user* form of the
packed corpus data path (:mod:`repro.meta.corpus`): user content of shape
``(T, 1, C)`` against item content ``(T, batch, C)``.  Each task's single
user row is embedded once and its embedding broadcast across the item rows
— the per-row copies of the dense layout (``np.repeat`` over the support
set) never exist, and the user-embedding GEMM shrinks by the batch width.
The backward pass sums the broadcast gradient over the item axis, which is
exactly the dense computation reassociated (identical to float rounding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.nn.losses import binary_cross_entropy, binary_cross_entropy_tasks
from repro.nn.module import Grads, Params, mlp
from repro.nn.layers import Linear, Tanh
from repro.nn.module import Sequential
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class PreferenceModelConfig:
    """Sizes of the preference network.

    ``dtype`` is the parameter (and intended activation) dtype.  The meta
    stack runs float32 end to end — preference probabilities live in [0, 1]
    and the narrower dtype halves every GEMM's bandwidth; pass
    ``dtype=np.float64`` for gradient checking against numerical
    differentiation.
    """

    content_dim: int
    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (64, 32)
    dtype: np.dtype | type = np.float32

    def __post_init__(self) -> None:
        if self.content_dim <= 0 or self.embed_dim <= 0:
            raise ValueError("dimensions must be positive")
        if any(h <= 0 for h in self.hidden_dims):
            raise ValueError("hidden dims must be positive")


def _broadcast_user(xu: np.ndarray, xi: np.ndarray) -> tuple[np.ndarray, bool]:
    """Broadcast a per-task single user embedding across the item rows."""
    if (
        xu.ndim == xi.ndim
        and xu.ndim >= 2
        and xu.shape[-2] == 1
        and xi.shape[-2] != 1
    ):
        return np.broadcast_to(xu, xi.shape[:-1] + (xu.shape[-1],)), True
    return xu, False


class PreferenceModel:
    """Content-based preference predictor with explicit gradients.

    Parameter names are prefixed ``user_embed.``, ``item_embed.`` and
    ``mlp.``; :meth:`decision_params` exposes the MeLU-style split between
    embedding parameters (kept global) and decision parameters (locally
    adapted), which callers may use for partial inner-loop updates.
    """

    def __init__(self, config: PreferenceModelConfig):
        self.config = config
        self.user_embed = Sequential([Linear(config.content_dim, config.embed_dim), Tanh()])
        self.item_embed = Sequential([Linear(config.content_dim, config.embed_dim), Tanh()])
        self.mlp = mlp(
            [2 * config.embed_dim, *config.hidden_dims, 1],
            activation="relu",
            out_activation="sigmoid",
        )

    # ------------------------------------------------------------------
    def init_params(self, rng: int | np.random.Generator | None = None) -> Params:
        gen = ensure_rng(rng)
        dtype = np.dtype(self.config.dtype)
        params: Params = {}
        for prefix, module in (
            ("user_embed", self.user_embed),
            ("item_embed", self.item_embed),
            ("mlp", self.mlp),
        ):
            for name, value in module.init_params(gen).items():
                params[f"{prefix}.{name}"] = value.astype(dtype)
        return params

    @staticmethod
    def _sub(params: Params, prefix: str) -> Params:
        dot = prefix + "."
        return {k[len(dot):]: v for k, v in params.items() if k.startswith(dot)}

    def decision_params(self, params: Params) -> list[str]:
        """Names of the decision-layer (MLP) parameters."""
        return [name for name in params if name.startswith("mlp.")]

    # ------------------------------------------------------------------
    def forward(
        self, params: Params, user_content: np.ndarray, item_content: np.ndarray
    ) -> tuple[np.ndarray, Any]:
        """Predict interaction probabilities for aligned (user, item) rows.

        Inputs of shape ``(batch, content_dim)`` give ``preds`` of shape
        ``(batch,)``; task-batched inputs ``(T, batch, content_dim)`` give
        ``(T, batch)`` — one independent model per task when the parameters
        are stacked, broadcasting for the parameters that are not.  User
        content ``(T, 1, C)`` against item content ``(T, batch, C)`` embeds
        each task's user once and broadcasts the embedding across the item
        rows (the packed-corpus form).
        """
        xu, cache_u = self.user_embed.forward(self._sub(params, "user_embed"), user_content)
        xi, cache_i = self.item_embed.forward(self._sub(params, "item_embed"), item_content)
        xu, user_broadcast = _broadcast_user(xu, xi)
        joint = np.concatenate([xu, xi], axis=-1)
        out, cache_m = self.mlp.forward(self._sub(params, "mlp"), joint)
        return out[..., 0], (cache_u, cache_i, cache_m, user_broadcast)

    def backward(self, params: Params, cache: Any, d_preds: np.ndarray) -> Grads:
        """Gradients of a scalar loss given ``d loss / d preds``.

        With task-batched inputs the returned gradients carry the leading
        task axis (per-task gradients) for every parameter.
        """
        cache_u, cache_i, cache_m, user_broadcast = cache
        d_out = d_preds[..., None]
        d_joint, grads_m = self.mlp.backward(self._sub(params, "mlp"), cache_m, d_out)
        e = self.config.embed_dim
        d_xu = d_joint[..., :e]
        if user_broadcast:
            d_xu = d_xu.sum(axis=-2, keepdims=True)
        # Content is not a parameter: neither embedding branch needs its
        # input gradient, which skips the content-wide dx GEMMs entirely.
        _, grads_u = self.user_embed.backward(
            self._sub(params, "user_embed"), cache_u, d_xu, need_input_grad=False
        )
        _, grads_i = self.item_embed.backward(
            self._sub(params, "item_embed"),
            cache_i,
            d_joint[..., e:],
            need_input_grad=False,
        )
        grads: Grads = {}
        for prefix, sub in (("user_embed", grads_u), ("item_embed", grads_i), ("mlp", grads_m)):
            for name, value in sub.items():
                grads[f"{prefix}.{name}"] = value
        return grads

    def predict(
        self, params: Params, user_content: np.ndarray, item_content: np.ndarray
    ) -> np.ndarray:
        """Inference-only forward."""
        preds, _ = self.forward(params, user_content, item_content)
        return preds

    # -- frozen-tower precompute ----------------------------------------
    def precompute_item_embeddings(
        self, params: Params, item_content: np.ndarray
    ) -> np.ndarray:
        """Item-tower outputs for every item row: ``(n_items, embed_dim)``.

        The item tower is user-invariant, so its output over the whole
        catalogue can be baked once (at save/refresh time) and served as a
        gather — see :mod:`repro.meta.serving`.  Returned float32
        C-contiguous, the layout the mmap artifact writer wants.
        """
        xi = self.item_embed(self._sub(params, "item_embed"), item_content)
        return np.ascontiguousarray(xi, dtype=np.float32)

    def precompute_user_embeddings(
        self, params: Params, user_content: np.ndarray
    ) -> np.ndarray:
        """User-tower outputs for every user row: ``(n_users, embed_dim)``."""
        xu = self.user_embed(self._sub(params, "user_embed"), user_content)
        return np.ascontiguousarray(xu, dtype=np.float32)

    def forward_from_item_embeddings(
        self,
        params: Params,
        user_content: np.ndarray,
        item_embeds: np.ndarray,
        user_embeds: np.ndarray | None = None,
    ) -> np.ndarray:
        """Backward-free scoring from precomputed item-tower outputs.

        ``item_embeds`` rows are gathered from a
        :meth:`precompute_item_embeddings` table; the user side is embedded
        live from ``user_content`` unless ``user_embeds`` (rows of a
        :meth:`precompute_user_embeddings` table) is given.  Supports the
        same broadcast-user form as :meth:`forward` (``(..., 1, C)`` user
        content against ``(..., batch, E)`` item embeddings).  Bit-identical
        to the full forward whenever the tower parameters used to bake the
        table are the ones in ``params`` — the guard enforced by
        :mod:`repro.meta.serving`.
        """
        if user_embeds is None:
            xu = self.user_embed(self._sub(params, "user_embed"), user_content)
        else:
            xu = user_embeds
        xu, _ = _broadcast_user(xu, item_embeds)
        joint = np.concatenate([xu, item_embeds], axis=-1)
        out = self.mlp(self._sub(params, "mlp"), joint)
        return out[..., 0]

    # -- frozen-embedding decision path ---------------------------------
    def embed_joint(
        self, params: Params, user_content: np.ndarray, item_content: np.ndarray
    ) -> np.ndarray:
        """The concatenated embedding ``[x_u; x_i]`` feeding the MLP head.

        With MeLU's decision-only inner loop the embedding layers are
        frozen, so this can be computed once per adaptation and reused for
        every inner step (see :meth:`decision_loss_and_grads`).  Accepts
        the broadcast-user form (``(T, 1, C)`` user content) like
        :meth:`forward`.
        """
        xu = self.user_embed(self._sub(params, "user_embed"), user_content)
        xi = self.item_embed(self._sub(params, "item_embed"), item_content)
        xu, _ = _broadcast_user(xu, xi)
        return np.concatenate([xu, xi], axis=-1)

    def decision_loss_and_grads(
        self,
        params: Params,
        joint: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> tuple[float | np.ndarray, Grads]:
        """Loss and *decision-layer* gradients from a precomputed embedding.

        The counterpart of :meth:`loss_and_grads` for the restricted inner
        loop: only the MLP head runs forward/backward (the returned grads
        hold exactly the ``mlp.``-prefixed keys), skipping the frozen
        embedding layers entirely.  Numerically identical to the full pass
        restricted to those parameters.
        """
        out, cache_m = self.mlp.forward(self._sub(params, "mlp"), joint)
        preds = out[..., 0]
        if preds.ndim == 1 and mask is None:
            loss, d_preds = binary_cross_entropy(preds, labels)
        else:
            loss, d_preds = binary_cross_entropy_tasks(preds, labels, mask=mask)
        _, grads_m = self.mlp.backward(
            self._sub(params, "mlp"),
            cache_m,
            d_preds[..., None],
            need_input_grad=False,
        )
        return loss, {f"mlp.{name}": value for name, value in grads_m.items()}

    def loss_and_grads(
        self,
        params: Params,
        user_content: np.ndarray,
        item_content: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> tuple[float | np.ndarray, Grads]:
        """Mean BCE over the batch and gradients for every parameter.

        Labels may be soft (augmented ratings in [0, 1]).

        Task-batched inputs ``(T, batch, C)`` return per-task losses ``(T,)``
        and per-task gradients; each task's loss and gradient are normalized
        by that task's own element count.  ``mask`` (shape ``(T, batch)``,
        1 for real rows, 0 for padding) excludes padded rows from both.
        """
        preds, cache = self.forward(params, user_content, item_content)
        if preds.ndim == 1 and mask is None:
            loss, d_preds = binary_cross_entropy(preds, labels)
            return loss, self.backward(params, cache, d_preds)
        losses, d_preds = binary_cross_entropy_tasks(preds, labels, mask=mask)
        return losses, self.backward(params, cache, d_preds)
