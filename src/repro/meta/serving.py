"""Frozen-tower serving tables and the shared MAML serving surface.

The preference model's embedding towers are user-invariant at serving time
whenever the inner loop is MeLU-style decision-only: per-user fast weights
touch only ``mlp.*`` keys, so the ``content_dim -> embed_dim`` tower GEMM
re-runs identically on every request.  :class:`FrozenTowerTables` bakes
both tower outputs once — ``(n_items, E)`` and ``(n_users, E)`` float32
tables — and candidate scoring becomes a gather plus the MLP head.

Exactness is guarded, not assumed.  A table carries the *identity* of the
tower parameter arrays it was computed from; a request takes the fast path
only when the scoring parameter dict still holds those exact array objects.
The adaptation machinery makes this check sufficient:
:func:`~repro.nn.stacking.tile_params` and
:func:`~repro.nn.stacking.unstack_params` share non-adapted parameters *by
reference*, so decision-only fast weights alias the meta tower arrays,
while full adaptation (or a meta-refresh that rewrote the towers) yields
fresh arrays and falls back to the full forward — bit-identically, because
the fallback is the unchanged historical path.

The gather itself is bitwise-faithful for every multi-row request: on this
BLAS a row of an ``(n, C) @ (C, E)`` product equals the same row computed
in any ``(m, C) @ (C, E)`` product with ``m >= 2`` (single-row products go
through a GEMV kernel with a different reduction order), which is the same
row-count-invariance the uniform-width adaptation chunks already rely on.
Single-candidate requests therefore fall back to the full forward, and the
broadcast-user row of :meth:`MAMLServingMixin.score_with_state` is always
embedded live — a ``(1, C)`` product is identical in both paths.

:class:`MAMLServingMixin` also consolidates the previously duplicated
MeLU/MetaDPA serving surface (``adapt_user``/``adapt_users``/
``meta_refresh``/``score*``/``state_dict``) in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.meta.corpus import PackedContent, PackedContentMixin
from repro.meta.maml import (
    MAML,
    adapt_task_states,
    batched_candidate_scores,
    stream_refresh,
)
from repro.nn.module import Params

if TYPE_CHECKING:
    from repro.data.negative_sampling import EvalInstance
    from repro.data.tasks import PreferenceTask

__all__ = [
    "FrozenTowerTables",
    "MAMLServingMixin",
    "build_frozen_tower_tables",
    "ITEM_TABLE_KEY",
    "USER_TABLE_KEY",
]

_ITEM_PREFIX = "item_embed."
_USER_PREFIX = "user_embed."

#: Artifact member names (under the ``serving.table.`` namespace) the
#: tables are persisted as — see :meth:`repro.core.Recommender.save`.
ITEM_TABLE_KEY = "item_embeddings"
USER_TABLE_KEY = "user_embeddings"


def _tower_refs(params: Params, prefix: str) -> dict[str, np.ndarray]:
    return {k: v for k, v in params.items() if k.startswith(prefix)}


def _refs_current(refs: dict[str, np.ndarray], params: Params) -> bool:
    for key, value in refs.items():
        if params.get(key) is not value:
            return False
    return True


class FrozenTowerTables:
    """Baked tower outputs plus the identity of the weights they froze.

    ``item`` / ``user`` may be ``np.memmap`` views straight out of an
    uncompressed artifact — every consumer only gathers rows, so N shard
    workers share one page-cache copy and never materialize the tables.
    """

    __slots__ = ("item", "user", "_item_refs", "_user_refs")

    def __init__(
        self,
        item: np.ndarray,
        user: np.ndarray,
        item_refs: dict[str, np.ndarray],
        user_refs: dict[str, np.ndarray],
    ):
        self.item = item
        self.user = user
        self._item_refs = item_refs
        self._user_refs = user_refs

    def item_current(self, params: Params) -> bool:
        """Whether ``params`` still holds the exact item-tower arrays the
        item table was baked from (object identity, not value equality)."""
        return _refs_current(self._item_refs, params)

    def user_current(self, params: Params) -> bool:
        """Identity check for the user-tower arrays behind ``user``."""
        return _refs_current(self._user_refs, params)


def build_frozen_tower_tables(
    maml: MAML, content: PackedContent
) -> FrozenTowerTables:
    """Bake both tower tables from the current meta-parameters."""
    params = maml.params
    return FrozenTowerTables(
        item=maml.model.precompute_item_embeddings(params, content.item),
        user=maml.model.precompute_user_embeddings(params, content.user),
        item_refs=_tower_refs(params, _ITEM_PREFIX),
        user_refs=_tower_refs(params, _USER_PREFIX),
    )


class MAMLServingMixin(PackedContentMixin):
    """The serving surface shared by every MAML-backed recommender.

    Host classes provide ``self.maml`` (set by ``fit``/``load_state_dict``),
    :meth:`_build_model`, and the :attr:`_finetune_steps` /
    :attr:`_maml_config` hooks; the mixin supplies adaptation, streaming
    refresh, table-accelerated scoring and artifact (de)serialization.
    """

    maml: MAML | None
    _tables: FrozenTowerTables | None = None
    _stream_corpus = None

    # -- host hooks -----------------------------------------------------
    @property
    def _finetune_steps(self) -> int:
        """Inner steps used for per-user fine-tuning at serving time."""
        raise NotImplementedError

    @property
    def _maml_config(self):
        """The :class:`~repro.meta.maml.MAMLConfig` to rebuild with."""
        raise NotImplementedError

    def _build_model(self, content_dim: int):
        raise NotImplementedError

    def _require_maml(self) -> MAML:
        if self.maml is None:
            raise RuntimeError("fit() must be called before serving")
        return self.maml

    # -- frozen-tower tables --------------------------------------------
    def invalidate_embedding_tables(self) -> None:
        """Drop the baked tables; they rebake lazily on next use."""
        self._tables = None

    def _scoring_tables(self) -> FrozenTowerTables:
        """Current tables, rebaked if any tower parameter was replaced.

        Staleness is the same identity check the per-request guard uses,
        so a meta-refresh that only moved ``mlp.*`` keys (decision-only
        configs) keeps the baked tables — nothing it changed is in them.
        """
        maml = self._require_maml()
        tables = self._tables
        if (
            tables is None
            or not tables.item_current(maml.params)
            or not tables.user_current(maml.params)
        ):
            tables = build_frozen_tower_tables(maml, self._packed_content())
            self._tables = tables
        return tables

    def serving_tables(self) -> dict[str, np.ndarray]:
        """Arrays for :meth:`Recommender.save` to bake into the artifact."""
        if self.maml is None:
            return {}
        tables = self._scoring_tables()
        return {ITEM_TABLE_KEY: tables.item, USER_TABLE_KEY: tables.user}

    def attach_serving_tables(self, tables: dict[str, np.ndarray]) -> None:
        """Adopt artifact-baked tables (zero-copy for memmap loads).

        Called by :meth:`Recommender.load` after ``load_state_dict``; the
        tables in an artifact were computed from the parameters stored
        beside them, so they are current for the freshly loaded ``maml``.
        Pre-v2 artifacts carry no tables — the (empty) mapping leaves
        ``_tables`` unset and the first scoring call bakes them once.
        """
        item = tables.get(ITEM_TABLE_KEY)
        user = tables.get(USER_TABLE_KEY)
        if item is None or user is None:
            return
        maml = self._require_maml()
        content = self._packed_content()
        embed_dim = maml.model.config.embed_dim
        if item.shape != (content.item.shape[0], embed_dim):
            raise ValueError(
                f"item table shape {item.shape} does not match "
                f"({content.item.shape[0]}, {embed_dim})"
            )
        if user.shape != (content.user.shape[0], embed_dim):
            raise ValueError(
                f"user table shape {user.shape} does not match "
                f"({content.user.shape[0]}, {embed_dim})"
            )
        self._tables = FrozenTowerTables(
            item=item,
            user=user,
            item_refs=_tower_refs(maml.params, _ITEM_PREFIX),
            user_refs=_tower_refs(maml.params, _USER_PREFIX),
        )

    # -- adaptation -----------------------------------------------------
    def adapt_user(self, task: "PreferenceTask | None"):
        """Fine-tune the meta-initialization on one user's support set.

        This is the expensive per-user step of meta-testing (Sec. IV-C);
        the serving layer caches its result so repeat requests skip it.
        """
        self._require_maml()
        if task is None or task.n_support == 0 or self._finetune_steps == 0:
            return None
        return self.adapt_users([task])[0]

    def adapt_users(self, tasks):
        """Fine-tune a whole batch of users in one vectorized inner loop."""
        maml = self._require_maml()
        content = self._packed_content()
        return adapt_task_states(
            maml, content.user, content.item, tasks, self._finetune_steps
        )

    def meta_refresh(self, tasks, meta_lr: float = 0.1, steps: int | None = None):
        """Reptile-refresh the meta-initialization from observed tasks.

        If the refresh rewrote any tower parameter (full-adaptation
        configs), the baked tables are dropped and rebaked on next use;
        decision-only refreshes leave them valid — the identity guard
        proves nothing in them changed.
        """
        maml = self._require_maml()
        self._stream_corpus, info = stream_refresh(
            maml,
            self._packed_content(),
            tasks,
            corpus=self._stream_corpus,
            meta_lr=meta_lr,
            steps=self._finetune_steps if steps is None else steps,
        )
        tables = self._tables
        if tables is not None and not (
            tables.item_current(maml.params) and tables.user_current(maml.params)
        ):
            self.invalidate_embedding_tables()
        return info

    # -- scoring --------------------------------------------------------
    def score_with_state(
        self,
        state,
        instance: "EvalInstance",
        task: "PreferenceTask | None" = None,
    ) -> np.ndarray:
        maml = self._require_maml()
        content = self._packed_content()
        params = state if state is not None else maml.params
        candidates = instance.candidates
        # (1, C) user row: embedded live in both paths (a single-row
        # product is GEMV-kernelled and must not be served from the baked
        # user table), then broadcast across the candidates.
        user_row = content.user[instance.user_row][None, :]
        tables = self._scoring_tables()
        if candidates.size >= 2 and tables.item_current(params):
            return maml.model.forward_from_item_embeddings(
                params, user_row, tables.item[candidates]
            )
        return maml.predict(user_row, content.item[candidates], params=params)

    def score_with_state_batch(self, states, instances) -> list[np.ndarray]:
        maml = self._require_maml()
        content = self._packed_content()
        return batched_candidate_scores(
            maml,
            content.user,
            content.item,
            states,
            instances,
            tables=self._scoring_tables(),
        )

    def score(
        self, task: "PreferenceTask | None", instance: "EvalInstance"
    ) -> np.ndarray:
        return self.score_with_state(self.adapt_user(task), instance)

    def score_batch(self, tasks, instances) -> list[np.ndarray]:
        """Adapt every evaluated user in one batched inner loop, then score."""
        if len(tasks) != len(instances):
            raise ValueError("tasks and instances must align")
        return self.score_with_state_batch(self.adapt_users(tasks), instances)

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> Params:
        return dict(self._require_maml().params)

    def load_state_dict(self, state: Params) -> None:
        model = self._build_model(self.serving.user_content.shape[1])
        self.maml = MAML(model, self._maml_config, seed=self.seed)
        self.maml.params = {
            name: np.asarray(value) for name, value in state.items()
        }
        self._tables = None
