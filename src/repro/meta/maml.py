"""Model-agnostic meta-learning (Finn et al., 2017) over preference tasks.

The inner loop locally adapts parameters on a task's support set (Eq. 1);
the outer loop updates the meta-initialization from the query-set loss.  We
use the first-order approximation (FOMAML): the query gradient evaluated at
the adapted parameters is applied to the meta-parameters directly.  An
optional MeLU-style restriction adapts only the decision (MLP) layers in the
inner loop while embeddings stay global.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.meta.model import PreferenceModel
from repro.nn.module import Grads, Params
from repro.nn.optim import Adam, add_grads, clip_grad_norm
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MAMLConfig:
    """MAML hyper-parameters.

    ``inner_lr`` is α of Eq. (1); ``local_only_decision`` restricts the
    inner-loop update to the MLP decision layers (MeLU's scheme).
    """

    inner_lr: float = 0.05
    inner_steps: int = 2
    outer_lr: float = 1e-3
    meta_batch_size: int = 16
    grad_clip: float = 5.0
    local_only_decision: bool = False

    def __post_init__(self) -> None:
        if self.inner_lr <= 0 or self.outer_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps <= 0 or self.meta_batch_size <= 0:
            raise ValueError("inner_steps and meta_batch_size must be positive")


@dataclass(frozen=True)
class TaskBatchItem:
    """Materialized arrays for one task: contents and labels, support+query."""

    support_user: np.ndarray
    support_item: np.ndarray
    support_labels: np.ndarray
    query_user: np.ndarray
    query_item: np.ndarray
    query_labels: np.ndarray


class MAML:
    """First-order MAML driving a :class:`PreferenceModel`."""

    def __init__(
        self,
        model: PreferenceModel,
        config: MAMLConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        self.model = model
        self.config = config or MAMLConfig()
        self._rng = ensure_rng(seed)
        self.params: Params = model.init_params(self._rng)
        self._optimizer = Adam(self.params, lr=self.config.outer_lr)
        self._adaptable: set[str] | None = None
        if self.config.local_only_decision:
            self._adaptable = set(model.decision_params(self.params))

    # ------------------------------------------------------------------
    def adapt(self, item: TaskBatchItem, params: Params | None = None) -> Params:
        """Inner loop: returns task-adapted fast weights (meta params untouched)."""
        fast = dict(params if params is not None else self.params)
        for _ in range(self.config.inner_steps):
            _, grads = self.model.loss_and_grads(
                fast, item.support_user, item.support_item, item.support_labels
            )
            for name, grad in grads.items():
                if self._adaptable is not None and name not in self._adaptable:
                    continue
                fast[name] = fast[name] - self.config.inner_lr * grad
        return fast

    def meta_step(self, batch: Sequence[TaskBatchItem]) -> float:
        """One outer-loop update over a batch of tasks; returns mean query loss."""
        if not batch:
            raise ValueError("empty task batch")
        meta_grads: Grads = {}
        total_loss = 0.0
        for item in batch:
            fast = self.adapt(item)
            loss, grads = self.model.loss_and_grads(
                fast, item.query_user, item.query_item, item.query_labels
            )
            total_loss += loss
            add_grads(meta_grads, grads, scale=1.0 / len(batch))
        clip_grad_norm(meta_grads, self.config.grad_clip)
        self._optimizer.step(meta_grads)
        return total_loss / len(batch)

    def fit(
        self,
        tasks: Sequence[TaskBatchItem],
        epochs: int,
        shuffle: bool = True,
    ) -> list[float]:
        """Meta-train for ``epochs`` passes over ``tasks``; returns loss trace."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        history: list[float] = []
        order = np.arange(len(tasks))
        for _ in range(epochs):
            if shuffle:
                self._rng.shuffle(order)
            epoch_loss = 0.0
            n_batches = 0
            bs = self.config.meta_batch_size
            for start in range(0, len(order), bs):
                batch = [tasks[i] for i in order[start : start + bs]]
                epoch_loss += self.meta_step(batch)
                n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        return history

    # ------------------------------------------------------------------
    def finetune(self, item: TaskBatchItem, steps: int | None = None) -> Params:
        """Meta-testing adaptation: like :meth:`adapt` with a step override."""
        if steps is None:
            return self.adapt(item)
        fast = dict(self.params)
        for _ in range(steps):
            _, grads = self.model.loss_and_grads(
                fast, item.support_user, item.support_item, item.support_labels
            )
            for name, grad in grads.items():
                if self._adaptable is not None and name not in self._adaptable:
                    continue
                fast[name] = fast[name] - self.config.inner_lr * grad
        return fast

    def predict(
        self,
        user_content: np.ndarray,
        item_content: np.ndarray,
        params: Params | None = None,
    ) -> np.ndarray:
        """Score aligned (user, item) content rows with meta or fast weights."""
        return self.model.predict(
            params if params is not None else self.params, user_content, item_content
        )


def batched_candidate_scores(
    maml: MAML,
    user_content: np.ndarray,
    item_content: np.ndarray,
    states: Sequence[Params | None],
    instances: Sequence,
) -> list[np.ndarray]:
    """Score many eval instances in as few forwards as possible.

    Instances sharing the same adapted parameter dict (by identity — e.g.
    un-adapted requests all using the meta-initialization, or several
    requests for one cached user) are coalesced into a single ``predict``
    over their concatenated candidate contents.  This is the vectorized
    backend of ``score_with_state_batch`` for MAML-based methods.
    """
    if len(states) != len(instances):
        raise ValueError("states and instances must align")
    resolved = [s if s is not None else maml.params for s in states]
    groups: dict[int, list[int]] = {}
    for idx, params in enumerate(resolved):
        groups.setdefault(id(params), []).append(idx)
    results: list[np.ndarray | None] = [None] * len(instances)
    for indices in groups.values():
        params = resolved[indices[0]]
        sizes = [instances[i].candidates.size for i in indices]
        users = np.concatenate(
            [
                np.repeat(
                    user_content[instances[i].user_row][None, :],
                    instances[i].candidates.size,
                    axis=0,
                )
                for i in indices
            ]
        )
        items = np.concatenate(
            [item_content[instances[i].candidates] for i in indices]
        )
        preds = maml.predict(users, items, params=params)
        offset = 0
        for i, size in zip(indices, sizes):
            results[i] = preds[offset : offset + size]
            offset += size
    return results  # type: ignore[return-value]


def subsample_support(
    task,
    rng: np.random.Generator,
    max_positives: int = 3,
    neg_per_pos: int = 2,
):
    """Few-shot view of a task: a handful of support positives/negatives.

    Cold-start meta-testing adapts on 1–4 ratings, while warm training tasks
    carry much larger support sets.  Adding subsampled views to the
    meta-training stream aligns the two regimes so the learned
    initialization is good at *few-shot* adaptation.  Returns a new
    :class:`repro.data.tasks.PreferenceTask` with the same query set.
    """
    from dataclasses import replace

    pos_mask = task.support_labels > 0.5
    positives = task.support_items[pos_mask]
    negatives = task.support_items[~pos_mask]
    if positives.size == 0:
        return task
    n_pos = min(max_positives, positives.size)
    keep_pos = rng.choice(positives, size=n_pos, replace=False)
    n_neg = min(neg_per_pos * n_pos, negatives.size)
    keep_neg = (
        rng.choice(negatives, size=n_neg, replace=False)
        if n_neg > 0
        else np.array([], dtype=int)
    )
    items = np.concatenate([keep_pos, keep_neg]).astype(int)
    labels = np.concatenate([np.ones(n_pos), np.zeros(n_neg)])
    return replace(task, support_items=items, support_labels=labels)


def materialize_task(
    user_content: np.ndarray,
    item_content: np.ndarray,
    user_row: int,
    support_items: np.ndarray,
    support_labels: np.ndarray,
    query_items: np.ndarray,
    query_labels: np.ndarray,
) -> TaskBatchItem:
    """Turn index-based task data into dense arrays for the model.

    The user's content row is broadcast against each item's content row.
    """
    cu = user_content[user_row]
    return TaskBatchItem(
        support_user=np.repeat(cu[None, :], support_items.size, axis=0),
        support_item=item_content[support_items],
        support_labels=np.asarray(support_labels, dtype=float),
        query_user=np.repeat(cu[None, :], query_items.size, axis=0),
        query_item=item_content[query_items],
        query_labels=np.asarray(query_labels, dtype=float),
    )
