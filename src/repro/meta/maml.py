"""Model-agnostic meta-learning (Finn et al., 2017) over preference tasks.

The inner loop locally adapts parameters on a task's support set (Eq. 1);
the outer loop updates the meta-initialization from the query-set loss.  We
use the first-order approximation (FOMAML): the query gradient evaluated at
the adapted parameters is applied to the meta-parameters directly.  An
optional MeLU-style restriction adapts only the decision (MLP) layers in the
inner loop while embeddings stay global.

The hot path is *task-batched*: a meta-batch of tasks is padded into one
:class:`TaskBatch` and adapted in a single vectorized inner loop over
stacked fast weights (``[T, ...]`` parameter arrays, see
:mod:`repro.nn.stacking`), so both meta-training (:meth:`MAML.meta_step`)
and meta-testing many cold-start users at once (:meth:`MAML.adapt_many`)
cost one numpy pass per inner step instead of one per task.  The scalar
per-task path (:meth:`MAML.adapt` with ``config.vectorize=False``) is kept
as the reference implementation the equivalence tests check against.

The *data* path is packed on top of that: handed a
:class:`~repro.meta.corpus.TaskCorpus`, :meth:`MAML.fit` iterates bucketed
epoch batches of view ids and each meta-step fancy-indexes the packed
index/label pools into reused scratch buffers, gathering content rows only
inside the step (:meth:`MAML.meta_step_corpus`) — no dense ``(T, S, C)``
content outlives a step and the per-batch Python padding loops of
:meth:`TaskBatch.from_items` disappear from training entirely.
``MAMLConfig.packed=False`` keeps the materialized :class:`TaskBatchItem`
reference data path (same schedules, same float32 content) that the
equivalence suite pins the packed path against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.meta.corpus import (
    BatchScratch,
    PackedContent,
    TaskCorpus,
    TaskCorpusBuilder,
    pack_content,
)
from repro.meta.model import PreferenceModel
from repro.nn.module import Grads, Params
from repro.nn.optim import Adam, add_grads, clip_grad_norm, mean_task_grads
from repro.nn.stacking import pad_axis, stack_params, tile_params, unstack_params
from repro.obs import metrics as obs_metrics
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MAMLConfig:
    """MAML hyper-parameters.

    ``inner_lr`` is α of Eq. (1); ``local_only_decision`` restricts the
    inner-loop update to the MLP decision layers (MeLU's scheme);
    ``vectorize=False`` falls back to the scalar one-task-at-a-time loops
    (the reference implementation — slower, numerically equivalent);
    ``packed=False`` falls back to the materialized :class:`TaskBatchItem`
    data path when training from a :class:`~repro.meta.corpus.TaskCorpus`
    (same schedules, dense content copies — the reference the packed
    fancy-indexing path is pinned against).
    """

    inner_lr: float = 0.05
    inner_steps: int = 2
    outer_lr: float = 1e-3
    meta_batch_size: int = 16
    grad_clip: float = 5.0
    local_only_decision: bool = False
    vectorize: bool = True
    packed: bool = True

    def __post_init__(self) -> None:
        if self.inner_lr <= 0 or self.outer_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps <= 0 or self.meta_batch_size <= 0:
            raise ValueError("inner_steps and meta_batch_size must be positive")


@dataclass(frozen=True)
class TaskBatchItem:
    """Materialized arrays for one task: contents and labels, support+query."""

    support_user: np.ndarray
    support_item: np.ndarray
    support_labels: np.ndarray
    query_user: np.ndarray
    query_item: np.ndarray
    query_labels: np.ndarray


def _pad_rows(arrays: Sequence[np.ndarray], width: int) -> np.ndarray:
    """Stack variable-length arrays into ``(T, width, ...)`` with zero padding.

    Dtype-preserving (a float32 corpus stays float32 through padding); each
    row is zero-padded with :func:`~repro.nn.stacking.pad_axis`.
    """
    return np.stack([pad_axis(np.asarray(a), 0, width) for a in arrays])


def uniform_width_chunks(
    widths: np.ndarray, order: np.ndarray, max_chunk: int
) -> list[np.ndarray]:
    """Split a width-sorted index ``order`` into same-width runs ≤ ``max_chunk``.

    Stacking tasks of one support width is bit-identical to adapting each
    alone — the per-task GEMM rows are unchanged by the extra task axis —
    but *padding* a mixed-width chunk perturbs the low-order bits of every
    shorter task's updates.  Cutting chunks at width boundaries therefore
    makes adapted fast weights a pure function of ``(params, task)``,
    independent of which other tasks happen to share the flush; the sharded
    serving layer's bit-equivalence guarantee rests on this.
    """
    chunks: list[np.ndarray] = []
    start = 0
    for i in range(1, order.size + 1):
        if (
            i == order.size
            or widths[order[i]] != widths[order[start]]
            or i - start >= max_chunk
        ):
            chunks.append(order[start:i])
            start = i
    return chunks


@dataclass(frozen=True)
class TaskBatch:
    """A whole meta-batch of tasks as padded ``[T, ...]`` arrays.

    Ragged support/query sets are zero-padded to the largest task in the
    batch; the ``*_mask`` arrays (1 = real row, 0 = padding) keep padded
    rows out of every loss and gradient.  Built once per meta-batch with
    :meth:`from_items`, consumed by the vectorized MAML paths.
    """

    support_user: np.ndarray  # (T, S, C)
    support_item: np.ndarray  # (T, S, C)
    support_labels: np.ndarray  # (T, S)
    support_mask: np.ndarray  # (T, S)
    query_user: np.ndarray  # (T, Q, C)
    query_item: np.ndarray  # (T, Q, C)
    query_labels: np.ndarray  # (T, Q)
    query_mask: np.ndarray  # (T, Q)

    def __len__(self) -> int:
        return self.support_labels.shape[0]

    @classmethod
    def from_items(cls, items: Sequence[TaskBatchItem]) -> "TaskBatch":
        if not items:
            raise ValueError("empty task batch")
        s_width = max(max(i.support_labels.size for i in items), 1)
        q_width = max(max(i.query_labels.size for i in items), 1)
        support_labels = _pad_rows([i.support_labels for i in items], s_width)
        query_labels = _pad_rows([i.query_labels for i in items], q_width)
        s_mask = np.zeros((len(items), s_width), dtype=support_labels.dtype)
        q_mask = np.zeros((len(items), q_width), dtype=query_labels.dtype)
        for t, item in enumerate(items):
            s_mask[t, : item.support_labels.size] = 1.0
            q_mask[t, : item.query_labels.size] = 1.0
        return cls(
            support_user=_pad_rows([i.support_user for i in items], s_width),
            support_item=_pad_rows([i.support_item for i in items], s_width),
            support_labels=support_labels,
            support_mask=s_mask,
            query_user=_pad_rows([i.query_user for i in items], q_width),
            query_item=_pad_rows([i.query_item for i in items], q_width),
            query_labels=query_labels,
            query_mask=q_mask,
        )


class MAML:
    """First-order MAML driving a :class:`PreferenceModel`."""

    def __init__(
        self,
        model: PreferenceModel,
        config: MAMLConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        self.model = model
        self.config = config or MAMLConfig()
        self._rng = ensure_rng(seed)
        self.params: Params = model.init_params(self._rng)
        self._optimizer = Adam(self.params, lr=self.config.outer_lr)
        self._scratch = BatchScratch()
        # Training spans report through the process-global registry:
        # trainers are built deep inside methods, so per-instance wiring
        # would never reach the CLI/bench edges that read the metrics.
        self._metrics = obs_metrics()
        self._adaptable: set[str] | None = None
        if self.config.local_only_decision:
            self._adaptable = set(model.decision_params(self.params))
        # With frozen embeddings, the inner loop only needs the MLP head:
        # the support embedding is computed once per adaptation and reused
        # across every inner step (a large win — the embedding GEMMs over
        # high-dimensional content dominate the full backward pass).
        self._decision_only = (
            self._adaptable is not None
            and hasattr(model, "embed_joint")
            and hasattr(model, "decision_loss_and_grads")
            and all(name.startswith("mlp.") for name in self._adaptable)
        )

    @property
    def _adaptable_keys(self) -> set[str]:
        """Parameter names the inner loop may update."""
        if self._adaptable is not None:
            return set(self._adaptable)
        return set(self.params)

    # ------------------------------------------------------------------
    def adapt(
        self,
        item: TaskBatchItem,
        params: Params | None = None,
        steps: int | None = None,
    ) -> Params:
        """Inner loop: returns task-adapted fast weights (meta params untouched).

        This is the single scalar implementation of Eq. (1) — meta-training
        adaptation and meta-testing fine-tuning (:meth:`finetune`) both run
        through it; ``steps`` overrides ``config.inner_steps``.
        """
        fast = dict(params if params is not None else self.params)
        n_steps = self.config.inner_steps if steps is None else steps
        if self._decision_only:
            joint = self.model.embed_joint(fast, item.support_user, item.support_item)
            for _ in range(n_steps):
                _, grads = self.model.decision_loss_and_grads(
                    fast, joint, item.support_labels
                )
                for name, grad in grads.items():
                    fast[name] = fast[name] - self.config.inner_lr * grad
            return fast
        for _ in range(n_steps):
            _, grads = self.model.loss_and_grads(
                fast, item.support_user, item.support_item, item.support_labels
            )
            for name, grad in grads.items():
                if self._adaptable is not None and name not in self._adaptable:
                    continue
                fast[name] = fast[name] - self.config.inner_lr * grad
        return fast

    def adapt_batch(
        self,
        batch: TaskBatch,
        params: Params | None = None,
        steps: int | None = None,
    ) -> Params:
        """Vectorized inner loop over a whole padded meta-batch of tasks.

        Returns one *stacked* fast-weight dict: every adaptable parameter
        carries a leading ``[T, ...]`` task axis while non-adaptable
        parameters (MeLU's global embeddings) stay unstacked and shared by
        reference.  Each of the ``steps`` inner updates is a single numpy
        pass over all ``T`` tasks; padding rows are masked out of every
        gradient, so the result matches running :meth:`adapt` per task.
        """
        return self._adapt_stacked(
            batch.support_user,
            batch.support_item,
            batch.support_labels,
            batch.support_mask,
            len(batch),
            params=params,
            steps=steps,
        )

    def _adapt_stacked(
        self,
        support_user: np.ndarray,
        support_item: np.ndarray,
        support_labels: np.ndarray,
        support_mask: np.ndarray,
        n_tasks: int,
        params: Params | None = None,
        steps: int | None = None,
    ) -> Params:
        """The vectorized inner loop over prepared ``[T, ...]`` arrays.

        Shared by the materialized (:class:`TaskBatch`) and packed-corpus
        data paths; ``support_user`` may be the broadcast-user form
        ``(T, 1, C)`` (see :class:`~repro.meta.model.PreferenceModel`).
        """
        base = params if params is not None else self.params
        adaptable = self._adaptable_keys & set(base)
        fast = tile_params(base, n_tasks, keys=adaptable)
        n_steps = self.config.inner_steps if steps is None else steps
        if self._decision_only:
            # Frozen embeddings: embed every task's support set once (the
            # embedding weights are shared and never change inside the inner
            # loop), then iterate only the stacked MLP head.
            joint = self.model.embed_joint(fast, support_user, support_item)
            for _ in range(n_steps):
                _, grads = self.model.decision_loss_and_grads(
                    fast, joint, support_labels, mask=support_mask
                )
                for name in adaptable:
                    grad = grads[name]
                    grad *= self.config.inner_lr
                    fast[name] -= grad
            return fast
        for _ in range(n_steps):
            _, grads = self.model.loss_and_grads(
                fast,
                support_user,
                support_item,
                support_labels,
                mask=support_mask,
            )
            for name in adaptable:
                grad = grads[name]
                grad *= self.config.inner_lr
                fast[name] -= grad
        return fast

    def adapt_many(
        self,
        items: Sequence[TaskBatchItem],
        steps: int | None = None,
        max_chunk: int = 64,
    ) -> list[Params]:
        """Adapt many independent tasks, vectorized in chunks of ``max_chunk``.

        The batched counterpart of calling :meth:`adapt` (or
        :meth:`finetune`) in a loop — this is the serving-side primitive
        that fine-tunes a whole flush of cold-start users at once.  Returns
        one ordinary fast-weight dict per task (views into the stacked
        storage; shared non-adapted weights stay shared).  ``max_chunk``
        bounds the stacked ``(T, S, C)`` scratch memory; tasks are grouped
        into same-support-width chunks (see :func:`uniform_width_chunks`) so
        every chunk stacks padding-free and each task's fast weights are
        bit-identical to a solo :meth:`adapt` — independent of which other
        tasks share the flush.
        """
        if max_chunk <= 0:
            raise ValueError("max_chunk must be positive")
        if not self.config.vectorize:
            return [self.adapt(item, steps=steps) for item in items]
        widths = np.array([item.support_labels.size for item in items])
        order = np.argsort(widths, kind="stable")
        results: list[Params | None] = [None] * len(items)
        for indices in uniform_width_chunks(widths, order, max_chunk):
            if len(indices) == 1:
                results[indices[0]] = self.adapt(items[indices[0]], steps=steps)
                continue
            chunk = [items[i] for i in indices]
            fast = self.adapt_batch(TaskBatch.from_items(chunk), steps=steps)
            # copy=True: the per-task dicts may be cached long past this
            # chunk (serving LRU) and must not pin the stacked block alive.
            parts = unstack_params(
                fast,
                len(chunk),
                stacked_keys=self._adaptable_keys & set(fast),
                copy=True,
            )
            for i, part in zip(indices, parts):
                results[i] = part
        return results  # type: ignore[return-value]

    def meta_step(self, batch: Sequence[TaskBatchItem]) -> float:
        """One outer-loop update over a batch of tasks; returns mean query loss.

        The whole meta-batch is adapted in one vectorized inner loop and its
        FOMAML query gradients are taken in one backward pass (per-task
        gradients averaged over the task axis).  ``config.vectorize=False``
        selects the equivalent scalar reference loop.
        """
        if not batch:
            raise ValueError("empty task batch")
        if not self.config.vectorize:
            return self._meta_step_loop(batch)
        task_batch = TaskBatch.from_items(batch)
        fast = self.adapt_batch(task_batch)
        losses, grads = self.model.loss_and_grads(
            fast,
            task_batch.query_user,
            task_batch.query_item,
            task_batch.query_labels,
            mask=task_batch.query_mask,
        )
        meta_grads = mean_task_grads(grads)
        clip_grad_norm(meta_grads, self.config.grad_clip)
        self._optimizer.step(meta_grads)
        return float(np.mean(losses))

    def meta_step_corpus(self, corpus: TaskCorpus, view_ids: np.ndarray) -> float:
        """One outer-loop update straight from the packed corpus.

        The batch is assembled by fancy-indexing the corpus pools into
        reused scratch buffers (no per-task Python work), content rows are
        gathered once per side, and the user row rides the batch as a
        ``(T, 1, C)`` broadcast input — the only dense ``(T, S, C)`` array
        is the item-content gather, which lives in scratch and dies with
        the step.
        """
        content = corpus.content
        if content is None:
            raise ValueError("corpus has no content attached")
        with self._metrics.span("meta.step", size=len(view_ids)):
            with self._metrics.span("meta.gather"):
                batch = corpus.gather_batch(view_ids, scratch=self._scratch)
            cu, fast = self._adapt_gathered(content, batch)
            ci_q = self._scratch.get(
                "ci_query",
                batch.query_items.shape + (content.dim,),
                content.item.dtype,
            )
            with self._metrics.span("meta.gather"):
                np.take(content.item, batch.query_items, axis=0, out=ci_q)
            losses, grads = self.model.loss_and_grads(
                fast, cu, ci_q, batch.query_labels, mask=batch.query_mask
            )
            meta_grads = mean_task_grads(grads)
            clip_grad_norm(meta_grads, self.config.grad_clip)
            self._optimizer.step(meta_grads)
        return float(np.mean(losses))

    def _adapt_gathered(self, content, batch, steps: int | None = None):
        """Support-side content gather + vectorized inner loop for a packed
        batch; returns ``(cu, fast)`` (the ``(T, 1, C)`` user rows are
        reused by the caller's query pass)."""
        with self._metrics.span("meta.gather"):
            cu = content.user[batch.user_rows][:, None, :]
            ci = self._scratch.get(
                "ci_support",
                batch.support_items.shape + (content.dim,),
                content.item.dtype,
            )
            np.take(content.item, batch.support_items, axis=0, out=ci)
        fast = self._adapt_stacked(
            cu, ci, batch.support_labels, batch.support_mask, len(batch), steps=steps
        )
        return cu, fast

    def _meta_step_loop(self, batch: Sequence[TaskBatchItem]) -> float:
        """Scalar reference implementation of :meth:`meta_step`."""
        meta_grads: Grads = {}
        total_loss = 0.0
        for item in batch:
            fast = self.adapt(item)
            loss, grads = self.model.loss_and_grads(
                fast, item.query_user, item.query_item, item.query_labels
            )
            total_loss += loss
            add_grads(meta_grads, grads, scale=1.0 / len(batch))
        clip_grad_norm(meta_grads, self.config.grad_clip)
        self._optimizer.step(meta_grads)
        return total_loss / len(batch)

    def fit(
        self,
        tasks: TaskCorpus | Sequence[TaskBatchItem],
        epochs: int,
        shuffle: bool = True,
    ) -> list[float]:
        """Meta-train for ``epochs`` passes over ``tasks``; returns loss trace.

        ``tasks`` is either a packed :class:`~repro.meta.corpus.TaskCorpus`
        (the fast path: bucketed epoch batching, index-based meta-steps) or
        a dense :class:`TaskBatchItem` sequence.  With a corpus,
        ``config.packed=False`` materializes each batch through the same
        schedule instead — only the data path changes, so the two traces
        agree to float rounding.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if isinstance(tasks, TaskCorpus):
            return self._fit_corpus(tasks, epochs, shuffle)
        history: list[float] = []
        order = np.arange(len(tasks))
        for _ in range(epochs):
            with self._metrics.span("meta.epoch", size=len(tasks)):
                if shuffle:
                    self._rng.shuffle(order)
                epoch_loss = 0.0
                n_batches = 0
                bs = self.config.meta_batch_size
                for start in range(0, len(order), bs):
                    batch = [tasks[i] for i in order[start : start + bs]]
                    with self._metrics.span("meta.step", size=len(batch)):
                        epoch_loss += self.meta_step(batch)
                    n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        return history

    def _fit_corpus(
        self, corpus: TaskCorpus, epochs: int, shuffle: bool
    ) -> list[float]:
        history: list[float] = []
        bs = self.config.meta_batch_size
        # The packed data path rides the vectorized inner loop; either
        # reference flag (packed=False data path, vectorize=False scalar
        # math — meta_step dispatches the latter) materializes instead.
        use_packed = self.config.packed and self.config.vectorize
        for _ in range(epochs):
            with self._metrics.span("meta.epoch", size=corpus.n_views):
                epoch_loss = 0.0
                n_batches = 0
                for view_ids in corpus.epoch_batches(
                    bs, rng=self._rng, shuffle=shuffle
                ):
                    if use_packed:
                        epoch_loss += self.meta_step_corpus(corpus, view_ids)
                    else:
                        epoch_loss += self.meta_step(corpus.materialize(view_ids))
                    n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        return history

    def adapt_corpus(
        self,
        corpus: TaskCorpus,
        steps: int | None = None,
        max_chunk: int = 64,
    ) -> list[Params]:
        """Adapt every view of ``corpus`` independently; packed counterpart
        of :meth:`adapt_many`.

        Views are grouped into same-support-width chunks of at most
        ``max_chunk`` (see :func:`uniform_width_chunks`); each chunk is one
        fancy-indexed gather plus one vectorized inner loop, with no
        padding, so every view's fast weights are bit-identical to adapting
        it alone.  Returns one owning fast-weight dict per view (shared
        non-adapted weights stay shared).
        """
        if max_chunk <= 0:
            raise ValueError("max_chunk must be positive")
        if not (self.config.vectorize and self.config.packed):
            return self.adapt_many(
                corpus.materialize(), steps=steps, max_chunk=max_chunk
            )
        content = corpus.content
        if content is None:
            raise ValueError("corpus has no content attached")
        widths = corpus.view_support_lens()
        order = np.argsort(widths, kind="stable")
        results: list[Params | None] = [None] * corpus.n_views
        for chunk in uniform_width_chunks(widths, order, max_chunk):
            batch = corpus.gather_batch(
                chunk, scratch=self._scratch, support_only=True
            )
            _, fast = self._adapt_gathered(content, batch, steps=steps)
            # copy=True: the per-view dicts may be cached long past this
            # chunk (serving LRU) and must not pin the stacked block alive.
            parts = unstack_params(
                fast,
                len(batch),
                stacked_keys=self._adaptable_keys & set(fast),
                copy=True,
            )
            for i, part in zip(chunk, parts):
                results[int(i)] = part
        return results  # type: ignore[return-value]

    def refresh_from(
        self,
        corpus: TaskCorpus,
        view_ids: np.ndarray | None = None,
        meta_lr: float = 0.1,
        steps: int | None = None,
        max_chunk: int = 64,
    ) -> float:
        """Reptile-style meta-refresh from (a tail of) a task corpus.

        Adapts each selected view from the current initialization and nudges
        the meta-parameters toward the mean adapted solution: ``θ ← θ +
        ε·mean_i(φ_i − θ)`` over the adaptable keys only (Reptile's outer
        step, first-order like the FOMAML trainer).  This is the streaming
        counterpart of :meth:`fit` — O(tail) instead of O(corpus), no
        optimizer state touched — meant to absorb freshly observed tasks
        between full retrains.  Updated arrays are assigned *into* the
        existing ``self.params`` dict (never a new dict), so the optimizer
        and any aliased references see the refresh; memmap-backed artifact
        params are replaced by in-memory arrays, not written through.

        Returns the RMS of the applied parameter delta (0.0 when no views).
        """
        if not 0.0 < meta_lr <= 1.0:
            raise ValueError("meta_lr must be in (0, 1]")
        ids = (
            np.arange(corpus.n_views)
            if view_ids is None
            else np.asarray(view_ids, dtype=np.int64)
        )
        if ids.size == 0:
            return 0.0
        adaptable = sorted(self._adaptable_keys & set(self.params))
        totals = {
            key: np.zeros(self.params[key].shape, dtype=np.float64)
            for key in adaptable
        }
        if self.config.vectorize and self.config.packed and corpus.content is not None:
            widths = corpus.view_support_lens(ids)
            order = np.argsort(widths, kind="stable")
            for chunk in uniform_width_chunks(widths, order, max_chunk):
                batch = corpus.gather_batch(
                    ids[chunk], scratch=self._scratch, support_only=True
                )
                _, fast = self._adapt_gathered(corpus.content, batch, steps=steps)
                for key in adaptable:
                    totals[key] += (fast[key] - self.params[key][None]).sum(axis=0)
        else:
            for fast in self.adapt_many(
                corpus.materialize(ids), steps=steps, max_chunk=max_chunk
            ):
                for key in adaptable:
                    totals[key] += fast[key] - self.params[key]
        scale = meta_lr / ids.size
        sq_sum = 0.0
        n_elems = 0
        for key in adaptable:
            delta = scale * totals[key]
            self.params[key] = np.asarray(
                self.params[key] + delta, dtype=self.params[key].dtype
            )
            sq_sum += float(np.sum(delta * delta))
            n_elems += delta.size
        return float(np.sqrt(sq_sum / max(n_elems, 1)))

    # ------------------------------------------------------------------
    def finetune(self, item: TaskBatchItem, steps: int | None = None) -> Params:
        """Meta-testing adaptation: :meth:`adapt` with a step override."""
        return self.adapt(item, steps=steps)

    def predict(
        self,
        user_content: np.ndarray,
        item_content: np.ndarray,
        params: Params | None = None,
    ) -> np.ndarray:
        """Score aligned (user, item) content rows with meta or fast weights."""
        return self.model.predict(
            params if params is not None else self.params, user_content, item_content
        )


def batched_candidate_scores(
    maml: MAML,
    user_content: np.ndarray,
    item_content: np.ndarray,
    states: Sequence[Params | None],
    instances: Sequence,
    tables=None,
) -> list[np.ndarray]:
    """Score many eval instances in as few forwards as possible.

    Instances sharing the same adapted parameter dict (by identity — e.g.
    un-adapted requests all using the meta-initialization, or several
    requests for one cached user) are coalesced into a single ``predict``
    over their concatenated candidate contents.  Requests with *distinct*
    per-user fast weights (a micro-batch flush of many adapted users) are
    scored in one stacked forward: their parameter dicts are stacked along
    the task axis and their candidate lists padded to a common width, so
    the whole flush costs one batched pass instead of one forward per
    user.  This is the vectorized backend of ``score_with_state_batch``
    for MAML-based methods.

    ``tables`` (a :class:`~repro.meta.serving.FrozenTowerTables`) replaces
    the tower GEMMs with row gathers for every group whose parameter dict
    still aliases the tower arrays the tables were baked from: the item
    side always, the user side additionally requiring an un-adapted user
    tower.  Groups that adapted a tower — and any single-row forward,
    whose GEMV kernel is not row-subset stable — take the exact historical
    path, so results are bitwise identical with or without tables.

    The data path is index-based: per group only int index arrays (user
    row per candidate row, candidate item ids) are concatenated/padded and
    the content rows are gathered in one fancy-indexing pass per forward —
    no per-instance content copies.
    """
    if len(states) != len(instances):
        raise ValueError("states and instances must align")
    resolved = [s if s is not None else maml.params for s in states]
    groups: dict[int, list[int]] = {}
    for idx, params in enumerate(resolved):
        groups.setdefault(id(params), []).append(idx)
    results: list[np.ndarray | None] = [None] * len(instances)
    if tables is not None and not (
        tables.item_current(maml.params) and tables.user_current(maml.params)
    ):
        tables = None  # stale bake: never serve from it

    def group_indices(indices: list[int]) -> tuple[np.ndarray, np.ndarray, list[int]]:
        sizes = [instances[i].candidates.size for i in indices]
        rows = np.repeat([instances[i].user_row for i in indices], sizes)
        cols = np.concatenate([instances[i].candidates for i in indices])
        return rows, cols, sizes

    def scatter(indices: list[int], sizes: list[int], preds: np.ndarray) -> None:
        offset = 0
        for i, size in zip(indices, sizes):
            results[i] = preds[offset : offset + size]
            offset += size

    def score_solo(indices: list[int]) -> None:
        rows, cols, sizes = group_indices(indices)
        params = resolved[indices[0]]
        if tables is not None and cols.size >= 2 and tables.item_current(params):
            # Item rows gather from the baked table; the user side gathers
            # too when its tower is un-adapted, else embeds live (the same
            # multi-row GEMM the full path runs — identical either way).
            user_embeds = (
                tables.user[rows] if tables.user_current(params) else None
            )
            preds = maml.model.forward_from_item_embeddings(
                params, user_content[rows], tables.item[cols], user_embeds
            )
        else:
            preds = maml.predict(user_content[rows], item_content[cols], params=params)
        scatter(indices, sizes, preds)

    group_list = list(groups.values())
    if len(group_list) == 1:
        score_solo(group_list[0])
        return results  # type: ignore[return-value]

    # Stacked path: one padded forward over similarly-sized parameter
    # groups.  Groups much larger than the median (e.g. one shared
    # meta-params group coalescing every un-adapted request) would force
    # every other group's padding up to their size — those are scored
    # through the concatenated single-group path instead, keeping the
    # padded memory within a small factor of the real row count.
    row_counts = {
        id(indices): sum(instances[i].candidates.size for i in indices)
        for indices in group_list
    }
    median_rows = float(np.median(list(row_counts.values())))
    stackable = [g for g in group_list if row_counts[id(g)] <= 2.0 * median_rows]
    oversized = [g for g in group_list if row_counts[id(g)] > 2.0 * median_rows]
    for indices in oversized:
        score_solo(indices)
    if len(stackable) == 1:
        score_solo(stackable[0])
        return results  # type: ignore[return-value]

    def score_stacked(group_set: list[list[int]], fast: bool) -> None:
        if not group_set:
            return
        if len(group_set) == 1:
            score_solo(group_set[0])
            return
        gathered = [group_indices(indices) for indices in group_set]
        width = max(rows.size for rows, _, _ in gathered)
        # Padded positions point at row/item 0 — valid content, masked out
        # by the scatter reading only each group's real span.
        row_idx = np.zeros((len(group_set), width), dtype=np.int64)
        col_idx = np.zeros((len(group_set), width), dtype=np.int64)
        for g, (rows, cols, _) in enumerate(gathered):
            row_idx[g, : rows.size] = rows
            col_idx[g, : cols.size] = cols
        if fast and width >= 2:
            # Both towers frozen for every group: gather (G, W, E) slabs
            # from the tables and stack only the per-group MLP heads.
            head = stack_params(
                [
                    {
                        k: v
                        for k, v in resolved[indices[0]].items()
                        if k.startswith("mlp.")
                    }
                    for indices in group_set
                ]
            )
            preds = maml.model.forward_from_item_embeddings(
                head, None, tables.item[col_idx], tables.user[row_idx]
            )
        else:
            stacked = stack_params([resolved[indices[0]] for indices in group_set])
            preds = maml.predict(
                user_content[row_idx], item_content[col_idx], params=stacked
            )
        for g, indices in enumerate(group_set):
            scatter(indices, gathered[g][2], preds[g])

    def fully_frozen(indices: list[int]) -> bool:
        params = resolved[indices[0]]
        return (
            tables is not None
            and tables.item_current(params)
            and tables.user_current(params)
        )

    fast_groups = [g for g in stackable if fully_frozen(g)]
    slow_groups = [g for g in stackable if not fully_frozen(g)]
    score_stacked(slow_groups, False)
    score_stacked(fast_groups, True)
    return results  # type: ignore[return-value]


def adapt_task_states(
    maml: MAML,
    user_content: np.ndarray,
    item_content: np.ndarray,
    tasks: Sequence,
    steps: int,
) -> list[Params | None]:
    """Fast weights for a batch of support tasks, adapted in one pass.

    The shared ``adapt_users`` backend of MAML-based recommenders: unique
    tasks (by object identity — evaluation aligns many instances to one
    task object) are packed into a transient :class:`TaskCorpus` and
    fine-tuned together through :meth:`MAML.adapt_corpus` (or materialized
    through :meth:`MAML.adapt_many` when ``config.packed=False``);
    positions whose task is ``None``/empty (or when ``steps == 0``) stay
    ``None``, meaning "serve from the meta-initialization".  Instances
    sharing a task share the *same* returned dict, which downstream
    scoring coalesces by identity.
    """
    states: list[Params | None] = [None] * len(tasks)
    slot_of: dict[int, int] = {}
    unique: list = []
    owners: list[list[int]] = []
    for i, task in enumerate(tasks):
        if task is None or task.n_support == 0 or steps == 0:
            continue
        slot = slot_of.get(id(task))
        if slot is None:
            slot = len(unique)
            slot_of[id(task)] = slot
            unique.append(task)
            owners.append([])
        owners[slot].append(i)
    if not unique:
        return states
    if maml.config.packed and maml.config.vectorize:
        builder = TaskCorpusBuilder(pack_content(user_content, item_content))
        for task in unique:
            builder.add_task(task)
        fasts = maml.adapt_corpus(builder.build(), steps=steps)
    else:
        items = [
            materialize_task(
                user_content,
                item_content,
                task.user_row,
                task.support_items,
                task.support_labels,
                task.query_items,
                task.query_labels,
            )
            for task in unique
        ]
        fasts = maml.adapt_many(items, steps=steps)
    for slot, fast in enumerate(fasts):
        for i in owners[slot]:
            states[i] = fast
    return states


def stream_refresh(
    maml: MAML,
    content: PackedContent,
    tasks: Sequence,
    corpus: TaskCorpus | None = None,
    meta_lr: float = 0.1,
    steps: int | None = None,
) -> tuple[TaskCorpus, dict]:
    """Append observed tasks to a streaming corpus and reptile-refresh.

    The shared ``meta_refresh`` backend of MAML-based recommenders: live
    support tasks (``None``/support-empty entries are skipped) are appended
    to ``corpus`` — created via :meth:`TaskCorpus.empty` on first use, so
    repeated refreshes accumulate an event-log corpus — and only the newly
    appended tail feeds :meth:`MAML.refresh_from`.  Returns the (possibly
    new) corpus plus ``{"n_tasks", "delta_rms"}``.
    """
    if corpus is None:
        corpus = TaskCorpus.empty(content)
    live = [t for t in tasks if t is not None and t.n_support > 0]
    if not live:
        return corpus, {"n_tasks": 0, "delta_rms": 0.0}
    start = corpus.n_views
    corpus.extend(live)
    delta = maml.refresh_from(
        corpus,
        view_ids=np.arange(start, corpus.n_views),
        meta_lr=meta_lr,
        steps=steps,
    )
    return corpus, {"n_tasks": len(live), "delta_rms": delta}


def subsample_support(
    task,
    rng: np.random.Generator,
    max_positives: int = 3,
    neg_per_pos: int = 2,
):
    """Few-shot view of a task: a handful of support positives/negatives.

    Cold-start meta-testing adapts on 1–4 ratings, while warm training tasks
    carry much larger support sets.  Adding subsampled views to the
    meta-training stream aligns the two regimes so the learned
    initialization is good at *few-shot* adaptation.  Returns a new
    :class:`repro.data.tasks.PreferenceTask` with the same query set.
    """
    from dataclasses import replace

    pos_mask = task.support_labels > 0.5
    positives = task.support_items[pos_mask]
    negatives = task.support_items[~pos_mask]
    if positives.size == 0:
        return task
    n_pos = min(max_positives, positives.size)
    keep_pos = rng.choice(positives, size=n_pos, replace=False)
    n_neg = min(neg_per_pos * n_pos, negatives.size)
    keep_neg = (
        rng.choice(negatives, size=n_neg, replace=False)
        if n_neg > 0
        else np.array([], dtype=int)
    )
    items = np.concatenate([keep_pos, keep_neg]).astype(int)
    labels = np.concatenate([np.ones(n_pos), np.zeros(n_neg)])
    return replace(task, support_items=items, support_labels=labels)


def materialize_task(
    user_content: np.ndarray,
    item_content: np.ndarray,
    user_row: int,
    support_items: np.ndarray,
    support_labels: np.ndarray,
    query_items: np.ndarray,
    query_labels: np.ndarray,
) -> TaskBatchItem:
    """Turn index-based task data into dense arrays for the model.

    The user's content row is a read-only broadcast *view* across the item
    rows (never per-row copies); labels follow the content dtype so a
    float32 stack stays float32.
    """
    cu = user_content[user_row]
    dtype = user_content.dtype if user_content.dtype.kind == "f" else np.float64
    return TaskBatchItem(
        support_user=np.broadcast_to(cu, (support_items.size, cu.shape[0])),
        support_item=item_content[support_items],
        support_labels=np.asarray(support_labels, dtype=dtype),
        query_user=np.broadcast_to(cu, (query_items.size, cu.shape[0])),
        query_item=item_content[query_items],
        query_labels=np.asarray(query_labels, dtype=dtype),
    )
