"""MetaDPA: the paper's full method as a :class:`~repro.core.Recommender`.

``fit`` runs the three blocks end to end:

1. multi-source domain adaptation — one Dual-CVAE per source domain trained
   on shared users (:mod:`repro.cvae.trainer`),
2. diverse preference augmentation — k generated rating matrices for the
   target domain (:mod:`repro.cvae.augment`),
3. preference meta-learning — MAML over the original warm tasks plus their
   k augmented views (:mod:`repro.meta.maml`).

``score`` fine-tunes the meta-initialization on the evaluated task's support
set and scores the candidate items, exactly the meta-testing procedure of
Section IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.interface import FitContext, Recommender
from repro.cvae.augment import AugmentedRatings, DiversePreferenceAugmenter
from repro.cvae.trainer import TrainerConfig
from repro.meta.corpus import (
    PackedContent,
    TaskCorpus,
    TaskCorpusBuilder,
)
from repro.meta.maml import MAML, MAMLConfig, subsample_support
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.meta.serving import MAMLServingMixin
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class MetaDPAConfig:
    """All hyper-parameters of MetaDPA in one place.

    ``beta1`` / ``beta2`` weigh the MDI / ME constraints (Eq. 8); setting
    one of them to zero produces the ablation variants of Fig. 5
    (``beta1=0`` -> MetaDPA-ME, ``beta2=0`` -> MetaDPA-MDI).
    ``use_augmentation=False`` disables block 1+2 entirely (pure
    meta-learner, useful as a sanity ablation).
    """

    beta1: float = 0.1
    beta2: float = 1.0
    latent_dim: int = 16
    cvae_hidden_dim: int = 64
    cvae_epochs: int = 300
    cvae_lr: float = 3e-3
    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (64, 32)
    meta_epochs: int = 30
    maml: MAMLConfig = field(default_factory=MAMLConfig)
    finetune_steps: int = 5
    use_augmentation: bool = True
    augmentation_weight: float = 1.0
    few_shot_views: bool = True
    sharpen_augmented: bool = False

    def __post_init__(self) -> None:
        if self.meta_epochs <= 0 or self.finetune_steps < 0:
            raise ValueError("meta_epochs must be positive, finetune_steps >= 0")
        if not 0.0 <= self.augmentation_weight <= 1.0:
            raise ValueError("augmentation_weight must be in [0, 1]")


def _sharpen_per_user(matrix: np.ndarray) -> np.ndarray:
    """Min-max rescale each user's generated ratings to the full [0, 1] range.

    The sigmoid decoders produce well-*ordered* but narrow-band scores
    (roughly 0.4–0.55 at our scale); as BCE soft labels those are all "maybe"
    and teach the meta-learner very little.  A per-user monotone rescale
    preserves exactly the preference ordering the Dual-CVAE learned while
    restoring label contrast.  Implementation detail on top of the paper
    (which uses the decoder outputs directly) — disable with
    ``sharpen_augmented=False``.
    """
    lo = matrix.min(axis=1, keepdims=True)
    hi = matrix.max(axis=1, keepdims=True)
    span = np.maximum(hi - lo, 1e-8)
    return (matrix - lo) / span


class MetaDPA(MAMLServingMixin, Recommender):
    """Diverse Preference Augmentation with multiple domains (the paper).

    The serving surface (adaptation, streaming refresh, frozen-tower
    scoring, artifact round-trip) comes from
    :class:`~repro.meta.serving.MAMLServingMixin`.
    """

    name = "MetaDPA"

    def __init__(self, config: MetaDPAConfig | None = None, seed: int = 0):
        self.config = config or MetaDPAConfig()
        self.seed = seed
        self.maml: MAML | None = None
        self.augmented: AugmentedRatings | None = None
        self._ctx: FitContext | None = None
        self._content: PackedContent | None = None
        self._stream_corpus: TaskCorpus | None = None
        self._tables = None
        self.meta_loss_history: list[float] = []
        self._aug_cache = None
        self._aug_cache_token = ""
        #: cache/training telemetry of the last ``fit`` (``None`` before it).
        self.augmentation_info: dict | None = None

    def set_augmentation_cache(self, cache, token: str = "") -> None:
        """Attach an :class:`~repro.cvae.cache.AugmentationCache`.

        ``token`` must identify the dataset (e.g. its canonical spec), so a
        cache directory is never shared across different benchmarks.  With
        a cache attached, ``fit`` skips the k Dual-CVAE trainings entirely
        whenever an identical augmentation is already stored — the expensive
        block 1+2 of MetaDPA becomes a disk read for repeated grid cells.
        """
        self._aug_cache = cache
        self._aug_cache_token = token

    # ------------------------------------------------------------------
    def fit(self, ctx: FitContext) -> "MetaDPA":
        cfg = self.config
        aug_rng, maml_rng, sample_rng = spawn_rngs(self.seed, 3)
        self._ctx = ctx
        self._content = None
        self._stream_corpus = None
        self._tables = None
        self.attach_serving(ctx)
        domain = ctx.domain

        # Blocks 1 + 2: domain adaptation and diverse augmentation.
        if cfg.use_augmentation:
            augmenter = DiversePreferenceAugmenter(
                ctx.dataset,
                ctx.target_name,
                cvae_config_overrides={
                    "beta1": cfg.beta1,
                    "beta2": cfg.beta2,
                    "latent_dim": cfg.latent_dim,
                    "hidden_dim": cfg.cvae_hidden_dim,
                },
                trainer_config=TrainerConfig(epochs=cfg.cvae_epochs, lr=cfg.cvae_lr),
                seed=int(aug_rng.integers(0, 2**31 - 1)),
                cache=self._aug_cache,
                cache_token=self._aug_cache_token,
            )
            self.augmented = augmenter.fit_generate()
            self.augmentation_info = {
                "cvae_trainings": augmenter.n_trained,
            }
            if augmenter.cache_hit is not None:
                self.augmentation_info["augmentation_cache"] = (
                    "hit" if augmenter.cache_hit else "miss"
                )
            if cfg.sharpen_augmented:
                self.augmented.matrices = [
                    _sharpen_per_user(m) for m in self.augmented.matrices
                ]
        else:
            self.augmented = None
            self.augmentation_info = {"cvae_trainings": 0}

        # Block 3: preference meta-learning over original + augmented tasks.
        model = self._build_model(domain.user_content.shape[1])
        self.maml = MAML(model, cfg.maml, seed=maml_rng)
        corpus = self._build_meta_corpus(ctx, sample_rng)
        self.meta_loss_history = self.maml.fit(corpus, epochs=cfg.meta_epochs)
        return self

    def _build_meta_corpus(
        self, ctx: FitContext, rng: np.random.Generator
    ) -> TaskCorpus:
        """Original warm tasks plus k augmented views per user (Eqs. 9–10).

        Packed construction: every warm task (and its few-shot subsampled
        view) stores its index arrays once; each of the k augmented views
        shares its parent's indices and adds only a float32 label row read
        from the generated rating matrix — the corpus never copies content.
        """
        builder = TaskCorpusBuilder(self._packed_content())
        for task in ctx.warm_tasks:
            base = builder.add_task(task)
            if self.config.few_shot_views:
                builder.add_task(subsample_support(task, rng))
            if self.augmented is None:
                continue
            for matrix in self.augmented.matrices:
                if self.config.augmentation_weight < 1.0:
                    if rng.random() > self.config.augmentation_weight:
                        continue
                builder.add_rating_view(base, matrix[task.user_row])
        return builder.build()

    # -- MAMLServingMixin hooks -----------------------------------------
    @property
    def _finetune_steps(self) -> int:
        return self.config.finetune_steps

    @property
    def _maml_config(self) -> MAMLConfig:
        return self.config.maml

    def _build_model(self, content_dim: int) -> PreferenceModel:
        cfg = self.config
        return PreferenceModel(
            PreferenceModelConfig(
                content_dim=content_dim,
                embed_dim=cfg.embed_dim,
                hidden_dims=cfg.hidden_dims,
            )
        )

    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        if self._method_config is not None:
            return super().config_dict()
        # Directly-constructed instance: flatten MetaDPAConfig (minus the
        # nested MAML config, which stays at its defaults) so the artifact
        # can still be rebuilt through the registry.
        from dataclasses import asdict

        flat = asdict(self.config)
        flat.pop("maml", None)
        flat["hidden_dims"] = list(flat["hidden_dims"])
        return flat

