"""Mini-batch iteration over index arrays."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import ensure_rng


def iter_batches(
    n: int,
    batch_size: int,
    rng: int | np.random.Generator | None = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches of ``batch_size``.

    Parameters
    ----------
    n:
        number of samples.
    batch_size:
        maximum batch size (the final batch may be smaller unless
        ``drop_last``).
    rng:
        randomness source for shuffling; deterministic order when
        ``shuffle=False``.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        ensure_rng(rng).shuffle(order)
    for start in range(0, n, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and batch.size < batch_size:
            return
        yield batch
