"""Crash-safe file writing and canonical JSON, shared by every store.

The grid :class:`~repro.runner.store.RunStore`, the prepared-experiment
cache and the augmentation cache all follow the same two conventions:

- every write goes through a uniquely named temp file followed by
  ``os.replace``, so concurrent writers never interleave bytes and readers
  only ever see a missing file or a complete one;
- every content-addressed key hashes the *canonical* JSON of its payload
  (sorted keys, no whitespace), so identical configurations share entries
  and any changed field changes the key.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for hashing and equality of configurations."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload: Any, length: int = 20) -> str:
    """Short content hash of a JSON-able payload."""
    digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
    return digest[:length]


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (unique temp file + rename)."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex}")
    tmp.write_bytes(data)
    os.replace(tmp, path)
