"""Exact top-k selection matching ``np.argsort(-scores, kind="stable")[:k]``.

Serving ranks a k-sized head of an ``n``-sized candidate pool, so a full
``O(n log n)`` stable sort wastes almost all of its work.  ``top_k_order``
selects the k winners with ``np.partition`` (``O(n)``) and only sorts those
k, while reproducing the full stable sort's order *bit for bit* — including
its tie-breaking (equal scores rank by ascending index) — so swapping it
into an existing ranking site cannot change a single recommendation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_order"]


def _full_order(scores: np.ndarray, k: int) -> np.ndarray:
    return np.argsort(-scores, kind="stable")[:k]


def top_k_order(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores in descending stable order.

    Exactly equivalent to ``np.argsort(-scores, kind="stable")[:k]`` for
    every 1-D ``scores`` (ties broken by ascending index, NaNs ranked
    last), but selects with ``np.partition`` first so only ``k`` elements
    are sorted.  Falls back to the full stable sort when ``k`` covers the
    pool or NaNs make the partition threshold unusable.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError("top_k_order expects a 1-D score vector")
    n = scores.size
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return _full_order(scores, k)
    kth = np.partition(scores, n - k)[n - k]
    if np.isnan(kth):
        return _full_order(scores, k)
    above = np.flatnonzero(scores > kth)
    if above.size >= k:
        # Only reachable when NaNs shifted the partition threshold.
        return _full_order(scores, k)
    # Equal scores rank by ascending index, so the first ``k - above.size``
    # ties are exactly the ones the stable sort would keep.
    ties = np.flatnonzero(scores == kth)[: k - above.size]
    chosen = np.concatenate([above, ties])
    if chosen.size < k:
        # NaNs displaced real values out of the partition's top-k window.
        return _full_order(scores, k)
    return chosen[np.argsort(-scores[chosen], kind="stable")]
