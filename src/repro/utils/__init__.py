"""Shared utilities: reproducible RNG handling, timing, batching."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.batching import iter_batches
from repro.utils.topk import top_k_order

__all__ = ["ensure_rng", "spawn_rngs", "Timer", "iter_batches", "top_k_order"]
