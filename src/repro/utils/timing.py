"""Wall-clock timing helper used by the scalability experiment (Fig. 6)."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None
