"""Reproducible random-number-generator plumbing.

Every stochastic component in the repository takes either a seed or a
``numpy.random.Generator``.  These helpers normalize between the two and
derive independent child generators, so a single experiment seed determines
the entire run.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed / generator / None into a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError("n must be non-negative")
    parent = ensure_rng(rng)
    return [np.random.default_rng(seed) for seed in parent.integers(0, 2**63 - 1, size=n)]
