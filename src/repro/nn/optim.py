"""Optimizers operating on parameter dictionaries.

Optimizers mutate the parameter dict in place via :meth:`Optimizer.step` and
keep their own state (momentum buffers, Adam moments) keyed by parameter name.

Every update is elementwise, so the optimizers are shape-agnostic: a stacked
parameter dict (leading task axis, see :mod:`repro.nn.stacking`) trains ``T``
independent copies in one step with per-copy Adam moments.  When a batched
backward pass returns *per-task* gradients for unstacked meta parameters,
reduce them first with :func:`mean_task_grads`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Grads, Params


class Optimizer:
    """Base optimizer over a parameter dictionary."""

    def __init__(self, params: Params, lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.params = params
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, grads: Grads) -> None:
        raise NotImplementedError

    def _decayed(self, name: str, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * self.params[name]
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: Params,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, grads: Grads) -> None:
        for name, grad in grads.items():
            grad = self._decayed(name, grad)
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(grad)
                vel = self.momentum * vel + grad
                self._velocity[name] = vel
                grad = vel
            self.params[name] -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, grads: Grads) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, grad in grads.items():
            grad = self._decayed(name, grad)
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / bias1
            v_hat = v / bias2
            self.params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StackedAdam(Optimizer):
    """Adam over parameters stacked along a leading ``[D, ...]`` axis.

    Every array in ``params`` carries the same leading stack axis; each slice
    is an independent model trained with its *own* Adam state, including its
    own step counter — so ``D`` models whose batch schedules differ (some
    slices sit a step out) stay on the trajectory a per-model :class:`Adam`
    would have produced.  ``step`` takes an optional boolean ``active`` mask
    of shape ``(D,)``: inactive slices advance neither their moments nor
    their step count nor their weights.

    Flat mode: when every value of ``params`` is a view into one contiguous
    slice-major ``(D, S)`` buffer (``flat_params``/``flat_slices``, as built
    by :class:`~repro.cvae.model.FusedDualCVAE`), updates run as ~a dozen
    whole-model vector ops against preallocated moment buffers — the
    optimizer all but vanishes from the fused training profile — and
    :meth:`clipped_step` folds per-group gradient clipping into the same
    gathered pass.  The arithmetic keeps the scalar optimizer's operation
    order, so flat, dict and per-model updates agree element for element.
    """

    def __init__(
        self,
        params: Params,
        n_stack: int,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        flat_params: np.ndarray | None = None,
        flat_slices: dict[str, tuple[int, int, tuple[int, ...]]] | None = None,
    ):
        super().__init__(params, lr, weight_decay)
        if n_stack <= 0:
            raise ValueError("n_stack must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        for name, value in params.items():
            if value.shape[:1] != (n_stack,):
                raise ValueError(
                    f"parameter {name!r} has leading dim {value.shape[:1]}, "
                    f"expected the stack axis ({n_stack},)"
                )
        self.n_stack = n_stack
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._buf: dict[str, np.ndarray] = {}
        self._t = np.zeros(n_stack, dtype=np.int64)
        self._flat = None
        if flat_params is not None:
            if flat_slices is None:
                raise ValueError("flat_params requires flat_slices")
            if flat_params.ndim != 2 or flat_params.shape[0] != n_stack:
                raise ValueError(
                    "flat_params must be a slice-major (n_stack, S) buffer"
                )
            for name, (offset, size, shape) in flat_slices.items():
                view = flat_params[:, offset : offset + size].reshape(shape)
                if not np.shares_memory(params[name], view):
                    raise ValueError(
                        f"parameter {name!r} is not a view into flat_params"
                    )
            self._flat = flat_params
            self._slices = dict(flat_slices)
            self._fm = np.zeros_like(flat_params)
            self._fv = np.zeros_like(flat_params)
            self._fbuf = np.empty_like(flat_params)
            self._fgrad = np.empty_like(flat_params)

    @staticmethod
    def _expand(vec: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape a per-slice ``(D,)`` vector to broadcast over slice dims."""
        return vec.reshape(vec.shape[0], *([1] * (ndim - 1)))

    def _normalize_active(self, active: np.ndarray | None) -> np.ndarray | None:
        if active is None:
            return None
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.n_stack,):
            raise ValueError(f"active mask must have shape ({self.n_stack},)")
        return None if active.all() else active

    def step(self, grads: Grads, active: np.ndarray | None = None) -> None:
        """Advance every (active) slice one Adam step.

        ``grads`` may be consumed as scratch space — callers must not rely
        on the arrays afterwards.
        """
        active = self._normalize_active(active)
        if active is not None and not active.any():
            return
        if self._flat is not None:
            self._gather(grads)
            self._flat_update(active)
            return
        if active is None and self._t.min() == self._t.max():
            self._t += 1
            self._step_inplace(grads, int(self._t[0]))
            return
        self._step_dict(grads, active)

    def clipped_step(
        self,
        grads: Grads,
        max_norm: float,
        group_index: np.ndarray,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-group clip + Adam step in one gathered pass (flat mode).

        Folding the clip into the optimizer lets the per-group norms come
        from a single contraction over the slice-major gradient buffer
        instead of one reduction per parameter.  Returns the per-group
        pre-clip L2 norms.  Without flat storage this degrades gracefully
        to :func:`clip_grad_norm_grouped` followed by :meth:`step`.
        """
        if self._flat is None:
            norms = clip_grad_norm_grouped(grads, max_norm, group_index)
            self.step(grads, active=active)
            return norms
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        active = self._normalize_active(active)
        group_index = np.asarray(group_index, dtype=np.int64)
        self._gather(grads)
        sq = np.einsum("ij,ij->i", self._fgrad, self._fgrad).astype(np.float64)
        n_groups = int(group_index.max()) + 1
        group_sq = np.zeros(n_groups, dtype=np.float64)
        np.add.at(group_sq, group_index, sq)
        norms = np.sqrt(group_sq)
        scales = np.where(norms > max_norm, max_norm / (norms + 1e-12), 1.0)
        if np.any(scales < 1.0):
            per_slice = scales[group_index][:, None].astype(self._fgrad.dtype)
            self._fgrad *= per_slice
        if active is None or active.any():
            self._flat_update(active)
        return norms

    # ------------------------------------------------------------------
    # flat (slice-major) paths
    # ------------------------------------------------------------------
    def _gather(self, grads: Grads) -> None:
        for name, (offset, size, _) in self._slices.items():
            self._fgrad[:, offset : offset + size] = grads[name].reshape(
                self.n_stack, -1
            )

    def _flat_update(self, active: np.ndarray | None) -> None:
        """In-place whole-model Adam over the flat buffers.

        Masked slices are handled by stash-and-restore: the update runs over
        the full buffer (allocation-free), then the few inactive rows are
        copied back — exactness for active slices is untouched and the cost
        is proportional to the (rare, small) inactive set.
        """
        stash = None
        if active is not None:
            idx = np.flatnonzero(~active)
            stash = (
                idx,
                self._flat[idx].copy(),
                self._fm[idx].copy(),
                self._fv[idx].copy(),
            )
            self._t += active
        else:
            self._t += 1
        t_min, t_max = int(self._t.min()), int(self._t.max())
        if t_min == t_max:
            bias1 = 1.0 - self.beta1**t_max
            bias2 = 1.0 - self.beta2**t_max
        else:
            t_safe = np.maximum(self._t, 1)
            bias1 = (1.0 - self.beta1**t_safe).astype(self._flat.dtype)[:, None]
            bias2 = (1.0 - self.beta2**t_safe).astype(self._flat.dtype)[:, None]
        flat, m, v, buf, grad = (
            self._flat, self._fm, self._fv, self._fbuf, self._fgrad,
        )
        if self.weight_decay:
            np.multiply(flat, self.weight_decay, out=buf)
            grad += buf
        # m = beta1*m + (1-beta1)*grad
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=buf)
        m += buf
        # v = beta2*v + ((1-beta2)*grad)*grad  (scalar-Adam association)
        np.multiply(grad, 1.0 - self.beta2, out=buf)
        buf *= grad
        v *= self.beta2
        v += buf
        # param -= (lr * (m/bias1)) / (sqrt(v/bias2) + eps); grad is dead
        # and doubles as the denominator scratch.
        np.divide(v, bias2, out=grad)
        np.sqrt(grad, out=grad)
        grad += self.eps
        np.divide(m, bias1, out=buf)
        buf *= self.lr
        buf /= grad
        flat -= buf
        if stash is not None:
            idx, flat_rows, m_rows, v_rows = stash
            self._flat[idx] = flat_rows
            self._fm[idx] = m_rows
            self._fv[idx] = v_rows

    # ------------------------------------------------------------------
    # dict paths (no flat storage attached)
    # ------------------------------------------------------------------
    def _step_dict(self, grads: Grads, active: np.ndarray | None) -> None:
        self._t = self._t + (1 if active is None else active.astype(np.int64))
        for name, grad in grads.items():
            grad = self._decayed(name, grad)
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m_new = self.beta1 * m + (1.0 - self.beta1) * grad
            v_new = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            # Bias corrections are per slice; cast to the parameter dtype so
            # a float32 model updates in float32 exactly like scalar Adam.
            # Never-stepped slices (t=0, only reachable while masked out)
            # use t=1 to avoid a 0/0 — their update is discarded below.
            t_safe = np.maximum(self._t, 1)
            bias1 = (1.0 - self.beta1**t_safe).astype(grad.dtype)
            bias2 = (1.0 - self.beta2**t_safe).astype(grad.dtype)
            update = (
                self.lr
                * (m_new / self._expand(bias1, m_new.ndim))
                / (np.sqrt(v_new / self._expand(bias2, v_new.ndim)) + self.eps)
            )
            if active is not None:
                keep = self._expand(active, m_new.ndim)
                m_new = np.where(keep, m_new, m)
                v_new = np.where(keep, v_new, v)
                update = np.where(keep, update, 0.0)
            self._m[name] = m_new
            self._v[name] = v_new
            self.params[name] -= update

    def _step_inplace(self, grads: Grads, t: int) -> None:
        """Allocation-free per-parameter update (dict mode, all active)."""
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for name, grad in grads.items():
            param = self.params[name]
            buf = self._buf.get(name)
            if buf is None:
                buf = self._buf[name] = np.empty_like(grad)
            m = self._m.get(name)
            if m is None:
                m = self._m[name] = np.zeros_like(grad)
                self._v[name] = np.zeros_like(grad)
            v = self._v[name]
            if self.weight_decay:
                np.multiply(param, self.weight_decay, out=buf)
                grad += buf
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m += buf
            np.multiply(grad, 1.0 - self.beta2, out=buf)
            buf *= grad
            v *= self.beta2
            v += buf
            np.divide(v, bias2, out=grad)
            np.sqrt(grad, out=grad)
            grad += self.eps
            np.divide(m, bias1, out=buf)
            buf *= self.lr
            buf /= grad
            param -= buf


def clip_grad_norm(grads: Grads, max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for grad in grads.values():
        total += float((grad * grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for name in grads:
            grads[name] = grads[name] * scale
    return norm


def clip_grad_norm_grouped(
    grads: Grads, max_norm: float, group_index: np.ndarray
) -> np.ndarray:
    """Per-group L2 clipping for gradients stacked along a leading axis.

    ``group_index[d]`` names the group slice ``d`` belongs to; each group's
    norm is taken over *all* of its slices across every gradient array (the
    fused Dual-CVAE folds a domain's source and target branches into one
    group, reproducing the sequential trainer's whole-model clip).  Clipping
    happens in place per group; returns the per-group pre-clip norms.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    group_index = np.asarray(group_index, dtype=np.int64)
    n_groups = int(group_index.max()) + 1
    sq_per_slice = np.zeros(group_index.shape[0], dtype=np.float64)
    for grad in grads.values():
        # einsum contracts without materializing grad*grad; accumulate
        # across arrays in float64 like the scalar clip_grad_norm.
        subs = "i" + "abcdefg"[: grad.ndim - 1]
        sq = np.einsum(f"{subs},{subs}->i", grad, grad)
        sq_per_slice += sq.astype(np.float64)
    sq_per_group = np.zeros(n_groups, dtype=np.float64)
    np.add.at(sq_per_group, group_index, sq_per_slice)
    norms = np.sqrt(sq_per_group)
    scales = np.where(norms > max_norm, max_norm / (norms + 1e-12), 1.0)
    if np.any(scales < 1.0):
        per_slice = scales[group_index]
        for name, grad in grads.items():
            grad_scales = per_slice.reshape(-1, *([1] * (grad.ndim - 1)))
            grads[name] = grad * grad_scales.astype(grad.dtype)
    return norms


def mean_task_grads(grads: Grads) -> Grads:
    """Average per-task gradients ``[T, ...]`` over the leading task axis.

    This is the reduction between a task-batched backward pass (which keeps
    one gradient per task, matching FOMAML's per-task query gradients) and an
    optimizer step on the unstacked meta parameters.
    """
    return {name: np.asarray(grad).mean(axis=0) for name, grad in grads.items()}


def add_grads(into: Grads, grads: Grads, scale: float = 1.0) -> None:
    """Accumulate ``grads`` into ``into`` (in place), creating keys as needed."""
    for name, grad in grads.items():
        if name in into:
            into[name] = into[name] + scale * grad
        else:
            into[name] = scale * grad
