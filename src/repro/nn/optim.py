"""Optimizers operating on parameter dictionaries.

Optimizers mutate the parameter dict in place via :meth:`Optimizer.step` and
keep their own state (momentum buffers, Adam moments) keyed by parameter name.

Every update is elementwise, so the optimizers are shape-agnostic: a stacked
parameter dict (leading task axis, see :mod:`repro.nn.stacking`) trains ``T``
independent copies in one step with per-copy Adam moments.  When a batched
backward pass returns *per-task* gradients for unstacked meta parameters,
reduce them first with :func:`mean_task_grads`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Grads, Params


class Optimizer:
    """Base optimizer over a parameter dictionary."""

    def __init__(self, params: Params, lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.params = params
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, grads: Grads) -> None:
        raise NotImplementedError

    def _decayed(self, name: str, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * self.params[name]
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: Params,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, grads: Grads) -> None:
        for name, grad in grads.items():
            grad = self._decayed(name, grad)
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(grad)
                vel = self.momentum * vel + grad
                self._velocity[name] = vel
                grad = vel
            self.params[name] -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, grads: Grads) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, grad in grads.items():
            grad = self._decayed(name, grad)
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / bias1
            v_hat = v / bias2
            self.params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(grads: Grads, max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for grad in grads.values():
        total += float((grad * grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for name in grads:
            grads[name] = grads[name] * scale
    return norm


def mean_task_grads(grads: Grads) -> Grads:
    """Average per-task gradients ``[T, ...]`` over the leading task axis.

    This is the reduction between a task-batched backward pass (which keeps
    one gradient per task, matching FOMAML's per-task query gradients) and an
    optimizer step on the unstacked meta parameters.
    """
    return {name: np.asarray(grad).mean(axis=0) for name, grad in grads.items()}


def add_grads(into: Grads, grads: Grads, scale: float = 1.0) -> None:
    """Accumulate ``grads`` into ``into`` (in place), creating keys as needed."""
    for name, grad in grads.items():
        if name in into:
            into[name] = into[name] + scale * grad
        else:
            into[name] = scale * grad
