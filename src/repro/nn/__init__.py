"""A minimal, from-scratch neural-network substrate on numpy.

The paper's reference implementation uses PyTorch; this package provides the
pieces MetaDPA actually needs, in a *pure functional* style:

- every :class:`~repro.nn.module.Module` is a stateless description of a
  computation.  Parameters live in plain ``dict[str, numpy.ndarray]`` objects
  created by :meth:`Module.init_params`.
- ``forward(params, x)`` returns ``(y, cache)`` and
  ``backward(params, cache, dy)`` returns ``(dx, grads)`` where ``grads`` has
  the same keys as ``params``.

Keeping parameters external makes meta-learning (MAML fast weights),
optimizers, and serialization straightforward: a fast-weight step is just
``{k: p[k] - lr * g[k]}``.
"""

from repro.nn.init import kaiming_uniform, normal_init, xavier_uniform, zeros_init
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Relu,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import (
    binary_cross_entropy,
    binary_cross_entropy_tasks,
    gaussian_kl,
    gaussian_kl_to_code,
    gaussian_kl_to_code_stacked,
    info_nce,
    info_nce_stacked,
    mse_loss,
)
from repro.nn.module import Module, Sequential, mlp
from repro.nn.optim import (
    SGD,
    Adam,
    Optimizer,
    StackedAdam,
    clip_grad_norm,
    clip_grad_norm_grouped,
    mean_task_grads,
)
from repro.nn.stacking import pad_axis, stack_params, tile_params, tree_map, unstack_params
from repro.nn.grad_check import numerical_gradient, relative_error
from repro.nn.serialization import load_params, params_equal, save_params
from repro.nn.schedulers import CosineDecay, Scheduler, StepDecay, WarmupLinear

__all__ = [
    "Module",
    "Sequential",
    "mlp",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Relu",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "binary_cross_entropy",
    "binary_cross_entropy_tasks",
    "mse_loss",
    "gaussian_kl",
    "gaussian_kl_to_code",
    "gaussian_kl_to_code_stacked",
    "info_nce",
    "info_nce_stacked",
    "SGD",
    "Adam",
    "Optimizer",
    "StackedAdam",
    "clip_grad_norm",
    "clip_grad_norm_grouped",
    "mean_task_grads",
    "pad_axis",
    "stack_params",
    "unstack_params",
    "tile_params",
    "tree_map",
    "xavier_uniform",
    "kaiming_uniform",
    "normal_init",
    "zeros_init",
    "numerical_gradient",
    "relative_error",
    "save_params",
    "load_params",
    "params_equal",
    "Scheduler",
    "StepDecay",
    "CosineDecay",
    "WarmupLinear",
]
