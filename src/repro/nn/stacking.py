"""Stacked-parameter helpers: one ``Params`` dict, a leading task axis.

The stacked contract extends the functional :class:`~repro.nn.module.Module`
API: any parameter array may carry an extra leading axis ``[T, ...]`` holding
``T`` independent copies of the weight (one per task).  Layers broadcast
cleanly between stacked and unstacked weights, so a parameter dict may mix
both — e.g. MAML with the MeLU-style restriction keeps embedding weights
global (unstacked, shared by every task) while the decision layers are
stacked and adapted per task.

These helpers are the glue between the per-task world (a list of ordinary
parameter dicts) and the batched world (one dict of ``[T, ...]`` arrays):

- :func:`stack_params` — list of dicts → one stacked dict,
- :func:`unstack_params` — stacked dict → list of per-task dicts (views),
- :func:`tile_params` — one dict → stacked writable copies (fast-weight
  initialization for a batched inner loop),
- :func:`tree_map` — apply a function leaf-wise across aligned dicts.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.module import Params


def tree_map(fn: Callable[..., np.ndarray], tree: Params, *rest: Params) -> Params:
    """Apply ``fn`` to every array of ``tree`` (zipped with ``rest`` by key).

    All dicts must share exactly the keys of ``tree``; the result maps each
    key to ``fn(tree[k], rest_0[k], ...)``.
    """
    for other in rest:
        if set(other) != set(tree):
            raise ValueError("tree_map requires dicts with identical keys")
    return {name: fn(value, *(r[name] for r in rest)) for name, value in tree.items()}


def stack_params(params_list: Sequence[Params]) -> Params:
    """Stack ``T`` aligned parameter dicts into one ``[T, ...]`` dict."""
    if not params_list:
        raise ValueError("stack_params needs at least one parameter dict")
    keys = set(params_list[0])
    for params in params_list[1:]:
        if set(params) != keys:
            raise ValueError("stack_params requires dicts with identical keys")
    return {name: np.stack([p[name] for p in params_list]) for name in params_list[0]}


def unstack_params(
    params: Params,
    n: int,
    stacked_keys: Iterable[str] | None = None,
    copy: bool = False,
) -> list[Params]:
    """Split a stacked dict back into ``n`` per-task dicts.

    Keys in ``stacked_keys`` (default: all) are indexed along their leading
    task axis — by default the returned arrays are *views* into the stacked
    storage; pass ``copy=True`` when the per-task dicts outlive the stacked
    block (e.g. a serving cache), so one surviving task does not pin the
    whole ``[T, ...]`` array alive.  The remaining (shared, unstacked) keys
    are passed through by reference either way, so tasks that share a
    global weight keep sharing it.
    """
    keys = set(params) if stacked_keys is None else set(stacked_keys)
    unknown = keys - set(params)
    if unknown:
        raise ValueError(f"stacked_keys not present in params: {sorted(unknown)}")
    for name in keys:
        if params[name].shape[:1] != (n,):
            raise ValueError(
                f"parameter {name!r} has leading dim {params[name].shape[:1]}, "
                f"expected ({n},)"
            )

    def slice_of(value: np.ndarray, t: int) -> np.ndarray:
        return value[t].copy() if copy else value[t]

    return [
        {
            name: (slice_of(value, t) if name in keys else value)
            for name, value in params.items()
        }
        for t in range(n)
    ]


def pad_axis(
    value: np.ndarray, axis: int, new_size: int, offset: int = 0
) -> np.ndarray:
    """Zero-pad ``value`` along ``axis`` to ``new_size``, placed at ``offset``.

    The glue for stacking same-architecture models whose widths differ along
    one axis (e.g. per-domain item counts): each model's weight is dropped
    into a zero block of the common width, so :func:`stack_params` can stack
    them and a batched op runs all models at once.  Zero padding is exact —
    padded rows/columns contribute nothing to forward passes and receive
    zero gradients when inputs/masks are zero-padded consistently.
    """
    size = value.shape[axis]
    if offset < 0 or offset + size > new_size:
        raise ValueError(
            f"cannot pad axis {axis} of size {size} to {new_size} at offset {offset}"
        )
    if size == new_size and offset == 0:
        return value.copy()
    shape = list(value.shape)
    shape[axis] = new_size
    out = np.zeros(shape, dtype=value.dtype)
    index = [slice(None)] * value.ndim
    index[axis] = slice(offset, offset + size)
    out[tuple(index)] = value
    return out


def tile_params(
    params: Params, n: int, keys: Iterable[str] | None = None
) -> Params:
    """Tile selected parameters into ``n`` writable stacked copies.

    Keys outside ``keys`` (default: all) stay unstacked and are shared by
    reference — the mixed stacked/shared dict a partial inner loop wants.
    """
    chosen = set(params) if keys is None else set(keys)
    return {
        name: (np.repeat(value[None], n, axis=0) if name in chosen else value)
        for name, value in params.items()
    }
