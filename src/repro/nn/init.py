"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix.

    Suitable for tanh/sigmoid/linear layers; keeps activation variance roughly
    constant across layers.
    """
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He/Kaiming uniform initialization, appropriate for ReLU layers."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def normal_init(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    std: float = 0.01,
) -> np.ndarray:
    """Small-variance Gaussian initialization (used for embedding tables)."""
    return rng.normal(0.0, std, size=shape)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)
