"""Module base class and composition helpers.

A :class:`Module` is a stateless computation description.  Parameters are
plain dictionaries mapping parameter names to numpy arrays; this keeps
fast-weight updates (MAML), optimizer state, and (de)serialization trivial.

Contract
--------
``init_params(rng)``
    returns a fresh ``dict[str, np.ndarray]``.
``forward(params, x, *, rng=None, train=False)``
    returns ``(y, cache)``; ``cache`` is opaque and consumed by ``backward``.
``backward(params, cache, dy)``
    returns ``(dx, grads)`` where ``grads`` has exactly the keys of
    ``params``.

Stacked parameters
------------------
Every op additionally accepts *stacked* parameters carrying an optional
leading task axis ``[T, ...]`` (built with :mod:`repro.nn.stacking` helpers)
against inputs with a matching leading ``T`` axis, computing ``T``
independent versions of the layer in one numpy pass.  Stacked and unstacked
entries may be mixed in one dict — unstacked weights broadcast across tasks.
Gradient shapes follow the *inputs*: when the input is task-batched,
``backward`` returns per-task gradients ``[T, ...]`` for every parameter
(even shared unstacked ones); reduce with
:func:`repro.nn.optim.mean_task_grads` before stepping unstacked weights.
One deliberate exception: a *shared* (unstacked) ``Embedding`` table with
task-batched indices scatter-adds the gradient over every leading axis —
a per-task copy of a whole lookup table would be prohibitively large —
so its summed gradient must not go through ``mean_task_grads``; stack the
table per task if per-task gradients are required.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

Params = dict[str, np.ndarray]
Grads = dict[str, np.ndarray]


class Module:
    """Base class for all stateless layers and networks."""

    #: True for layers whose ``backward`` accepts ``need_input_grad=False``
    #: and can skip the input-gradient computation when it is discarded.
    skip_input_grad = False

    def init_params(self, rng: np.random.Generator) -> Params:
        raise NotImplementedError

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        raise NotImplementedError

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        raise NotImplementedError

    def __call__(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> np.ndarray:
        """Convenience inference-only forward that drops the cache."""
        y, _ = self.forward(params, x, rng=rng, train=train)
        return y


class Sequential(Module):
    """Chain of modules applied in order.

    Parameter keys of child ``i`` are prefixed with ``"{i}."`` so that the
    flattened dictionary stays collision-free, e.g. ``"0.W"``, ``"2.b"``.
    """

    def __init__(self, layers: Sequence[Module]):
        self.layers = list(layers)

    def init_params(self, rng: np.random.Generator) -> Params:
        params: Params = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.init_params(rng).items():
                params[f"{i}.{name}"] = value
        return params

    def _child_params(self, params: Params, i: int) -> Params:
        prefix = f"{i}."
        return {
            name[len(prefix):]: value
            for name, value in params.items()
            if name.startswith(prefix)
        }

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        caches = []
        out = x
        for i, layer in enumerate(self.layers):
            out, cache = layer.forward(
                self._child_params(params, i), out, rng=rng, train=train
            )
            caches.append(cache)
        return out, caches

    def backward(
        self,
        params: Params,
        cache: Any,
        dy: np.ndarray,
        *,
        need_input_grad: bool = True,
    ) -> tuple[np.ndarray | None, Grads]:
        """Backward through the chain.

        ``need_input_grad=False`` tells the *first* layer its input
        gradient is discarded (layers advertising ``skip_input_grad`` then
        skip that GEMM entirely — e.g. an embedding branch over raw
        content, whose ``dx`` no caller consumes).
        """
        grads: Grads = {}
        grad_out = dy
        for i in reversed(range(len(self.layers))):
            layer = self.layers[i]
            if i == 0 and not need_input_grad and layer.skip_input_grad:
                grad_out, layer_grads = layer.backward(
                    self._child_params(params, i),
                    cache[i],
                    grad_out,
                    need_input_grad=False,
                )
            else:
                grad_out, layer_grads = layer.backward(
                    self._child_params(params, i), cache[i], grad_out
                )
            for name, value in layer_grads.items():
                grads[f"{i}.{name}"] = value
        return grad_out, grads


def mlp(
    layer_sizes: Sequence[int],
    activation: str = "relu",
    out_activation: str | None = None,
    dropout: float = 0.0,
) -> Sequential:
    """Build a standard multi-layer perceptron.

    Parameters
    ----------
    layer_sizes:
        ``[in, hidden..., out]`` — at least two entries.
    activation:
        hidden activation, one of ``"relu"``, ``"tanh"``, ``"sigmoid"``.
    out_activation:
        optional activation after the last linear layer (``"sigmoid"``,
        ``"softmax"``, ``"tanh"``, ``"relu"`` or ``None`` for linear output).
    dropout:
        dropout probability applied after each hidden activation.
    """
    from repro.nn.layers import Dropout, Linear, Relu, Sigmoid, Softmax, Tanh

    if len(layer_sizes) < 2:
        raise ValueError("mlp needs at least an input and an output size")
    act_map = {"relu": Relu, "tanh": Tanh, "sigmoid": Sigmoid, "softmax": Softmax}
    if activation not in act_map:
        raise ValueError(f"unknown activation {activation!r}")
    if out_activation is not None and out_activation not in act_map:
        raise ValueError(f"unknown out_activation {out_activation!r}")

    layers: list[Module] = []
    n_linear = len(layer_sizes) - 1
    for i in range(n_linear):
        layers.append(Linear(layer_sizes[i], layer_sizes[i + 1]))
        is_last = i == n_linear - 1
        if not is_last:
            layers.append(act_map[activation]())
            if dropout > 0:
                layers.append(Dropout(dropout))
        elif out_activation is not None:
            layers.append(act_map[out_activation]())
    return Sequential(layers)
