"""Numerical gradient checking utilities used by the test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function at ``x``."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error, robust to zeros."""
    num = np.abs(a - b)
    den = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float((num / den).max())
