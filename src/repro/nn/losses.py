"""Loss functions with analytic gradients.

Every loss returns ``(value, grad)`` (or ``(value, grad_a, grad_b)`` for
two-argument losses) where gradients are with respect to the inputs, already
averaged the same way the scalar value is.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import softmax

_EPS = 1e-12


def binary_cross_entropy(
    pred: np.ndarray,
    target: np.ndarray,
    weight: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy on probabilities in ``(0, 1)``.

    Targets may be *soft* labels in ``[0, 1]`` — this is exactly the case in
    MetaDPA, where augmented ratings are continuous.

    Parameters
    ----------
    pred:
        predicted probabilities, any shape.
    target:
        same shape as ``pred``, values in ``[0, 1]``.
    weight:
        optional per-element weight (same shape), e.g. to mask padding.
    """
    pred = np.clip(pred, _EPS, 1.0 - _EPS)
    per_elem = -(target * np.log(pred) + (1.0 - target) * np.log(1.0 - pred))
    grad = (pred - target) / (pred * (1.0 - pred))
    if weight is not None:
        per_elem = per_elem * weight
        grad = grad * weight
    n = pred.size
    return float(per_elem.sum() / n), grad / n


def binary_cross_entropy_tasks(
    pred: np.ndarray,
    target: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-task mean BCE over the trailing axis, with optional padding mask.

    The batched counterpart of :func:`binary_cross_entropy` for stacked
    computations: ``pred``/``target`` have shape ``(T, batch)`` (any number
    of leading axes works) and each task's loss — and its gradient — is
    normalized by *that task's own* unpadded element count, so the result is
    exactly ``T`` independent per-task losses.  ``mask`` (same shape, 1 for
    real elements, 0 for padding) zeroes padded entries before normalizing.

    Returns ``(losses, grad)`` with ``losses`` of shape ``pred.shape[:-1]``
    and ``grad`` of ``pred``'s shape.
    """
    pred = np.clip(pred, _EPS, 1.0 - _EPS)
    per_elem = -(target * np.log(pred) + (1.0 - target) * np.log(1.0 - pred))
    grad = (pred - target) / (pred * (1.0 - pred))
    if mask is not None:
        per_elem = per_elem * mask
        grad = grad * mask
        counts = np.maximum(mask.sum(axis=-1), 1.0)
    else:
        counts = float(pred.shape[-1])
    losses = per_elem.sum(axis=-1) / counts
    grad = grad / np.asarray(counts)[..., None]
    return losses, grad


def gaussian_kl_to_code_stacked(
    mu: np.ndarray,
    log_var: np.ndarray,
    code: np.ndarray,
    row_mask: np.ndarray | None = None,
    counts: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-slice content-conditioned KL for stacked ``(D, batch, latent)``.

    Mirrors :func:`gaussian_kl_to_code` independently per leading slice,
    normalizing by each slice's real row count (``counts``, default the
    ``row_mask`` sum or the padded batch size).  Padded rows (mask 0) carry
    neither loss nor gradient.
    """
    var = np.exp(log_var)
    diff = mu - code
    per_row = 0.5 * (var + diff * diff - log_var - 1.0)
    grad_mu = diff
    grad_code = -diff
    grad_log_var = 0.5 * (var - 1.0)
    if row_mask is not None:
        m = row_mask[..., None]
        per_row = per_row * m
        grad_mu = grad_mu * m
        grad_code = grad_code * m
        grad_log_var = grad_log_var * m
    if counts is None:
        if row_mask is not None:
            counts = row_mask.sum(axis=1)
        else:
            counts = np.full(mu.shape[0], float(mu.shape[1]), dtype=mu.dtype)
    counts = np.maximum(np.asarray(counts, dtype=mu.dtype), 1.0)
    kl = per_row.reshape(mu.shape[0], -1).sum(axis=1) / counts
    c = counts[:, None, None]
    return kl, grad_mu / c, grad_log_var / c, grad_code / c


def _masked_softmax(logits: np.ndarray, valid: np.ndarray, axis: int) -> np.ndarray:
    """Softmax over ``axis`` restricted to ``valid`` entries (0 elsewhere)."""
    neg = np.finfo(logits.dtype).min
    x = np.where(valid, logits, neg)
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x) * valid
    denom = e.sum(axis=axis, keepdims=True)
    return e / np.maximum(denom, np.finfo(logits.dtype).tiny)


def info_nce_stacked(
    a: np.ndarray,
    b: np.ndarray,
    row_mask: np.ndarray | None = None,
    temperature: float = 0.1,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-slice InfoNCE for stacked ``(D, batch, dim)`` representations.

    Computes :func:`info_nce` independently for every slice of the leading
    axis in one batched pass.  ``row_mask`` ``(D, batch)`` marks real rows;
    padded rows are excluded from the contrastive softmax and receive zero
    gradients.  Slices with fewer than two real rows get loss 0 and zero
    gradients, matching the scalar convention.

    Returns ``(losses, grad_a, grad_b)`` with ``losses`` of shape ``(D,)``.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    n_stack, batch, _ = a.shape

    if normalize:
        norm_a = np.maximum(np.linalg.norm(a, axis=2, keepdims=True), 1e-8)
        norm_b = np.maximum(np.linalg.norm(b, axis=2, keepdims=True), 1e-8)
        a_hat = a / norm_a
        b_hat = b / norm_b
    else:
        a_hat, b_hat = a, b

    logits = (a_hat @ np.swapaxes(b_hat, 1, 2)) / temperature  # (D, B, B)
    idx = np.arange(batch)
    if row_mask is None:
        # Fast path: every row is real, the softmaxes need no masking.
        counts = np.full(n_stack, batch, dtype=a.dtype)
        p_rows = softmax(logits, axis=2)
        p_cols = softmax(logits, axis=1)
        eye = np.zeros_like(p_rows)
        eye[:, idx, idx] = 1.0
        row_weight = None
    else:
        counts = row_mask.sum(axis=1)
        pair = (row_mask[:, :, None] * row_mask[:, None, :]) > 0
        p_rows = _masked_softmax(logits, pair, axis=2)
        p_cols = _masked_softmax(logits, pair, axis=1)
        eye = np.zeros_like(p_rows)
        eye[:, idx, idx] = row_mask
        row_weight = row_mask

    active = (counts >= 2).astype(a.dtype)  # single pairs carry no signal
    safe_counts = np.maximum(counts, 1.0)
    log_rows = -np.log(np.clip(p_rows[:, idx, idx], _EPS, None))
    log_cols = -np.log(np.clip(p_cols[:, idx, idx], _EPS, None))
    if row_weight is not None:
        log_rows = log_rows * row_weight
        log_cols = log_cols * row_weight
    loss_ab = log_rows.sum(axis=1) / safe_counts
    loss_ba = log_cols.sum(axis=1) / safe_counts
    losses = 0.5 * (loss_ab + loss_ba) * active

    scale = (active / safe_counts)[:, None, None]
    dlogits = 0.5 * ((p_rows - eye) + (p_cols - eye)) * scale
    grad_a_hat = (dlogits @ b_hat) / temperature
    grad_b_hat = (np.swapaxes(dlogits, 1, 2) @ a_hat) / temperature
    if not normalize:
        return losses, grad_a_hat, grad_b_hat
    grad_a = (
        grad_a_hat - (grad_a_hat * a_hat).sum(axis=2, keepdims=True) * a_hat
    ) / norm_a
    grad_b = (
        grad_b_hat - (grad_b_hat * b_hat).sum(axis=2, keepdims=True) * b_hat
    ) / norm_b
    return losses, grad_a, grad_b


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error ``mean((pred - target)^2)``."""
    diff = pred - target
    n = pred.size
    return float((diff * diff).sum() / n), 2.0 * diff / n


def gaussian_kl(
    mu: np.ndarray, log_var: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """KL divergence of ``N(mu, exp(log_var))`` from the standard normal.

    Returns the batch-mean KL and gradients with respect to ``mu`` and
    ``log_var``.
    """
    batch = mu.shape[0]
    var = np.exp(log_var)
    kl = 0.5 * (var + mu * mu - log_var - 1.0).sum() / batch
    grad_mu = mu / batch
    grad_log_var = 0.5 * (var - 1.0) / batch
    return float(kl), grad_mu, grad_log_var


def gaussian_kl_to_code(
    mu: np.ndarray, log_var: np.ndarray, code: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """KL divergence of ``N(mu, exp(log_var))`` from ``N(code, I)``.

    This is the content-conditioned prior of Eq. (3) in the paper: the
    variational posterior of the rating encoder is pulled toward the content
    encoder's output ``code`` so that ratings can later be reconstructed from
    content alone.

    Returns ``(kl, grad_mu, grad_log_var, grad_code)``.
    """
    batch = mu.shape[0]
    var = np.exp(log_var)
    diff = mu - code
    kl = 0.5 * (var + diff * diff - log_var - 1.0).sum() / batch
    grad_mu = diff / batch
    grad_code = -diff / batch
    grad_log_var = 0.5 * (var - 1.0) / batch
    return float(kl), grad_mu, grad_log_var, grad_code


def info_nce(
    a: np.ndarray,
    b: np.ndarray,
    temperature: float = 0.1,
    normalize: bool = True,
) -> tuple[float, np.ndarray, np.ndarray]:
    """InfoNCE loss between two aligned batches of representations.

    Row ``i`` of ``a`` and row ``i`` of ``b`` form the positive pair; all
    other rows of ``b`` in the batch act as negatives (and symmetrically for
    ``a``).  Minimizing this loss *maximizes* a lower bound on the mutual
    information ``I(a, b) >= log(batch) - loss``, which is how both the MDI
    constraint (on latent codes) and the ME constraint (on decoder outputs)
    are realized in the paper.

    With ``normalize=True`` (the default) similarities are cosine rather
    than raw dot products.  This bounds the logits by ``1/temperature`` and
    keeps the constraint gradients commensurate with the reconstruction
    gradients — with raw dot products the InfoNCE terms can grow without
    bound and, after global gradient clipping, starve every other loss term.

    Returns ``(loss, grad_a, grad_b)``.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    batch = a.shape[0]
    if batch < 2:
        # A single pair carries no contrastive signal; define the loss as 0.
        return 0.0, np.zeros_like(a), np.zeros_like(b)

    if normalize:
        norm_a = np.linalg.norm(a, axis=1, keepdims=True)
        norm_b = np.linalg.norm(b, axis=1, keepdims=True)
        norm_a = np.maximum(norm_a, 1e-8)
        norm_b = np.maximum(norm_b, 1e-8)
        a_hat = a / norm_a
        b_hat = b / norm_b
    else:
        a_hat, b_hat = a, b

    logits = (a_hat @ b_hat.T) / temperature  # (batch, batch)
    # Symmetric cross-entropy: a->b uses rows, b->a uses columns.
    p_rows = softmax(logits, axis=1)
    p_cols = softmax(logits, axis=0)
    idx = np.arange(batch)
    loss_ab = -np.log(np.clip(p_rows[idx, idx], _EPS, None)).mean()
    loss_ba = -np.log(np.clip(p_cols[idx, idx], _EPS, None)).mean()
    loss = 0.5 * (loss_ab + loss_ba)

    # d loss_ab / d logits = (p_rows - I) / batch ; similarly for columns.
    eye = np.eye(batch, dtype=p_rows.dtype)
    dlogits = 0.5 * ((p_rows - eye) + (p_cols - eye)) / batch
    grad_a_hat = (dlogits @ b_hat) / temperature
    grad_b_hat = (dlogits.T @ a_hat) / temperature
    if not normalize:
        return float(loss), grad_a_hat, grad_b_hat
    # Through the L2 normalization: d(x/||x||) projects out the radial part.
    grad_a = (grad_a_hat - (grad_a_hat * a_hat).sum(axis=1, keepdims=True) * a_hat) / norm_a
    grad_b = (grad_b_hat - (grad_b_hat * b_hat).sum(axis=1, keepdims=True) * b_hat) / norm_b
    return float(loss), grad_a, grad_b


def info_nce_mi_estimate(
    a: np.ndarray, b: np.ndarray, temperature: float = 0.1, normalize: bool = True
) -> float:
    """Lower-bound estimate of the mutual information between ``a`` and ``b``.

    ``I(a, b) >= log(batch) - InfoNCE`` (van den Oord et al., 2018).
    """
    loss, _, _ = info_nce(a, b, temperature=temperature, normalize=normalize)
    batch = a.shape[0]
    if batch < 2:
        return 0.0
    return float(np.log(batch) - loss)
