"""Learning-rate schedules for the optimizers.

Schedulers mutate ``optimizer.lr`` in place when :meth:`step` is called at
the end of each epoch, matching the usual epoch-granularity usage.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class Scheduler:
    """Base class; subclasses compute the rate for a given epoch index."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def rate(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        new_lr = self.rate(self.epoch)
        if new_lr <= 0:
            raise ValueError("scheduler produced a non-positive learning rate")
        self.optimizer.lr = new_lr
        return new_lr


class StepDecay(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def rate(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineDecay(Scheduler):
    """Cosine annealing from the base rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 1e-5):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if min_lr <= 0:
            raise ValueError("min_lr must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def rate(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cos


class WarmupLinear(Scheduler):
    """Linear warmup to the base rate, then linear decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_epochs: int,
        total_epochs: int,
        min_lr: float = 1e-5,
    ):
        super().__init__(optimizer)
        if warmup_epochs < 0 or total_epochs <= warmup_epochs:
            raise ValueError("need 0 <= warmup_epochs < total_epochs")
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def rate(self, epoch: int) -> float:
        if self.warmup_epochs and epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        span = self.total_epochs - self.warmup_epochs
        progress = min((epoch - self.warmup_epochs) / span, 1.0)
        return self.base_lr + (self.min_lr - self.base_lr) * progress
