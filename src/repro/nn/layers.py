"""Core layers: Linear, Embedding, Dropout, LayerNorm and activations.

Every layer follows the :class:`repro.nn.module.Module` contract; caches hold
exactly what the backward pass needs, nothing more.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.nn.init import kaiming_uniform, normal_init, zeros_init
from repro.nn.module import Grads, Module, Params


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with ``W: (in, out)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = bias

    def init_params(self, rng: np.random.Generator) -> Params:
        params = {"W": kaiming_uniform(rng, self.in_features, self.out_features)}
        if self.use_bias:
            params["b"] = zeros_init((self.out_features,))
        return params

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = x @ params["W"]
        if self.use_bias:
            y = y + params["b"]
        return y, x

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        x = cache
        grads: Grads = {"W": x.T @ dy}
        if self.use_bias:
            grads["b"] = dy.sum(axis=0)
        dx = dy @ params["W"].T
        return dx, grads


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Forward takes an integer array of shape ``(batch,)`` or ``(batch, k)``
    and returns vectors of shape ``(batch, dim)`` or ``(batch, k, dim)``.
    """

    def __init__(self, num_embeddings: int, dim: int, std: float = 0.01):
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("Embedding sizes must be positive")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.std = std

    def init_params(self, rng: np.random.Generator) -> Params:
        return {"E": normal_init(rng, (self.num_embeddings, self.dim), std=self.std)}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        idx = np.asarray(x, dtype=np.int64)
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return params["E"][idx], idx

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        idx = cache
        grad_e = np.zeros_like(params["E"])
        np.add.at(grad_e, idx.reshape(-1), dy.reshape(-1, self.dim))
        # Indices are not differentiable; return a zero gradient placeholder.
        return np.zeros(idx.shape), {"E": grad_e}


class Dropout(Module):
    """Inverted dropout; identity when ``train=False`` or ``rng is None``."""

    def __init__(self, p: float):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        if not train or self.p == 0.0 or rng is None:
            return x, None
        keep = 1.0 - self.p
        mask = (rng.random(x.shape) < keep) / keep
        return x * mask, mask

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        if cache is None:
            return dy, {}
        return dy * cache, {}


class LayerNorm(Module):
    """Layer normalization over the last axis with learned gain and bias."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.dim = dim
        self.eps = eps

    def init_params(self, rng: np.random.Generator) -> Params:
        return {"gamma": np.ones(self.dim), "beta": np.zeros(self.dim)}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mu) * inv_std
        y = params["gamma"] * x_hat + params["beta"]
        return y, (x_hat, inv_std)

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        x_hat, inv_std = cache
        n = x_hat.shape[-1]
        grads: Grads = {
            "gamma": (dy * x_hat).sum(axis=tuple(range(dy.ndim - 1))),
            "beta": dy.sum(axis=tuple(range(dy.ndim - 1))),
        }
        dxhat = dy * params["gamma"]
        dx = (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        return dx, grads


class Relu(Module):
    """Rectified linear activation."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        mask = x > 0
        return x * mask, mask

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        return dy * cache, {}


class Sigmoid(Module):
    """Logistic sigmoid, numerically stable in both tails."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = sigmoid(x)
        return y, y

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        y = cache
        return dy * y * (1.0 - y), {}


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = np.tanh(x)
        return y, y

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        y = cache
        return dy * (1.0 - y * y), {}


class Softmax(Module):
    """Softmax over the last axis."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = softmax(x)
        return y, y

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        y = cache
        dot = (dy * y).sum(axis=-1, keepdims=True)
        return y * (dy - dot), {}


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid usable outside the layer API."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax usable outside the layer API."""
    shifted = x - x.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=axis, keepdims=True)
