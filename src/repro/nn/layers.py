"""Core layers: Linear, Embedding, Dropout, LayerNorm and activations.

Every layer follows the :class:`repro.nn.module.Module` contract; caches hold
exactly what the backward pass needs, nothing more.

All layers additionally honor the *stacked* contract: parameters may carry a
leading task axis ``[T, ...]`` (see :mod:`repro.nn.stacking`) and inputs a
matching leading ``T`` axis.  Stacked and unstacked weights broadcast against
each other, and whenever the *input* is task-batched the returned gradients
keep the task axis (per-task gradients), even for shared unstacked weights —
callers reduce over tasks themselves (e.g. a MAML outer step averages them).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.nn.init import kaiming_uniform, normal_init, zeros_init
from repro.nn.module import Grads, Module, Params


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with ``W: (in, out)``.

    Stacked form: ``W: (T, in, out)`` / ``b: (T, out)`` with inputs
    ``(T, batch, in)``; matmul broadcasting makes both the unstacked and the
    mixed (stacked input, shared weight) cases a single batched GEMM.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = bias

    def init_params(self, rng: np.random.Generator) -> Params:
        params = {"W": kaiming_uniform(rng, self.in_features, self.out_features)}
        if self.use_bias:
            params["b"] = zeros_init((self.out_features,))
        return params

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = x @ params["W"]
        if self.use_bias:
            b = params["b"]
            # A stacked bias (T, out) aligns with y (T, batch, out) via an
            # explicit batch axis; an unstacked bias broadcasts as-is.
            y = y + (b[..., None, :] if b.ndim > 1 else b)
        return y, x

    #: Sequential may skip this layer's input gradient when it is discarded.
    skip_input_grad = True

    def backward(
        self,
        params: Params,
        cache: Any,
        dy: np.ndarray,
        *,
        need_input_grad: bool = True,
    ) -> tuple[np.ndarray | None, Grads]:
        x = cache
        grads: Grads = {"W": np.swapaxes(x, -1, -2) @ dy}
        if self.use_bias:
            grads["b"] = dy.sum(axis=-2)
        if not need_input_grad:
            # The input-gradient GEMM matches the weight-gradient GEMM in
            # cost; callers that discard dx (a network's first layer over
            # raw content) skip half the layer's backward work.
            return None, grads
        dx = dy @ np.swapaxes(params["W"], -1, -2)
        return dx, grads


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Forward takes an integer array of shape ``(batch,)`` or ``(batch, k)``
    and returns vectors of shape ``(batch, dim)`` or ``(batch, k, dim)``.

    Stacked form: ``E: (T, num_embeddings, dim)`` with indices ``(T, batch)``
    looks up each task in its own table and scatters gradients per task.  A
    shared (unstacked) table with task-batched indices keeps the historical
    behaviour of summing the gradient over every leading axis.
    """

    def __init__(self, num_embeddings: int, dim: int, std: float = 0.01):
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("Embedding sizes must be positive")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.std = std

    def init_params(self, rng: np.random.Generator) -> Params:
        return {"E": normal_init(rng, (self.num_embeddings, self.dim), std=self.std)}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        idx = np.asarray(x, dtype=np.int64)
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        table = params["E"]
        if table.ndim == 3:
            if idx.ndim != 2 or idx.shape[0] != table.shape[0]:
                raise ValueError(
                    "stacked embedding expects indices of shape (T, batch) "
                    f"matching E's task axis, got {idx.shape} vs {table.shape}"
                )
            n_tasks = table.shape[0]
            return table[np.arange(n_tasks)[:, None], idx], idx
        return table[idx], idx

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        idx = cache
        grad_e = np.zeros_like(params["E"])
        if grad_e.ndim == 3:
            task_idx = np.broadcast_to(np.arange(grad_e.shape[0])[:, None], idx.shape)
            np.add.at(grad_e, (task_idx, idx), dy)
        else:
            np.add.at(grad_e, idx.reshape(-1), dy.reshape(-1, self.dim))
        # Indices are not differentiable; return a zero gradient placeholder.
        return np.zeros(idx.shape), {"E": grad_e}


class Dropout(Module):
    """Inverted dropout; identity when ``train=False`` or ``rng is None``."""

    def __init__(self, p: float):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        if not train or self.p == 0.0 or rng is None:
            return x, None
        keep = 1.0 - self.p
        mask = (rng.random(x.shape) < keep) / keep
        return x * mask, mask

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        if cache is None:
            return dy, {}
        return dy * cache, {}


class LayerNorm(Module):
    """Layer normalization over the last axis with learned gain and bias."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.dim = dim
        self.eps = eps

    def init_params(self, rng: np.random.Generator) -> Params:
        return {"gamma": np.ones(self.dim), "beta": np.zeros(self.dim)}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mu) * inv_std
        gamma, beta = params["gamma"], params["beta"]
        if gamma.ndim > 1:  # stacked (T, dim) against x (T, batch, dim)
            gamma = gamma[..., None, :]
            beta = beta[..., None, :]
        y = gamma * x_hat + beta
        return y, (x_hat, inv_std)

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        x_hat, inv_std = cache
        grads: Grads = {
            "gamma": (dy * x_hat).sum(axis=-2),
            "beta": dy.sum(axis=-2),
        }
        gamma = params["gamma"]
        dxhat = dy * (gamma[..., None, :] if gamma.ndim > 1 else gamma)
        dx = (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        return dx, grads


class Relu(Module):
    """Rectified linear activation."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        mask = x > 0
        return x * mask, mask

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        return dy * cache, {}


class Sigmoid(Module):
    """Logistic sigmoid, numerically stable in both tails."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = sigmoid(x)
        return y, y

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        y = cache
        return dy * y * (1.0 - y), {}


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = np.tanh(x)
        return y, y

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        y = cache
        return dy * (1.0 - y * y), {}


class Softmax(Module):
    """Softmax over the last axis."""

    def init_params(self, rng: np.random.Generator) -> Params:
        return {}

    def forward(
        self,
        params: Params,
        x: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        train: bool = False,
    ) -> tuple[np.ndarray, Any]:
        y = softmax(x)
        return y, y

    def backward(
        self, params: Params, cache: Any, dy: np.ndarray
    ) -> tuple[np.ndarray, Grads]:
        y = cache
        dot = (dy * y).sum(axis=-1, keepdims=True)
        return y * (dy - dot), {}


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid usable outside the layer API.

    Branch-free: ``exp(-|x|)`` never overflows, and the two-sided select
    computes the same per-element values as the classic sign-split form
    (bit for bit) without its gather/scatter cost.  Preserves floating
    dtypes, so a float32 model stays float32 end to end.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(np.float64)
    ex = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + ex), ex / (1.0 + ex))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax usable outside the layer API."""
    shifted = x - x.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=axis, keepdims=True)
