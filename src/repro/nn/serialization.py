"""Saving and loading parameter dictionaries.

Parameters are plain ``dict[str, ndarray]`` objects, so persistence is a
thin wrapper around ``numpy.savez``: the archive's keys are the parameter
names (dots are legal in npz keys).  A small JSON header can carry model
configuration alongside the weights.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.module import Params

_CONFIG_KEY = "__config_json__"


def save_params(
    path: str | Path, params: Params, config: dict | None = None
) -> None:
    """Write a parameter dict (and optional JSON-able config) to ``path``.

    The suffix ``.npz`` is appended by numpy when missing.
    """
    payload: dict[str, np.ndarray] = dict(params)
    if config is not None:
        payload[_CONFIG_KEY] = np.frombuffer(
            json.dumps(config, sort_keys=True).encode(), dtype=np.uint8
        )
    np.savez(Path(path), **payload)


def load_params(path: str | Path) -> tuple[Params, dict | None]:
    """Read back ``(params, config)`` written by :func:`save_params`."""
    with np.load(Path(path)) as archive:
        params: Params = {}
        config = None
        for name in archive.files:
            if name == _CONFIG_KEY:
                config = json.loads(archive[name].tobytes().decode())
            else:
                params[name] = archive[name]
    return params, config


def params_equal(a: Params, b: Params, atol: float = 0.0) -> bool:
    """Whether two parameter dicts have identical keys and close values."""
    if set(a) != set(b):
        return False
    return all(np.allclose(a[name], b[name], atol=atol) for name in a)
