"""Saving and loading parameter dictionaries.

Parameters are plain ``dict[str, ndarray]`` objects, so persistence is a
thin wrapper around ``numpy.savez``: the archive's keys are the parameter
names (dots are legal in npz keys).  A small JSON header can carry model
configuration alongside the weights.

Saves are crash-safe: the archive is assembled in memory and published with
:func:`repro.utils.persist.atomic_write_bytes`, so readers never observe a
truncated file.  Loads optionally memory-map: ``np.savez`` stores members
uncompressed, which means every ``.npy`` payload lives at a fixed byte
offset inside the zip container and can be mapped with ``np.memmap``
directly — ``np.load(mmap_mode=...)`` silently ignores the flag for
``.npz`` archives, so :func:`load_params` parses the zip local headers
itself.  A memory-mapped load is O(open): worker processes serving the same
artifact share a single page-cache copy of the weights.
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.nn.module import Params
from repro.utils.persist import atomic_write_bytes

_CONFIG_KEY = "__config_json__"

# Read-only modes only: artifacts are shared between worker processes, so a
# writable map ("r+") would let one worker corrupt everyone's weights.
_MMAP_MODES = ("r", "c")

_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


def resolve_archive_path(path: str | Path) -> Path:
    """The on-disk name ``save_params`` uses (numpy's suffix convention)."""
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_name(target.name + ".npz")
    return target


def save_params(
    path: str | Path, params: Params, config: dict | None = None
) -> Path:
    """Write a parameter dict (and optional JSON-able config) to ``path``.

    The suffix ``.npz`` is appended when missing (matching ``np.savez``).
    The write is atomic — a crash mid-save leaves the previous artifact, or
    no file, never a truncated archive.  Returns the resolved path.
    """
    payload: dict[str, np.ndarray] = dict(params)
    if config is not None:
        payload[_CONFIG_KEY] = np.frombuffer(
            json.dumps(config, sort_keys=True).encode(), dtype=np.uint8
        )
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    target = resolve_archive_path(path)
    atomic_write_bytes(target, buffer.getvalue())
    return target


def _member_data_offset(raw: io.BufferedReader, header_offset: int) -> int | None:
    """Byte offset of a zip member's payload, or None if the header is odd.

    The local file header is 30 fixed bytes followed by the variable-length
    name and extra fields; the stored payload starts immediately after.
    """
    raw.seek(header_offset)
    header = raw.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != _LOCAL_HEADER_MAGIC:
        return None
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    return header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _memmap_member(
    raw: io.BufferedReader, path: Path, data_offset: int, mmap_mode: str
) -> np.ndarray | None:
    """Map one stored ``.npy`` member, or None when it cannot be mapped."""
    raw.seek(data_offset)
    try:
        version = np.lib.format.read_magic(raw)
    except ValueError:
        return None
    readers = {
        (1, 0): np.lib.format.read_array_header_1_0,
        (2, 0): np.lib.format.read_array_header_2_0,
    }
    read_header = readers.get(version)
    if read_header is None:
        return None
    shape, fortran_order, dtype = read_header(raw)
    if dtype.hasobject:
        return None
    return np.memmap(
        path,
        dtype=dtype,
        mode=mmap_mode,
        offset=raw.tell(),
        shape=shape,
        order="F" if fortran_order else "C",
    )


def mapped_arrays(path: str | Path, mmap_mode: str = "r") -> dict[str, np.ndarray]:
    """All arrays of an uncompressed ``.npz``, memory-mapped in place.

    Members that cannot be mapped (compressed or object-dtype) fall back to
    an eager read, so the result is always complete.
    """
    if mmap_mode not in _MMAP_MODES:
        raise ValueError(
            f"mmap_mode must be one of {_MMAP_MODES}, got {mmap_mode!r}"
        )
    target = Path(path)
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(target) as archive, open(target, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            array = None
            if info.compress_type == zipfile.ZIP_STORED:
                data_offset = _member_data_offset(raw, info.header_offset)
                if data_offset is not None:
                    array = _memmap_member(raw, target, data_offset, mmap_mode)
            if array is None:
                with archive.open(info) as member:
                    array = np.lib.format.read_array(member, allow_pickle=False)
            arrays[name] = array
    return arrays


def load_params(
    path: str | Path, mmap_mode: str | None = None
) -> tuple[Params, dict | None]:
    """Read back ``(params, config)`` written by :func:`save_params`.

    With ``mmap_mode`` (``"r"`` or ``"c"``) every array is an ``np.memmap``
    view into the archive — nothing is materialized until touched.
    """
    if mmap_mode is not None:
        arrays = mapped_arrays(path, mmap_mode)
    else:
        with np.load(Path(path)) as archive:
            arrays = {name: archive[name] for name in archive.files}
    config = None
    config_raw = arrays.pop(_CONFIG_KEY, None)
    if config_raw is not None:
        config = json.loads(config_raw.tobytes().decode())
    return arrays, config


def params_equal(a: Params, b: Params, atol: float = 0.0) -> bool:
    """Whether two parameter dicts have identical keys and close values."""
    if set(a) != set(b):
        return False
    return all(np.allclose(a[name], b[name], atol=atol) for name in a)
