"""Opt-in phase profiler: wall time + peak RSS per named phase.

Built for the grid engine's per-cell timings (prepare / fit / score) but
generic: wrap any block in :meth:`PhaseProfiler.phase` and read the
accumulated report.  Reports are plain JSON-able dicts and merge with
:func:`merge_phase_reports`, so the grid aggregator can total timings
across thousands of cells.

RSS caveat: on Linux ``ru_maxrss`` is a *monotone process high-water
mark* that cannot be reset, so a phase's ``peak_rss_bytes`` is the
process peak *as of the end of that phase* — attribution is "peak so
far", not "peak caused by this phase".
"""

from __future__ import annotations

import sys
import time

__all__ = ["PhaseProfiler", "merge_phase_reports", "peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """Process peak RSS in bytes (0 where ``resource`` is unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(peak if sys.platform == "darwin" else peak * 1024)


class _Phase:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._record(
            self._name, time.perf_counter() - self._t0, peak_rss_bytes()
        )


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Accumulates per-phase wall time and peak RSS.

    >>> prof = PhaseProfiler()
    >>> with prof.phase("prepare"):
    ...     pass
    >>> sorted(prof.report()["prepare"])
    ['calls', 'peak_rss_bytes', 'wall_s']
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._phases: dict[str, dict] = {}

    def phase(self, name: str):
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def _record(self, name: str, wall_s: float, rss: int) -> None:
        entry = self._phases.setdefault(
            name, {"calls": 0, "wall_s": 0.0, "peak_rss_bytes": 0}
        )
        entry["calls"] += 1
        entry["wall_s"] += wall_s
        entry["peak_rss_bytes"] = max(entry["peak_rss_bytes"], rss)

    def report(self) -> dict:
        """``{phase: {calls, wall_s, peak_rss_bytes}}`` (JSON-able copy)."""
        return {name: dict(entry) for name, entry in self._phases.items()}


def merge_phase_reports(*reports) -> dict:
    """Fold phase reports: calls/wall sum, peak RSS maxes; skips None."""
    out: dict[str, dict] = {}
    for report in reports:
        if not report:
            continue
        for name, entry in report.items():
            acc = out.setdefault(
                name, {"calls": 0, "wall_s": 0.0, "peak_rss_bytes": 0}
            )
            acc["calls"] += int(entry.get("calls", 0))
            acc["wall_s"] += float(entry.get("wall_s", 0.0))
            acc["peak_rss_bytes"] = max(
                acc["peak_rss_bytes"], int(entry.get("peak_rss_bytes", 0))
            )
    return out
