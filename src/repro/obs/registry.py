"""Thread-safe metrics registry with exactly-mergeable histograms.

Every histogram in every process shares one fixed, log-spaced bucket
layout (:data:`BUCKET_EDGES`), so snapshots taken in different workers
merge *exactly*: bucket counts, observation counts, mins and maxes are
integers/extrema and add/extremise losslessly.  Percentiles read off the
merged buckets are therefore identical no matter where the observations
happened — the price is bucket resolution: a reported quantile is the
geometric midpoint of its bucket, i.e. within a factor of
``BUCKET_RATIO ** 0.5`` (~26%) of the true value.

Counters and gauges always update (they back the public ``stats()``
views and cost the same dict-under-lock write as the hand-rolled
counters they replace).  Histogram observation and span timing — the
per-event hot-path costs — honour the registry's ``enabled`` flag and
collapse to near-nothing when observability is off (``REPRO_OBS=0``).
"""

from __future__ import annotations

import os
import threading
from time import perf_counter as _perf_counter
from typing import Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "BUCKETS_PER_DECADE",
    "BUCKET_EDGES",
    "BUCKET_RATIO",
    "Histogram",
    "MetricsRegistry",
    "bucket_index",
    "merge_snapshots",
    "metrics",
    "obs_enabled",
    "set_default_enabled",
    "strip_gauges",
]

#: Buckets per factor-of-10; 5 gives a bucket ratio of 10^(1/5) ~ 1.585.
BUCKETS_PER_DECADE = 5

#: Ratio between consecutive bucket upper edges.
BUCKET_RATIO = 10.0 ** (1.0 / BUCKETS_PER_DECADE)

_MIN_DECADE = -7  # 100 ns — below any timer resolution we care about
_MAX_DECADE = 8  # 1e8 — covers second-scale latencies and payload sizes

#: Shared upper edges: value ``v`` lands in the first bucket whose edge
#: is ``>= v``.  One underflow bucket below ``10**_MIN_DECADE`` and one
#: overflow bucket above ``10**_MAX_DECADE`` bracket the range.
BUCKET_EDGES = np.power(
    10.0,
    np.arange(_MIN_DECADE * BUCKETS_PER_DECADE, _MAX_DECADE * BUCKETS_PER_DECADE + 1)
    / BUCKETS_PER_DECADE,
)
N_BUCKETS = len(BUCKET_EDGES) + 1  # + overflow


def bucket_index(value: float) -> int:
    """Index of the bucket holding ``value`` (vectorises over arrays)."""
    return int(np.searchsorted(BUCKET_EDGES, value, side="left"))


class Histogram:
    """Fixed log-bucket histogram; snapshots merge exactly by addition.

    Not itself locked — the owning :class:`MetricsRegistry` serialises
    access.  ``sum`` is a float accumulator and merges only up to
    float-addition reordering; everything else merges exactly.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = np.zeros(N_BUCKETS, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if arr.size == 0:
            return
        idx = np.searchsorted(BUCKET_EDGES, arr, side="left")
        self.counts += np.bincount(idx, minlength=N_BUCKETS)
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        lo, hi = float(arr.min()), float(arr.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (geometric bucket midpoint).

        Exact up to bucket resolution: the true quantile lies in the
        same bucket, so the estimate is within ``sqrt(BUCKET_RATIO)``
        multiplicatively.  Clamped to the observed ``[min, max]``.
        """
        if self.count == 0:
            return float("nan")
        b = self.percentile_bucket(q)
        if b == 0:
            est = float(BUCKET_EDGES[0])
        elif b >= len(BUCKET_EDGES):
            est = float(BUCKET_EDGES[-1])
        else:
            est = float(np.sqrt(BUCKET_EDGES[b - 1] * BUCKET_EDGES[b]))
        lo = self.min if self.min is not None else est
        hi = self.max if self.max is not None else est
        return min(max(est, lo), hi)

    def percentile_bucket(self, q: float) -> int:
        """Bucket index containing the q-th percentile observation."""
        if self.count == 0:
            return -1
        rank = max(1, int(np.ceil(q / 100.0 * self.count)))
        cum = np.cumsum(self.counts)
        return int(np.searchsorted(cum, rank, side="left"))

    def merge(self, other: "Histogram") -> None:
        self.counts += other.counts
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_snapshot(self) -> dict:
        """JSON-serialisable sparse form (string bucket keys)."""
        nz = np.nonzero(self.counts)[0]
        return {
            "count": int(self.count),
            "sum": float(self.sum),
            "min": self.min,
            "max": self.max,
            "buckets": {str(int(i)): int(self.counts[i]) for i in nz},
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "Histogram":
        h = cls()
        h.count = int(snap.get("count", 0))
        h.sum = float(snap.get("sum", 0.0))
        h.min = snap.get("min")
        h.max = snap.get("max")
        for key, n in snap.get("buckets", {}).items():
            h.counts[int(key)] = int(n)
        return h


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "1").strip().lower() not in ("0", "false", "off")


_default_enabled: bool | None = None


def set_default_enabled(enabled: bool | None) -> None:
    """Override the ``REPRO_OBS`` default for registries created after.

    ``None`` restores env-variable control.  Does not retroactively
    change existing registries.
    """
    global _default_enabled
    _default_enabled = enabled


def obs_enabled() -> bool:
    """Effective default ``enabled`` for new registries."""
    return _env_enabled() if _default_enabled is None else _default_enabled


class _NullSpan:
    """No-op span used when observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """Times a ``with`` block into ``<name>.seconds`` (+ ``<name>.size``).

    Spans nest: a per-thread stack tracks the active chain, so
    ``active_spans()`` can report e.g. ``("serve.score", "serve.adapt")``
    while adaptation runs inside scoring.  Re-entering the same name is
    fine — each entry times independently.
    """

    __slots__ = ("_registry", "_name", "_size", "_t0")

    _stacks = threading.local()

    def __init__(self, registry: "MetricsRegistry", name: str, size: float | None):
        self._registry = registry
        self._name = name
        self._size = size

    def __enter__(self) -> "_Span":
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        stack.append(self._name)
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = _perf_counter() - self._t0
        self._stacks.stack.pop()
        reg = self._registry
        reg.observe(f"{self._name}.seconds", elapsed)
        if self._size is not None:
            reg.observe(f"{self._name}.size", self._size)


def active_spans() -> tuple:
    """Names of spans currently open on this thread, outermost first."""
    return tuple(getattr(_Span._stacks, "stack", ()))


class MetricsRegistry:
    """Thread-safe counters, gauges, histograms, spans and collectors.

    - *Counters* are monotone totals; they merge across processes by
      summing.  ``set_counter`` installs an absolute total (for
      mirroring an external counter such as the LRU cache's).
    - *Gauges* are instantaneous values; a merged snapshot sums them
      (useful for e.g. total pending depth across shards), and
      :func:`strip_gauges` drops them when folding a dead worker's
      retired snapshot.
    - *Histograms* share the module-wide bucket layout and merge
      exactly; see :class:`Histogram`.
    - *Collectors* are callbacks run at snapshot time to pull external
      state into the registry (cheap: snapshots are rare).

    When ``enabled`` is False, ``observe``/``span`` become no-ops while
    counters, gauges and collectors keep working, so ``stats()`` views
    built on the registry stay truthful with observability off.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        self.enabled = obs_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- counters / gauges -------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_counter(self, name: str, value: float) -> None:
        with self._lock:
            self._counters[name] = value

    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def inc_gauge(self, name: str, delta: float) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def gauge(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    # -- histograms / spans ------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def observe_many(self, name: str, values) -> None:
        """Record a batch of observations into one histogram.

        One lock acquisition and one vectorized bucket count for the whole
        batch (see :meth:`Histogram.observe_many`) — the per-request cost
        of batch-serving sites recording e.g. per-request pool sizes.
        """
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe_many(values)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def span(self, name: str, size: float | None = None):
        """Context manager timing its block into ``<name>.seconds``."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, size)

    # -- collectors / snapshots --------------------------------------------
    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        self._collectors.append(fn)

    def snapshot(self) -> dict:
        """JSON-serialisable point-in-time copy of every metric."""
        for fn in self._collectors:
            fn(self)
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_snapshot() for name, h in self._histograms.items()
                },
            }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(*snapshots: Mapping | None) -> dict:
    """Merge registry snapshots: counters/gauges sum, histograms add.

    Histogram merging is exact (shared bucket layout); ``None`` entries
    are skipped so callers can pass optional retired/live snapshots
    straight through.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, Histogram] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, v in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + v
        for name, v in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + v
        for name, hsnap in snap.get("histograms", {}).items():
            h = Histogram.from_snapshot(hsnap)
            if name in hists:
                hists[name].merge(h)
            else:
                hists[name] = h
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: h.to_snapshot() for name, h in hists.items()},
    }


def strip_gauges(snapshot: Mapping) -> dict:
    """Copy of ``snapshot`` without gauges.

    Used when folding a dead worker's last-known snapshot into retired
    totals: its counters and histograms are history worth keeping, but
    its gauges (cache size, pending depth) described state that died
    with the process.
    """
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": {},
        "histograms": dict(snapshot.get("histograms", {})),
    }


_global_lock = threading.Lock()
_global_registry: MetricsRegistry | None = None


def metrics() -> MetricsRegistry:
    """The process-global default registry (training instrumentation)."""
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry()
        return _global_registry
