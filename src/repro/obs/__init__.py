"""repro.obs — unified metrics, tracing and profiling.

One observability layer for the whole stack: serving (both tiers),
meta-/CVAE-training, and the grid engine all report through a
:class:`MetricsRegistry` whose snapshots are plain JSON dicts and merge
exactly across processes.  See the README "Observability" section for
the metric naming scheme and CLI surfaces (``serve --metrics-json``,
``grid status --timings``).

Kill switch: ``REPRO_OBS=0`` disables histogram observation and span
timing process-wide (counters and gauges — the backing store for the
public ``stats()`` views — keep working).
"""

from repro.obs.profiler import PhaseProfiler, merge_phase_reports, peak_rss_bytes
from repro.obs.registry import (
    BUCKET_EDGES,
    BUCKET_RATIO,
    BUCKETS_PER_DECADE,
    Histogram,
    MetricsRegistry,
    active_spans,
    bucket_index,
    merge_snapshots,
    metrics,
    obs_enabled,
    set_default_enabled,
    strip_gauges,
)

__all__ = [
    "BUCKET_EDGES",
    "BUCKET_RATIO",
    "BUCKETS_PER_DECADE",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "active_spans",
    "bucket_index",
    "merge_phase_reports",
    "merge_snapshots",
    "metrics",
    "obs_enabled",
    "peak_rss_bytes",
    "set_default_enabled",
    "strip_gauges",
]
