"""`ShardedService`: N supervised worker processes behind one front-end.

Layout
------
Requests are routed by ``user_row % n_workers``, so each worker's
adaptation LRU owns a disjoint slice of the user base — no cross-worker
cache duplication.  Every shard gets its own
:class:`~repro.service.MicroBatcher` on the parent side: concurrent
``submit`` calls coalesce into per-shard micro-batches (``max_wait_ms``
deadline, ``max_batch`` cap) that cross the process boundary as **one**
``batch`` RPC, and the worker resolves the whole flush's cold-start users
with one ``adapt_users`` call.

Because the workers memory-map one shared artifact and score each request
through the same solo path the single-process facade uses (see
``RecommenderService.recommend_batch``), the sharded answers are
bit-identical to sequential single-process serving for the same request
stream.

Supervision
-----------
A heartbeat thread polls worker liveness and each shard's pipe reader
detects EOF on death; either path restarts the worker against the same
mmap'd artifact with a cleared cache (generation counter makes the two
detectors idempotent).  In-flight requests of a dead worker are resubmitted
once to its replacement; a request that kills two workers in a row gets its
error instead of an infinite crash loop.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.interface import Recommendation
from repro.data.tasks import PreferenceTask
from repro.obs import MetricsRegistry, merge_snapshots, strip_gauges
from repro.service.batching import MicroBatcher
from repro.service.service import DeadlineSkipped, ServeRequest, service_stats_view
from repro.serve.faults import FaultPlan
from repro.serve.resilience import (
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    PopularityFallback,
    ResilienceConfig,
    ServiceOverloaded,
)
from repro.serve.worker import CONTROL_ID, WorkerOptions, run_worker

#: default resubmits after a worker death: one replacement try, then fail
#: the call (``resubmit_limit`` on the constructor overrides).
_MAX_ATTEMPTS = 2

#: consecutive died-before-ready incarnations after which a shard is
#: marked permanently failed instead of revived (stops load-crash loops
#: and lets ``wait_ready`` fail fast).
_STARTUP_FAILURE_LIMIT = 2

#: counter bumped on each breaker transition, keyed by the new state.
_BREAKER_COUNTERS = {
    "open": "serve.breaker.opened",
    "half-open": "serve.breaker.half_open",
    "closed": "serve.breaker.closed",
}


@dataclass
class _PendingCall:
    """An RPC awaiting its worker reply (or a resubmit after a restart)."""

    future: Future
    kind: str
    payload: object
    attempts: int = 1


@dataclass
class _Shard:
    """Parent-side state of one worker: pipe, pending RPCs, coalescer."""

    index: int
    lock: threading.Lock = field(default_factory=threading.Lock)
    pending: dict[int, _PendingCall] = field(default_factory=dict)
    next_id: int = 0
    generation: int = 0
    restarts: int = 0
    proc: mp.process.BaseProcess | None = None
    conn: object = None
    ready: threading.Event = field(default_factory=threading.Event)
    batcher: MicroBatcher | None = None
    #: freshest registry snapshot received from the live worker (updated
    #: by stats() RPCs and the supervisor's heartbeat polls).
    last_metrics: dict | None = None
    #: accumulated gauge-stripped snapshots of every dead predecessor —
    #: the fold that keeps counters from vanishing on restart.
    retired_metrics: dict | None = None
    metrics_poll_pending: bool = False
    #: last startup error reported over the pipe (CONTROL_ID, False, msg).
    start_error: str | None = None
    #: consecutive incarnations that died before signalling ready.
    startup_failures: int = 0
    #: set once the shard is declared permanently unable to start; the
    #: reason string.  A failed shard is never revived again.
    failed: str | None = None
    #: per-shard circuit breaker; only armed with a resilience config.
    breaker: CircuitBreaker | None = None
    #: requests admitted and not yet settled (resilient path only).
    inflight: int = 0


@dataclass
class _ResilientCall:
    """One resilient request's lifecycle state on the front-end.

    The outer future is what the caller holds; it is resolved exactly once
    by whichever finishes first — the shard's answer, a retry's answer, the
    deadline watchdog, or an immediate shed/breaker/failed-shard rejection.
    Losers of that race are dropped by the ``Future`` state machine
    (``InvalidStateError``) and only the winner counts outcomes.
    """

    request: ServeRequest
    shard: "_Shard"
    outer: Future
    deadline: float | None
    attempts: int = 0
    timer: threading.Timer | None = None


def default_start_method() -> str:
    """The repo's process-start idiom: fork when available, else spawn."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class ShardedService:
    """Serve one artifact from N supervised worker processes.

    Parameters
    ----------
    artifact:
        path of a ``Recommender.save`` archive; every worker maps it.
    n_workers:
        shard count; requests route by ``user_row % n_workers``.
    cache_size:
        per-worker adaptation LRU capacity.
    candidate_pool:
        optional global candidate restriction, forwarded to every worker.
    max_batch / max_wait_ms:
        per-shard coalescing window (see :class:`MicroBatcher`).
    mmap_mode:
        how workers load the artifact; ``"r"`` (default) maps it read-only,
        ``None`` forces the old eager load.
    start_method:
        multiprocessing start method; default fork-where-available.  The
        worker entry point is spawn-safe.
    heartbeat_interval:
        seconds between supervisor liveness polls.
    request_timeout:
        upper bound on one cross-process flush; ``None`` waits forever.
    resubmit_limit:
        how many times an in-flight request is resubmitted to a revived
        worker after a death before its future gets the error.
    resilience:
        optional :class:`~repro.serve.resilience.ResilienceConfig`; arms
        per-shard circuit breakers, bounded admission, retries, deadlines
        and the degraded popularity fallback.  ``None`` (default) keeps
        the exact historical serving path — bit-identical answers.
    fault_plan:
        optional :class:`~repro.serve.faults.FaultPlan` armed inside every
        worker, for chaos tests; ``None`` injects nothing.
    """

    def __init__(
        self,
        artifact: str | Path,
        n_workers: int = 2,
        *,
        cache_size: int = 256,
        candidate_pool: np.ndarray | None = None,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        mmap_mode: str | None = "r",
        start_method: str | None = None,
        heartbeat_interval: float = 0.5,
        request_timeout: float | None = 60.0,
        resubmit_limit: int = _MAX_ATTEMPTS - 1,
        refresh_every: int = 0,
        refresh_lr: float = 0.1,
        refresh_steps: int | None = None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if resubmit_limit < 0:
            raise ValueError("resubmit_limit must be >= 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        path = Path(artifact)
        if not path.exists():
            raise FileNotFoundError(f"artifact not found: {path}")
        self._artifact = str(path)
        if fault_plan is not None and not fault_plan:
            fault_plan = None  # an empty plan arms nothing
        self._options = WorkerOptions(
            mmap_mode=mmap_mode,
            cache_size=cache_size,
            candidate_pool=candidate_pool,
            refresh_every=refresh_every,
            refresh_lr=refresh_lr,
            refresh_steps=refresh_steps,
            fault_plan=fault_plan,
        )
        self._ctx = mp.get_context(start_method or default_start_method())
        self._request_timeout = request_timeout
        self._max_attempts = resubmit_limit + 1
        self.heartbeat_interval = heartbeat_interval
        self._resilience = resilience
        self._fallback = None
        self._retry_lock = threading.Lock()
        self._retry_rng = None
        if resilience is not None:
            self._retry_rng = np.random.default_rng(
                np.random.SeedSequence([resilience.seed])
            )
            if resilience.fallback:
                self._fallback = PopularityFallback.from_artifact(
                    path, mmap_mode=mmap_mode, candidate_pool=candidate_pool
                )
        # Front-end registry: request/restart counters plus the
        # coalescing histograms (queue wait, batch size, RPC and
        # end-to-end round trips).  Worker registries merge into it in
        # stats().
        self.metrics = MetricsRegistry()
        self._closing = False
        self._closed = False
        self._shards = [_Shard(index=i) for i in range(n_workers)]
        for shard in self._shards:
            if resilience is not None:
                shard.breaker = CircuitBreaker(
                    failure_threshold=resilience.failure_threshold,
                    reset_timeout=resilience.reset_timeout,
                    half_open_probes=resilience.half_open_probes,
                    on_transition=self._on_breaker_transition,
                )
            with shard.lock:
                self._spawn_worker(shard)
            shard.batcher = MicroBatcher(
                self._make_flush(shard),
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                metrics=self.metrics,
            )
        self._stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- worker lifecycle ----------------------------------------------
    def _spawn_worker(self, shard: _Shard) -> None:
        """Start (or restart) a shard's process; caller holds ``shard.lock``."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=run_worker,
            args=(
                child_conn,
                self._artifact,
                self._options,
                shard.index,
                shard.restarts,  # incarnation number for the fault plan
            ),
            name=f"repro-serve-shard-{shard.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        shard.proc = proc
        shard.conn = parent_conn
        shard.ready = threading.Event()
        reader = threading.Thread(
            target=self._read_shard,
            args=(shard, shard.generation, parent_conn),
            name=f"repro-serve-reader-{shard.index}",
            daemon=True,
        )
        reader.start()

    def _read_shard(self, shard: _Shard, generation: int, conn) -> None:
        """Resolve one pipe's replies; on EOF hand the shard to revival."""
        while True:
            try:
                req_id, ok, payload = conn.recv()
            except (EOFError, OSError):
                break
            if req_id == CONTROL_ID:
                if ok:
                    shard.startup_failures = 0
                    shard.ready.set()
                else:
                    # The worker could not load the artifact; it reports
                    # why and exits, and revival decides whether to retry
                    # or mark the shard permanently failed.
                    shard.start_error = str(payload)
                continue
            with shard.lock:
                call = shard.pending.pop(req_id, None)
            if call is None:
                continue
            if ok:
                call.future.set_result(payload)
            else:
                call.future.set_exception(
                    RuntimeError(f"shard {shard.index} request failed: {payload}")
                )
        if not self._closing:
            self._revive(shard, generation)

    def _revive(self, shard: _Shard, generation: int) -> None:
        """Restart a dead worker and resubmit its in-flight requests once.

        Idempotent: the EOF reader and the heartbeat poll may both report
        the same death, but only the caller matching ``shard.generation``
        acts.  The replacement maps the same artifact and starts with an
        empty adaptation cache.

        A worker that dies *before* signalling ready failed to load the
        artifact; after ``_STARTUP_FAILURE_LIMIT`` consecutive such deaths
        the shard is marked permanently failed (pending calls get the
        error, ``wait_ready`` raises) instead of crash-looping.
        """
        with shard.lock:
            if (
                self._closing
                or shard.failed is not None
                or shard.generation != generation
            ):
                return
            shard.generation += 1
            if not shard.ready.is_set():
                shard.startup_failures += 1
                self.metrics.inc("serve.startup_failures")
                if shard.startup_failures >= _STARTUP_FAILURE_LIMIT:
                    reason = shard.start_error or (
                        "worker exited before ready"
                        f" (exit code {shard.proc.exitcode})"
                    )
                    shard.failed = (
                        f"shard {shard.index} failed to start: {reason}"
                    )
                    error = RuntimeError(shard.failed)
                    for call in shard.pending.values():
                        call.future.set_exception(error)
                    shard.pending.clear()
                    try:
                        shard.conn.close()
                    except OSError:
                        pass
                    # Wake wait_ready waiters; they see ``failed`` and raise.
                    shard.ready.set()
                    return
            shard.restarts += 1
            self.metrics.inc("serve.restarts")
            # Fold the dead worker's last-known snapshot into the shard's
            # retired totals so its counters and histograms survive the
            # restart.  Gauges are stripped: they described instantaneous
            # state (cache size, pending depth) that died with the process.
            if shard.last_metrics is not None:
                shard.retired_metrics = merge_snapshots(
                    shard.retired_metrics, strip_gauges(shard.last_metrics)
                )
                shard.last_metrics = None
            stale = list(shard.pending.items())
            shard.pending.clear()
            try:
                shard.conn.close()
            except OSError:
                pass
            if shard.proc.is_alive():
                shard.proc.terminate()
            shard.proc.join(timeout=1.0)
            self._spawn_worker(shard)
            for req_id, call in stale:
                if call.attempts >= self._max_attempts:
                    call.future.set_exception(
                        RuntimeError(
                            f"shard {shard.index} died twice serving one request"
                        )
                    )
                    continue
                call.attempts += 1
                shard.pending[req_id] = call
                try:
                    shard.conn.send((req_id, call.kind, call.payload))
                except (OSError, BrokenPipeError):
                    pass  # replacement died instantly; next revival resubmits

    def _supervise(self) -> None:
        """Heartbeat: poll worker liveness as a backstop to pipe EOF.

        Each tick also refreshes every live shard's ``last_metrics``
        snapshot (fire-and-forget, so a busy worker never stalls the
        supervisor) — that copy is what :meth:`_revive` folds into the
        retired totals when a worker dies without warning.
        """
        while not self._stop.wait(self.heartbeat_interval):
            for shard in self._shards:
                if shard.failed is not None:
                    continue
                if shard.proc is not None and not shard.proc.is_alive():
                    self._revive(shard, shard.generation)
                else:
                    self._poll_shard_metrics(shard)

    def _poll_shard_metrics(self, shard: _Shard) -> None:
        """Refresh one shard's last-known metrics without blocking.

        Lock-free on purpose: the flag is only tested-and-set here (the
        supervisor is the sole caller) and the done callback may fire
        inside :meth:`_revive` while ``shard.lock`` is held, so it must
        not take the lock — plain attribute assignment is atomic.
        """
        if shard.metrics_poll_pending or self._closed:
            return
        shard.metrics_poll_pending = True
        generation = shard.generation

        def _done(future: Future) -> None:
            shard.metrics_poll_pending = False
            if future.cancelled() or future.exception() is not None:
                return
            if shard.generation != generation:
                # The worker this poll targeted was restarted while the
                # reply was in flight; its snapshot was already folded
                # into the retired totals — stashing it again would
                # double-count on the next fold.
                return
            payload = future.result()
            snap = payload.get("metrics") if isinstance(payload, dict) else None
            if snap:
                shard.last_metrics = snap

        try:
            _, future = self._call(shard, "stats", None)
        except RuntimeError:
            shard.metrics_poll_pending = False
            return
        future.add_done_callback(_done)

    # -- RPC ------------------------------------------------------------
    def _call(self, shard: _Shard, kind: str, payload) -> tuple[int, Future]:
        future: Future = Future()
        call = _PendingCall(future, kind, payload)
        with shard.lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if shard.failed is not None:
                raise RuntimeError(shard.failed)
            req_id = shard.next_id
            shard.next_id += 1
            shard.pending[req_id] = call
            try:
                shard.conn.send((req_id, kind, payload))
            except (OSError, BrokenPipeError):
                pass  # dead worker: revival will resubmit this call
        return req_id, future

    def _rpc(self, shard: _Shard, kind: str, payload=None):
        t0 = perf_counter()
        req_id, future = self._call(shard, kind, payload)
        try:
            result = future.result(timeout=self._request_timeout)
        except TimeoutError:
            with shard.lock:
                shard.pending.pop(req_id, None)
            raise
        self.metrics.observe("serve.rpc.seconds", perf_counter() - t0)
        return result

    def _make_flush(self, shard: _Shard):
        def flush(requests, _instances) -> list[Recommendation]:
            return self._rpc(shard, "batch", list(requests))

        return flush

    # -- serving --------------------------------------------------------
    def shard_of(self, user_row: int) -> int:
        return int(user_row) % len(self._shards)

    def submit(
        self,
        user_row: int,
        k: int = 10,
        task: PreferenceTask | None = None,
        exclude_seen: bool = True,
        deadline: float | None = None,
    ) -> Future:
        """Enqueue one request; resolves to a :class:`Recommendation`.

        The request rides its shard's next micro-batch: one coalesced RPC,
        one batched adaptation pass in the worker.

        With a resilience config armed the future additionally passes
        through admission control, the shard's circuit breaker, retries,
        and the deadline watchdog — it then *always* resolves by the
        deadline, either with the shard's answer, a ``degraded=True``
        popularity answer, or (fallback disabled) a typed error.
        ``deadline`` is absolute ``time.time()``; when omitted the
        config's default budget applies.
        """
        if self._resilience is not None:
            return self._submit_resilient(user_row, k, task, exclude_seen, deadline)
        if deadline is not None:
            raise ValueError(
                "per-request deadlines require a resilience config "
                "(pass resilience=ResilienceConfig(...) to ShardedService)"
            )
        shard = self._shards[self.shard_of(user_row)]
        request = ServeRequest(int(user_row), int(k), task, bool(exclude_seen))
        self.metrics.inc("serve.requests")
        if not self.metrics.enabled:
            return shard.batcher.submit(request, None)
        t0 = perf_counter()
        future = shard.batcher.submit(request, None)
        future.add_done_callback(
            lambda _f: self.metrics.observe(
                "serve.request.seconds", perf_counter() - t0
            )
        )
        return future

    # -- resilient serving ----------------------------------------------
    def _submit_resilient(
        self,
        user_row: int,
        k: int,
        task: PreferenceTask | None,
        exclude_seen: bool,
        deadline: float | None,
    ) -> Future:
        cfg = self._resilience
        if deadline is None and cfg.deadline is not None:
            deadline = time.time() + cfg.deadline
        shard = self._shards[self.shard_of(user_row)]
        request = ServeRequest(
            int(user_row), int(k), task, bool(exclude_seen), deadline
        )
        self.metrics.inc("serve.requests")
        call = _ResilientCall(request, shard, Future(), deadline)
        if self.metrics.enabled:
            t0 = perf_counter()
            call.outer.add_done_callback(
                lambda _f: self.metrics.observe(
                    "serve.request.seconds", perf_counter() - t0
                )
            )
        if deadline is not None:
            # The watchdog guarantees the outer future resolves by the
            # deadline even if the shard never answers; whichever of the
            # watchdog and a late answer loses the set_result race is
            # dropped without being counted.
            call.timer = threading.Timer(
                max(deadline - time.time(), 0.0),
                self._finish_degraded,
                args=(call, "deadline"),
            )
            call.timer.daemon = True
            call.timer.start()
        self._dispatch(call)
        return call.outer

    def _dispatch(self, call: _ResilientCall) -> None:
        """Admit one (re)attempt: deadline -> shard health -> shed -> breaker."""
        cfg = self._resilience
        shard = call.shard
        if call.outer.done():
            return
        if call.deadline is not None and time.time() >= call.deadline:
            self._finish_degraded(call, "deadline")
            return
        if shard.failed is not None:
            self._finish_degraded(call, "failure", RuntimeError(shard.failed))
            return
        if cfg.max_pending:
            with shard.lock:
                admitted = shard.inflight < cfg.max_pending
                if admitted:
                    shard.inflight += 1
            if not admitted:
                self._finish_degraded(call, "shed")
                return
        if shard.breaker is not None and not shard.breaker.allow():
            if cfg.max_pending:
                with shard.lock:
                    shard.inflight -= 1
            self._finish_degraded(call, "breaker")
            return
        call.attempts += 1
        inner = shard.batcher.submit(call.request, None, deadline=call.deadline)
        inner.add_done_callback(lambda f, c=call: self._settle(c, f))

    def _settle(self, call: _ResilientCall, inner: Future) -> None:
        """One attempt finished: record the breaker outcome, then resolve
        the caller's future, retry, or degrade."""
        cfg = self._resilience
        shard = call.shard
        if cfg.max_pending:
            with shard.lock:
                shard.inflight -= 1
        exc = inner.exception()
        if exc is None:
            # The RPC round-tripped — a success for the breaker even when
            # the worker skipped the request as expired (per-request
            # deadline pressure must not open the circuit).
            if shard.breaker is not None:
                shard.breaker.record_success()
            result = inner.result()
            if isinstance(result, DeadlineSkipped):
                self._finish_degraded(call, "deadline")
            else:
                self._finish_ok(call, result)
            return
        # RPC-level failure: worker error, repeated death, flush timeout.
        if shard.breaker is not None:
            shard.breaker.record_failure()
        can_retry = (
            call.attempts <= cfg.retry_limit
            and shard.failed is None
            and not call.outer.done()
            and (call.deadline is None or time.time() < call.deadline)
        )
        if can_retry:
            self.metrics.inc("serve.retries")
            delay = self._backoff_delay(call.attempts)
            if call.deadline is not None:
                delay = min(delay, max(call.deadline - time.time(), 0.0))
            timer = threading.Timer(delay, self._dispatch, args=(call,))
            timer.daemon = True
            timer.start()
            return
        self._finish_degraded(call, "failure", exc)

    def _backoff_delay(self, attempt: int) -> float:
        """Jittered exponential backoff, deterministic given the config seed."""
        cfg = self._resilience
        delay = cfg.backoff_base * (2 ** (attempt - 1))
        if cfg.backoff_jitter and delay > 0:
            with self._retry_lock:
                u = self._retry_rng.random()
            delay *= 1.0 + cfg.backoff_jitter * (2.0 * u - 1.0)
        return max(delay, 0.0)

    def _finish_ok(self, call: _ResilientCall, result) -> None:
        try:
            call.outer.set_result(result)
        except InvalidStateError:
            return  # the deadline watchdog won and already counted
        if call.timer is not None:
            call.timer.cancel()
        self.metrics.inc("serve.responses.ok")

    def _finish_degraded(
        self, call: _ResilientCall, reason: str, exc: Exception | None = None
    ) -> None:
        """Resolve a request the model tier could not serve in time.

        With the fallback armed the caller gets a ``degraded=True``
        popularity answer; otherwise the reason's typed error.  Counters
        (``serve.responses.*``, ``serve.degraded.<reason>`` and the
        reason-specific tallies) are bumped only by the resolver that wins
        the future, so they reconcile exactly with per-request outcomes.
        """
        if call.outer.done():
            return
        request = call.request
        result = None
        if self._fallback is not None:
            try:
                result = self._fallback.recommend(
                    request.user_row, request.k, request.exclude_seen
                )
            except Exception as fallback_exc:  # degrade to the error path
                exc = exc if exc is not None else fallback_exc
        if result is not None:
            try:
                call.outer.set_result(result)
            except InvalidStateError:
                return
            self.metrics.inc("serve.responses.degraded")
            self.metrics.inc(f"serve.degraded.{reason}")
        else:
            if reason == "deadline":
                error: Exception = DeadlineExceeded(
                    f"request for user {request.user_row} missed its deadline"
                )
            elif reason == "shed":
                error = ServiceOverloaded(
                    f"shard {call.shard.index} admission queue is full"
                )
            elif reason == "breaker":
                error = CircuitOpen(
                    f"shard {call.shard.index} circuit breaker is open"
                )
            else:
                error = exc if exc is not None else RuntimeError(
                    f"shard {call.shard.index} failed"
                )
            try:
                call.outer.set_exception(error)
            except InvalidStateError:
                return
            self.metrics.inc("serve.responses.error")
            self.metrics.inc(f"serve.failed.{reason}")
        if call.timer is not None:
            call.timer.cancel()
        if reason == "deadline":
            self.metrics.inc("serve.deadline_exceeded")
        elif reason == "shed":
            self.metrics.inc("serve.shed")
        elif reason == "breaker":
            self.metrics.inc("serve.breaker.rejected")

    def _on_breaker_transition(self, old: str, new: str) -> None:
        del old
        counter = _BREAKER_COUNTERS.get(new)
        if counter is not None:
            self.metrics.inc(counter)

    def recommend(
        self,
        user_row: int,
        k: int = 10,
        task: PreferenceTask | None = None,
        exclude_seen: bool = True,
    ) -> Recommendation:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(user_row, k, task, exclude_seen).result(
            timeout=self._request_timeout
        )

    def recommend_many(
        self, user_rows: list[int], k: int = 10, exclude_seen: bool = True
    ) -> list[Recommendation]:
        """Fan a batch of users over their shards and gather the answers."""
        futures = [
            self.submit(user, k, exclude_seen=exclude_seen) for user in user_rows
        ]
        return [f.result(timeout=self._request_timeout) for f in futures]

    def register_user_history(self, task: PreferenceTask) -> None:
        """Attach a support task to its owning shard for adaptation."""
        self._rpc(self._shards[self.shard_of(task.user_row)], "register", task)

    def invalidate_user(self, user_row: int) -> None:
        """Drop one user's cached adaptation on its owning shard."""
        self._rpc(self._shards[self.shard_of(user_row)], "invalidate", int(user_row))

    def observe(self, user_row: int, item_row: int, rating: float = 1.0) -> None:
        """Route one interaction event to the user's owning shard.

        The worker's :meth:`RecommenderService.observe` appends the event
        to the user's support task and invalidates exactly that user's
        cached adaptation — the same semantics as the single-process
        facade, because the owning shard holds that user's *only* cache
        entry.  Auto-refresh (``refresh_every``) counts shard-local events.
        """
        self.observe_async(user_row, item_row, rating).result(
            timeout=self._request_timeout
        )

    def observe_async(
        self, user_row: int, item_row: int, rating: float = 1.0
    ) -> Future:
        """Fire-and-track variant of :meth:`observe` for write streams."""
        shard = self._shards[self.shard_of(user_row)]
        payload = (int(user_row), int(item_row), float(rating))
        _, future = self._call(shard, "observe", payload)
        return future

    def meta_refresh(
        self, meta_lr: float | None = None, steps: int | None = None
    ) -> list[dict]:
        """Reptile-refresh every shard from its observed users.

        Each worker refreshes its own meta-initialization from its own
        shard's dirty users (shards never see each other's events), so the
        per-shard updates differ — use single-process serving when strict
        cross-shard parameter equality matters.  Returns one info dict per
        shard.
        """
        calls = [
            self._call(shard, "refresh", (meta_lr, steps))
            for shard in self._shards
        ]
        return [
            future.result(timeout=self._request_timeout) for _, future in calls
        ]

    def ping(self, shard_index: int) -> bool:
        """Round-trip health probe of one worker."""
        return self._rpc(self._shards[shard_index], "ping") == "pong"

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every worker finished loading the artifact.

        Fails fast: raises ``RuntimeError`` as soon as any shard is marked
        permanently failed (its worker kept dying during artifact load)
        instead of hanging until the timeout.  Returns ``False`` only on a
        genuine timeout with startup still in progress.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            all_ready = True
            for shard in self._shards:
                if shard.failed is not None:
                    raise RuntimeError(shard.failed)
                if not shard.ready.is_set():
                    all_ready = False
            if all_ready:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            # Poll rather than wait on the Event objects: revival swaps in
            # a fresh Event per incarnation, so a blocked wait() could be
            # watching an orphaned event forever.
            time.sleep(0.01)

    # -- observability ---------------------------------------------------
    def health(self) -> dict:
        """Cheap, non-blocking readiness view — no worker RPCs.

        Per shard: process liveness, readiness, permanent-failure reason,
        restart count, admitted in-flight depth, and breaker state.  The
        overall ``status`` is ``"ok"`` when every shard can serve,
        ``"degraded"`` when some cannot but answers are still possible
        (surviving shards and/or the popularity fallback), and ``"down"``
        when nothing can answer.
        """
        shards = []
        n_serving = 0
        for shard in self._shards:
            alive = shard.proc is not None and shard.proc.is_alive()
            breaker_state = (
                shard.breaker.state if shard.breaker is not None else None
            )
            serving = (
                alive
                and shard.ready.is_set()
                and shard.failed is None
                and breaker_state != BREAKER_OPEN
            )
            n_serving += bool(serving)
            shards.append(
                {
                    "shard": shard.index,
                    "alive": alive,
                    "ready": shard.ready.is_set(),
                    "failed": shard.failed,
                    "restarts": shard.restarts,
                    "inflight": shard.inflight,
                    "breaker": breaker_state,
                }
            )
        if n_serving == len(shards):
            status = "ok"
        elif n_serving > 0 or self._fallback is not None:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "fallback": self._fallback is not None,
            "shards": shards,
        }

    @property
    def n_requests(self) -> int:
        """Total requests accepted by the front-end (legacy attribute)."""
        return int(self.metrics.counter("serve.requests"))

    def stats(self) -> dict:
        """Front-end counters plus each worker's own ``stats()`` snapshot.

        The legacy shape is preserved (``workers`` / ``requests`` /
        ``restarts`` / ``shards[*].worker``) and one new key is added:
        ``metrics`` — the front-end registry merged with every shard's
        registry snapshot *including* gauge-stripped snapshots of dead
        predecessors, so counter totals survive worker restarts.  Each
        per-shard ``worker`` view is rendered from its merged (retired +
        live) snapshot for the same reason.
        """
        parts = [self.metrics.snapshot()]
        shards = []
        for shard in self._shards:
            entry: dict = {
                "shard": shard.index,
                "restarts": shard.restarts,
                "batching": shard.batcher.stats(),
            }
            try:
                worker = self._rpc(shard, "stats")
            except Exception as exc:
                worker = {"error": str(exc)}
            live = worker.pop("metrics", None) if isinstance(worker, dict) else None
            if live is not None:
                shard.last_metrics = live
            retired = shard.retired_metrics
            if live is not None or retired is not None:
                merged = merge_snapshots(retired, live)
                parts.append(merged)
                if retired is not None and isinstance(worker, dict):
                    # Fold the dead predecessors' totals back into the
                    # per-shard view; gauges (cache size, pending) come
                    # from the live worker only.
                    pid = worker.get("pid")
                    batching = worker.get("batching")
                    worker = service_stats_view(merged)
                    if pid is not None:
                        worker["pid"] = pid
                    if batching is not None:
                        worker["batching"] = batching
            entry["worker"] = worker
            shards.append(entry)
        return {
            "workers": len(self._shards),
            "requests": self.n_requests,
            "restarts": sum(s.restarts for s in self._shards),
            "shards": shards,
            "metrics": merge_snapshots(*parts),
        }

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Flush pending micro-batches, then stop workers and supervisor."""
        if self._closed:
            return
        # Flush while revival is still armed: a worker dying mid-drain must
        # not drop the batch.  Only then stop supervision and the workers.
        for shard in self._shards:
            shard.batcher.close()
        self._closing = True
        self._stop.set()
        self._supervisor.join(timeout=2.0)
        for shard in self._shards:
            with shard.lock:
                try:
                    shard.conn.send((shard.next_id, "shutdown", None))
                except (OSError, BrokenPipeError):
                    pass
            shard.proc.join(timeout=2.0)
            if shard.proc.is_alive():
                shard.proc.terminate()
                shard.proc.join(timeout=1.0)
            try:
                shard.conn.close()
            except OSError:
                pass
        self._closed = True

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
