"""Deterministic fault injection for the sharded serving stack.

A :class:`FaultPlan` is a seeded, JSON-constructible schedule of failures —
worker crashes, injected RPC delay, slow or failing adaptation, artifact
load failure, pipe drops — that the chaos suite and ``bench_chaos.py``
replay against a live :class:`~repro.serve.ShardedService`.  The plan is
pickled into each worker through
:class:`~repro.serve.worker.WorkerOptions`; inside the worker a
:class:`FaultInjector` (the plan filtered to that shard) is consulted
through three hooks:

- ``on_rpc``    — once per RPC received (``crash`` / ``rpc_delay`` /
  ``pipe_drop`` fire here),
- ``on_adapt``  — once per adaptation batch (``adapt_delay`` /
  ``adapt_error``),
- ``on_load``   — once before the artifact is opened (``load_error``).

Triggers are event-counter based (*the Nth matching event on this shard*),
so a plan replays identically run after run; probabilistic faults
(``probability < 1``) draw from a generator seeded by ``(plan seed, shard,
fault index)`` and are therefore just as reproducible.  When no plan is
armed the hooks are never constructed and the serving hot path pays only a
``None`` check.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]

#: Everything the injector knows how to break.
FAULT_KINDS = (
    "crash",  # kill the worker process at the Nth RPC (exit code 17)
    "rpc_delay",  # sleep inside the worker before handling the Nth RPC
    "pipe_drop",  # close the worker's pipe end at the Nth RPC (EOF upstream)
    "adapt_delay",  # sleep inside the Nth adaptation batch (slow fine-tuning)
    "adapt_error",  # raise InjectedFault from the Nth adaptation batch
    "load_error",  # raise InjectedFault before the artifact is opened
)

#: Exit code of an injected worker crash, distinguishable from real deaths.
CRASH_EXIT_CODE = 17

#: fault kind -> the hook (event stream) it fires on.
_EVENT_OF = {
    "crash": "rpc",
    "rpc_delay": "rpc",
    "pipe_drop": "rpc",
    "adapt_delay": "adapt",
    "adapt_error": "adapt",
    "load_error": "load",
}


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault injector."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        one of :data:`FAULT_KINDS`.
    shard:
        which shard the fault targets; ``None`` means every shard.
    at:
        1-based index of the first matching event (RPC, adaptation batch,
        or load attempt, depending on ``kind``) the fault fires on.
    count:
        how many consecutive matching events it keeps firing for once
        reached; ``0`` means forever.
    seconds:
        sleep length for the delay kinds; ignored otherwise.
    probability:
        chance of actually firing each time the counter window matches,
        drawn from the plan-seeded per-(fault, shard) generator.  ``1.0``
        (the default) keeps the schedule purely counter-deterministic.
    incarnation:
        restrict the fault to one worker incarnation (0 = the original
        process, 1 = its first replacement, ...).  A restarted worker
        re-arms the plan with fresh event counters, so without this a
        ``crash at=N`` would kill every replacement at *its* Nth event
        too; ``incarnation=0`` makes "kill the worker once" expressible.
        ``None`` (default) fires in every incarnation.
    """

    kind: str
    shard: int | None = None
    at: int = 1
    count: int = 1
    seconds: float = 0.0
    probability: float = 1.0
    incarnation: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 1:
            raise ValueError("at is 1-based and must be >= 1")
        if self.count < 0:
            raise ValueError("count must be >= 0 (0 = forever)")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.incarnation is not None and self.incarnation < 0:
            raise ValueError("incarnation must be >= 0 (or None)")

    @property
    def event(self) -> str:
        """The hook this fault fires on (``rpc`` / ``adapt`` / ``load``)."""
        return _EVENT_OF[self.kind]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "at": self.at,
            "count": self.count,
            "seconds": self.seconds,
            "probability": self.probability,
            "incarnation": self.incarnation,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown FaultSpec keys: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` entries.

    JSON-constructible (``from_dict`` accepts plain dicts for each fault),
    picklable, and immutable — the same plan object can arm any number of
    services and always injects the same schedule.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "faults",
            tuple(
                f if isinstance(f, FaultSpec) else FaultSpec.from_dict(dict(f))
                for f in self.faults
            ),
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_shard(self, shard: int) -> tuple[FaultSpec, ...]:
        """The subset of faults that target ``shard``."""
        return tuple(
            f for f in self.faults if f.shard is None or f.shard == shard
        )

    def injector(self, shard: int, incarnation: int = 0) -> "FaultInjector | None":
        """An armed :class:`FaultInjector`, or ``None`` if nothing matches."""
        matching = [
            f
            for f in self.for_shard(shard)
            if f.incarnation is None or f.incarnation == incarnation
        ]
        if not matching:
            return None
        return FaultInjector(self, shard, incarnation)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        unknown = set(payload) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        return cls(
            faults=tuple(payload.get("faults", ())),
            seed=int(payload.get("seed", 0)),
        )


@dataclass
class _ArmedFault:
    """One fault's live trigger state inside a worker."""

    spec: FaultSpec
    rng: np.random.Generator
    fired: int = 0

    def due(self, event_index: int) -> bool:
        """Whether the fault fires on the ``event_index``-th event (1-based)."""
        spec = self.spec
        if event_index < spec.at:
            return False
        if spec.count and self.fired >= spec.count:
            return False
        if spec.probability < 1.0 and self.rng.random() >= spec.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """The per-worker executor of a :class:`FaultPlan`.

    Counts each hook's events and fires the matching faults.  ``injected``
    tallies every fired fault by kind so the worker's metrics registry can
    report them (``serve.faults.injected``).
    """

    def __init__(self, plan: FaultPlan, shard: int, incarnation: int = 0):
        self.shard = shard
        self.incarnation = incarnation
        self._events = {"rpc": 0, "adapt": 0, "load": 0}
        self.injected: dict[str, int] = {}
        self._armed: dict[str, list[_ArmedFault]] = {"rpc": [], "adapt": [], "load": []}
        for index, spec in enumerate(plan.faults):
            if spec.shard is not None and spec.shard != shard:
                continue
            if spec.incarnation is not None and spec.incarnation != incarnation:
                continue
            # Per-(fault, shard, incarnation) streams keep probabilistic
            # faults independent across workers yet fully determined by
            # the plan seed.
            rng = np.random.default_rng(
                np.random.SeedSequence([plan.seed, shard, incarnation, index])
            )
            self._armed[spec.event].append(_ArmedFault(spec, rng))

    def _fire(self, event: str) -> list[FaultSpec]:
        self._events[event] += 1
        index = self._events[event]
        due = [
            armed.spec
            for armed in self._armed[event]
            if armed.due(index)
        ]
        for spec in due:
            self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
        return due

    # -- hooks -----------------------------------------------------------
    def on_rpc(self, conn=None) -> None:
        """Called once per RPC received, before it is handled.

        ``crash`` exits the process immediately (``os._exit`` so no
        cleanup runs — exactly like a SIGKILL'd worker), ``pipe_drop``
        closes the worker's pipe end (the parent sees EOF and revives
        while this process lingers until terminated), ``rpc_delay``
        sleeps in-line, delaying every request in the flush.
        """
        for spec in self._fire("rpc"):
            if spec.kind == "rpc_delay":
                time.sleep(spec.seconds)
            elif spec.kind == "pipe_drop":
                if conn is not None:
                    conn.close()
            elif spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)

    def on_adapt(self, n_users: int = 1) -> None:
        """Called once per adaptation batch, before fine-tuning starts."""
        del n_users  # part of the hook signature, not of the trigger
        for spec in self._fire("adapt"):
            if spec.kind == "adapt_delay":
                time.sleep(spec.seconds)
            elif spec.kind == "adapt_error":
                raise InjectedFault(
                    f"injected adaptation failure on shard {self.shard}"
                )

    def on_load(self) -> None:
        """Called once before the worker opens the artifact."""
        for spec in self._fire("load"):
            if spec.kind == "load_error":
                raise InjectedFault(
                    f"injected artifact-load failure on shard {self.shard}"
                )
