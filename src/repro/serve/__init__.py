"""Multi-worker serving: sharded processes over one mmap'd artifact.

The production tier above :mod:`repro.service`::

    path = method.save("metadpa.npz")
    with ShardedService(path, n_workers=4) as service:
        service.register_user_history(task)      # routed to the owner shard
        service.recommend(user_row=7, k=10)      # coalesced, cached, sharded

Workers memory-map the artifact (O(open) startup, one shared page-cache
copy), own disjoint user slices with private adaptation LRUs, and are
supervised — a dead worker restarts against the same artifact with a
cleared cache.  Answers are bit-identical to the single-process
:class:`~repro.service.RecommenderService` for the same request stream.
:mod:`repro.serve.loadgen` provides the Zipfian open-loop harness used by
``benchmarks/bench_load.py``.

Failure is a first-class workload: :mod:`repro.serve.faults` replays
seeded fault schedules inside the workers, and :mod:`repro.serve
.resilience` (armed via ``ShardedService(resilience=...)``) adds
end-to-end deadlines, per-shard circuit breakers, bounded admission, and
a degraded popularity fallback so the service keeps answering through
crashes and overload.
"""

from repro.serve.faults import FaultInjector, FaultPlan, FaultSpec, InjectedFault
from repro.serve.loadgen import (
    LoadReport,
    StreamOp,
    mixed_zipfian_stream,
    run_mixed_open_loop,
    run_open_loop,
    zipfian_users,
)
from repro.serve.resilience import (
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    PopularityFallback,
    ResilienceConfig,
    ServiceOverloaded,
)
from repro.serve.sharded import ShardedService
from repro.serve.worker import WorkerOptions, run_worker

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LoadReport",
    "PopularityFallback",
    "ResilienceConfig",
    "ServiceOverloaded",
    "ShardedService",
    "StreamOp",
    "WorkerOptions",
    "mixed_zipfian_stream",
    "run_mixed_open_loop",
    "run_open_loop",
    "run_worker",
    "zipfian_users",
]
