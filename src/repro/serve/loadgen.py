"""Open-loop Zipfian load generation for the serving layer.

Production request streams are heavy-tailed: a hot head of users accounts
for most traffic (their adaptations sit in the LRU) while a long tail of
rare users forces cold fine-tuning.  :func:`zipfian_users` samples such a
stream — P(rank r) ∝ 1/r^α over a bounded user pool — and
:func:`run_open_loop` replays it open-loop: arrivals are scheduled on a
fixed clock (``i / rate``) regardless of completions, so a service that
cannot keep up accumulates queueing delay in its latency percentiles
instead of silently throttling the generator (closed-loop measurement would
hide the overload).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


def zipf_probabilities(n: int, alpha: float) -> np.ndarray:
    """Normalized P(rank r) ∝ 1/(r+1)^alpha for ranks 0..n-1."""
    if n <= 0:
        raise ValueError("n must be positive")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), alpha)
    return weights / weights.sum()


def zipfian_users(
    pool: Sequence[int] | np.ndarray,
    n_requests: int,
    alpha: float = 1.1,
    seed: int = 0,
) -> np.ndarray:
    """Sample a Zipfian(α) request stream over ``pool``.

    Rank follows pool order: ``pool[0]`` is the hottest user.  ``alpha``
    controls skew — larger means a hotter head and a colder tail.
    """
    pool = np.asarray(pool, dtype=int)
    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(pool.size, alpha)
    return rng.choice(pool, size=n_requests, p=probabilities)


@dataclass
class LoadReport:
    """Latency and throughput summary of one open-loop run."""

    n_requests: int
    offered_rate: float
    elapsed: float
    latencies: np.ndarray

    @property
    def qps(self) -> float:
        """Sustained completion rate over the whole run."""
        return self.n_requests / self.elapsed if self.elapsed > 0 else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q))

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "offered_rate": self.offered_rate,
            "elapsed_s": self.elapsed,
            "qps": self.qps,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


def run_open_loop(
    submit: Callable[[int], Future],
    users: Sequence[int] | np.ndarray,
    rate: float,
) -> LoadReport:
    """Drive ``submit`` with one request per user at ``rate`` arrivals/s.

    ``submit`` must return a future (e.g. ``ShardedService.submit``).  Each
    request's latency is submit-to-completion, so coalescing waits and
    queueing delay under overload are counted against the service.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    users = np.asarray(users, dtype=int)
    n = users.size
    latencies = np.full(n, np.nan)
    done_at = np.full(n, np.nan)
    futures: list[Future] = []
    start = time.perf_counter()
    for i, user in enumerate(users):
        target = start + i / rate
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        submitted = time.perf_counter()

        def record(future: Future, i: int = i, submitted: float = submitted) -> None:
            finished = time.perf_counter()
            latencies[i] = finished - submitted
            done_at[i] = finished

        future = submit(int(user))
        future.add_done_callback(record)
        futures.append(future)
    for future in futures:
        future.result()
    # result() can return a hair before the done-callback runs; wait it out.
    deadline = time.monotonic() + 5.0
    while np.isnan(done_at).any() and time.monotonic() < deadline:
        time.sleep(0.001)
    elapsed = float(np.nanmax(done_at) - start)
    return LoadReport(
        n_requests=n,
        offered_rate=rate,
        elapsed=elapsed,
        latencies=latencies,
    )
