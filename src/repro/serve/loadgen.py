"""Open-loop Zipfian load generation for the serving layer.

Production request streams are heavy-tailed: a hot head of users accounts
for most traffic (their adaptations sit in the LRU) while a long tail of
rare users forces cold fine-tuning.  :func:`zipfian_users` samples such a
stream — P(rank r) ∝ 1/r^α over a bounded user pool — and
:func:`run_open_loop` replays it open-loop: arrivals are scheduled on a
fixed clock (``i / rate``) regardless of completions, so a service that
cannot keep up accumulates queueing delay in its latency percentiles
instead of silently throttling the generator (closed-loop measurement would
hide the overload).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.obs import Histogram


def zipf_probabilities(n: int, alpha: float) -> np.ndarray:
    """Normalized P(rank r) ∝ 1/(r+1)^alpha for ranks 0..n-1."""
    if n <= 0:
        raise ValueError("n must be positive")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), alpha)
    return weights / weights.sum()


def zipfian_users(
    pool: Sequence[int] | np.ndarray,
    n_requests: int,
    alpha: float = 1.1,
    seed: int = 0,
) -> np.ndarray:
    """Sample a Zipfian(α) request stream over ``pool``.

    Rank follows pool order: ``pool[0]`` is the hottest user.  ``alpha``
    controls skew — larger means a hotter head and a colder tail.
    """
    pool = np.asarray(pool, dtype=int)
    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(pool.size, alpha)
    return rng.choice(pool, size=n_requests, p=probabilities)


@dataclass
class LoadReport:
    """Latency and throughput summary of one open-loop run."""

    n_requests: int
    offered_rate: float
    elapsed: float
    latencies: np.ndarray

    @property
    def qps(self) -> float:
        """Sustained completion rate over the whole run."""
        return self.n_requests / self.elapsed if self.elapsed > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile from the raw latency array."""
        return float(np.percentile(self.latencies, q))

    def latency_histogram(self) -> Histogram:
        """The latencies as a shared-layout :class:`~repro.obs.Histogram`.

        Same bucket edges as the service-side span histograms, so
        loadgen-reported and service-reported percentiles are comparable
        bucket-for-bucket (both within one bucket ratio, ~1.585x, of the
        true quantile).
        """
        hist = Histogram()
        hist.observe_many(self.latencies[~np.isnan(self.latencies)])
        return hist

    def to_dict(self) -> dict:
        """Summary for reports: histogram-derived p50/p99 (see above).

        ``p50_ms``/``p99_ms`` come from the shared log-bucket histogram —
        directly comparable with service-side span percentiles, at bucket
        resolution.  The exact array percentiles stay available through
        :meth:`percentile` and ride along as ``p50_exact_ms``/
        ``p99_exact_ms``.
        """
        hist = self.latency_histogram()
        return {
            "n_requests": self.n_requests,
            "offered_rate": self.offered_rate,
            "elapsed_s": self.elapsed,
            "qps": self.qps,
            "p50_ms": hist.percentile(50) * 1e3,
            "p99_ms": hist.percentile(99) * 1e3,
            "p50_exact_ms": self.percentile(50) * 1e3,
            "p99_exact_ms": self.percentile(99) * 1e3,
        }


@dataclass(frozen=True)
class StreamOp:
    """One operation of a mixed read/write stream.

    ``kind`` is ``"read"`` (a recommendation request) or ``"write"`` (an
    observed ``(user, item, rating)`` interaction event).
    """

    kind: str
    user_row: int
    item_row: int = -1
    rating: float = 1.0


def mixed_zipfian_stream(
    user_pool: Sequence[int] | np.ndarray,
    item_pool: Sequence[int] | np.ndarray,
    n_ops: int,
    write_frac: float = 0.15,
    alpha: float = 1.1,
    seed: int = 0,
) -> list[StreamOp]:
    """Interleave Zipfian reads with uniform-random write events.

    Users follow the same Zipf(α) popularity law for reads and writes — a
    hot user both requests often and rates often, which is the worst case
    for the adaptation cache (every write invalidates a hot entry).
    """
    if not 0.0 <= write_frac <= 1.0:
        raise ValueError("write_frac must be in [0, 1]")
    user_pool = np.asarray(user_pool, dtype=int)
    item_pool = np.asarray(item_pool, dtype=int)
    rng = np.random.default_rng(seed)
    users = rng.choice(
        user_pool, size=n_ops, p=zipf_probabilities(user_pool.size, alpha)
    )
    is_write = rng.random(n_ops) < write_frac
    items = rng.choice(item_pool, size=n_ops)
    ratings = rng.random(n_ops)
    return [
        StreamOp("write", int(u), int(i), float(r))
        if w
        else StreamOp("read", int(u))
        for u, w, i, r in zip(users, is_write, items, ratings)
    ]


def _open_loop(
    submit_one: Callable[[int], Future],
    n: int,
    rate: float,
) -> LoadReport:
    """Fixed-clock open loop over ``submit_one(i) -> Future`` for i < n."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    latencies = np.full(n, np.nan)
    done_at = np.full(n, np.nan)
    futures: list[Future] = []
    start = time.perf_counter()
    for i in range(n):
        target = start + i / rate
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        submitted = time.perf_counter()

        def record(future: Future, i: int = i, submitted: float = submitted) -> None:
            finished = time.perf_counter()
            latencies[i] = finished - submitted
            done_at[i] = finished

        future = submit_one(i)
        future.add_done_callback(record)
        futures.append(future)
    for future in futures:
        future.result()
    # result() can return a hair before the done-callback runs; wait it out.
    deadline = time.monotonic() + 5.0
    while np.isnan(done_at).any() and time.monotonic() < deadline:
        time.sleep(0.001)
    elapsed = float(np.nanmax(done_at) - start)
    return LoadReport(
        n_requests=n,
        offered_rate=rate,
        elapsed=elapsed,
        latencies=latencies,
    )


def run_open_loop(
    submit: Callable[[int], Future],
    users: Sequence[int] | np.ndarray,
    rate: float,
) -> LoadReport:
    """Drive ``submit`` with one request per user at ``rate`` arrivals/s.

    ``submit`` must return a future (e.g. ``ShardedService.submit``).  Each
    request's latency is submit-to-completion, so coalescing waits and
    queueing delay under overload are counted against the service.
    """
    users = np.asarray(users, dtype=int)
    return _open_loop(lambda i: submit(int(users[i])), users.size, rate)


def run_mixed_open_loop(
    service,
    ops: Sequence[StreamOp],
    rate: float,
) -> LoadReport:
    """Replay a mixed read/write stream open-loop against a service.

    Reads go through ``service.submit``; writes through
    ``service.observe_async`` when available (the sharded front-end),
    falling back to a completed future around a blocking ``observe``.
    Write latency counts like read latency: an invalidation storm that
    stalls the shard shows up in the percentiles.
    """
    observe_async = getattr(service, "observe_async", None)

    def submit_one(i: int) -> Future:
        op = ops[i]
        if op.kind == "read":
            return service.submit(op.user_row)
        if op.kind != "write":
            raise ValueError(f"unknown stream op kind: {op.kind!r}")
        if observe_async is not None:
            return observe_async(op.user_row, op.item_row, op.rating)
        future: Future = Future()
        try:
            future.set_result(
                service.observe(op.user_row, op.item_row, op.rating)
            )
        except Exception as exc:  # surface through the future like a read
            future.set_exception(exc)
        return future

    return _open_loop(submit_one, len(ops), rate)
