"""The shard worker process: one serving facade over a mapped artifact.

Each worker is a child process running :func:`run_worker` over one end of a
duplex pipe.  It loads the shared artifact with ``mmap_mode`` (O(open)
startup; all workers share one page-cache copy of the weights), wraps it in
its own :class:`~repro.service.RecommenderService` — private adaptation LRU,
private counters — and then answers a tiny RPC protocol::

    parent -> worker:  (req_id, kind, payload)
    worker -> parent:  (req_id, ok, result_or_error)

Kinds: ``batch`` (a flush of :class:`~repro.service.ServeRequest`, answered
by ``recommend_batch`` — one ``adapt_users`` call per flush, solo scoring
for bit-identical results), ``register`` / ``invalidate`` / ``observe``
(history bookkeeping and event-log ingest), ``refresh`` (reptile
meta-refresh from observed tasks), ``stats``, ``ping`` and ``shutdown``.  Any per-request
exception is reported back as ``(req_id, False, message)``; the worker only
exits on ``shutdown`` or a closed pipe, so one bad request never kills the
shard.

The module is import-light and the entry point takes only picklable
arguments (path string, a frozen options dataclass), so it is spawn-safe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing.connection import Connection

import numpy as np

#: req_id of unsolicited worker -> parent control messages (the ready
#: handshake); real request ids start at 0.
CONTROL_ID = -1


@dataclass(frozen=True)
class WorkerOptions:
    """Per-worker serving configuration, pickled into the child process."""

    mmap_mode: str | None = "r"
    cache_size: int = 256
    candidate_pool: np.ndarray | None = None
    refresh_every: int = 0
    refresh_lr: float = 0.1
    refresh_steps: int | None = None
    #: optional :class:`repro.serve.faults.FaultPlan`; ``None`` (the
    #: default) arms nothing and the serving loop pays no hook cost.
    fault_plan: object | None = None


def run_worker(
    conn: Connection,
    artifact: str,
    options: WorkerOptions,
    shard_index: int = 0,
    incarnation: int = 0,
) -> None:
    """Worker main loop: serve RPCs from ``conn`` until shutdown or EOF.

    ``shard_index`` / ``incarnation`` identify this process to the fault
    plan (if any): the injector only arms faults targeting this shard and
    worker generation.  A failed artifact load — injected or real — is
    reported as ``(CONTROL_ID, False, message)`` before exiting, so the
    parent's ``wait_ready`` can fail fast instead of hanging.
    """
    from repro.service import RecommenderService

    injector = None
    if options.fault_plan is not None:
        injector = options.fault_plan.injector(shard_index, incarnation)
    try:
        if injector is not None:
            injector.on_load()
        service = RecommenderService.from_artifact(
            artifact,
            mmap_mode=options.mmap_mode,
            cache_size=options.cache_size,
            candidate_pool=options.candidate_pool,
            refresh_every=options.refresh_every,
            refresh_lr=options.refresh_lr,
            refresh_steps=options.refresh_steps,
            adapt_hook=injector.on_adapt if injector is not None else None,
        )
    except Exception as exc:
        try:
            conn.send((CONTROL_ID, False, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    if injector is not None:
        service.metrics.add_collector(_faults_collector(injector))
    conn.send((CONTROL_ID, True, {"event": "ready", "pid": os.getpid()}))
    try:
        while True:
            try:
                req_id, kind, payload = conn.recv()
            except (EOFError, OSError):
                break
            if kind == "shutdown":
                conn.send((req_id, True, None))
                break
            if injector is not None and kind == "batch":
                # The rpc event stream counts serving flushes only — not
                # control traffic like the supervisor's stats polls, whose
                # cadence would make "the Nth RPC" timing-dependent.
                injector.on_rpc(conn)
            try:
                result = _handle(service, kind, payload)
            except Exception as exc:  # report, don't die: the shard lives on
                conn.send((req_id, False, f"{type(exc).__name__}: {exc}"))
            else:
                conn.send((req_id, True, result))
    finally:
        conn.close()


def _faults_collector(injector):
    """Mirror the injector's fired-fault tally into the worker registry."""

    def collect(reg) -> None:
        total = 0
        for kind, n in injector.injected.items():
            reg.set_counter(f"serve.faults.{kind}", n)
            total += n
        reg.set_counter("serve.faults.injected", total)

    return collect


def _handle(service, kind: str, payload):
    if kind == "batch":
        return service.recommend_batch(payload)
    if kind == "register":
        service.register_user_history(payload)
        return None
    if kind == "invalidate":
        service.invalidate_user(int(payload))
        return None
    if kind == "observe":
        user_row, item_row, rating = payload
        service.observe(int(user_row), int(item_row), float(rating))
        return None
    if kind == "refresh":
        meta_lr, steps = payload
        return service.meta_refresh(meta_lr=meta_lr, steps=steps)
    if kind == "stats":
        # The registry snapshot rides along so the front-end can merge
        # per-shard metrics (and keep a last-known copy that survives
        # this worker's death — see ShardedService._revive).
        return {
            **service.stats(),
            "pid": os.getpid(),
            "metrics": service.metrics.snapshot(),
        }
    if kind == "ping":
        return "pong"
    raise ValueError(f"unknown request kind: {kind!r}")
