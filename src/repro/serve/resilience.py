"""Resilience primitives for the sharded front-end.

Three building blocks, all configured through one JSON-constructible
:class:`ResilienceConfig`:

- :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine over consecutive RPC failures.  While open, requests to the
  shard are rejected instantly (and served degraded) instead of queueing
  behind a worker that keeps failing; after ``reset_timeout`` a bounded
  number of half-open probes test the replacement before the circuit
  closes again.
- :class:`PopularityFallback` — the degraded answer tier.  It *reuses*
  :class:`repro.baselines.popularity.Popularity` over the popularity
  prior shipped inside every artifact (``serving.popularity``; computed
  from the ``seen`` matrix for artifacts that predate it), so a shard
  that is open-circuit, dead, shed, or past deadline still answers —
  with ``Recommendation.degraded = True`` so callers can account for
  quality separately from availability.
- the typed failure vocabulary (:class:`DeadlineExceeded`,
  :class:`ServiceOverloaded`, :class:`CircuitOpen`) raised when the
  fallback tier is disabled.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.interface import Recommendation, ServingState

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CircuitOpen",
    "DeadlineExceeded",
    "PopularityFallback",
    "ResilienceConfig",
    "ServiceOverloaded",
]


class DeadlineExceeded(RuntimeError):
    """The request's end-to-end deadline passed before an answer arrived."""


class ServiceOverloaded(RuntimeError):
    """Admission control shed the request: the shard's queue is full."""


class CircuitOpen(RuntimeError):
    """The shard's circuit breaker is open; the request was not attempted."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the resilient serving path needs, as plain data.

    Parameters
    ----------
    deadline:
        default end-to-end budget (seconds) applied to every request that
        does not carry its own; ``None`` disables deadlines.
    failure_threshold:
        consecutive RPC failures/timeouts that open a shard's breaker.
    reset_timeout:
        seconds an open breaker waits before letting half-open probes
        through.
    half_open_probes:
        how many concurrent trial requests a half-open breaker admits;
        one success closes the circuit, one failure re-opens it.
    max_pending:
        per-shard bound on requests in flight (queued + being served);
        beyond it new requests are shed.  ``0`` disables admission
        control.
    retry_limit:
        how many times a transiently failed request is resubmitted before
        falling back / erroring.
    backoff_base:
        first retry delay in seconds; each further attempt doubles it.
    backoff_jitter:
        uniform ±fraction applied to each backoff delay, drawn from a
        generator seeded with ``seed`` — deterministic run to run.
    fallback:
        answer failed/shed/expired requests from the popularity tier
        (``degraded=True``) instead of raising.
    seed:
        seeds the retry-jitter stream.
    """

    deadline: float | None = None
    failure_threshold: int = 5
    reset_timeout: float = 2.0
    half_open_probes: int = 1
    max_pending: int = 0
    retry_limit: int = 0
    backoff_base: float = 0.05
    backoff_jitter: float = 0.5
    fallback: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.max_pending < 0:
            raise ValueError("max_pending must be >= 0 (0 = unbounded)")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")

    def to_dict(self) -> dict:
        return {
            "deadline": self.deadline,
            "failure_threshold": self.failure_threshold,
            "reset_timeout": self.reset_timeout,
            "half_open_probes": self.half_open_probes,
            "max_pending": self.max_pending,
            "retry_limit": self.retry_limit,
            "backoff_base": self.backoff_base,
            "backoff_jitter": self.backoff_jitter,
            "fallback": self.fallback,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ResilienceConfig":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown ResilienceConfig keys: {sorted(unknown)}")
        return cls(**payload)


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed / open / half-open breaker over consecutive failures.

    Thread-safe.  ``allow()`` is the admission question ("may I attempt a
    request right now?"); callers then report the attempt's outcome with
    ``record_success`` / ``record_failure``.  State transitions:

    - *closed* → *open* after ``failure_threshold`` consecutive failures;
    - *open* → *half-open* once ``reset_timeout`` has elapsed (``allow``
      then admits up to ``half_open_probes`` concurrent trials);
    - *half-open* → *closed* on a probe success, → *open* on a probe
      failure (resetting the timeout clock).

    ``on_transition(old, new)`` is invoked outside the lock for every
    state change so the owner can count transitions into its metrics.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 2.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        """Current state with the open→half-open clock applied; lock held."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            return BREAKER_HALF_OPEN
        return self._state

    def _transition(self, new: str) -> Callable[[], None] | None:
        """Move to ``new``; returns the notify thunk to run outside the lock."""
        old, self._state = self._state, new
        if old == new or self._on_transition is None:
            return None
        notify = self._on_transition
        return lambda: notify(old, new)

    def allow(self) -> bool:
        """Whether a request may be attempted right now."""
        notify = None
        with self._lock:
            state = self._peek_state()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN:
                if self._state == BREAKER_OPEN:
                    # First probe after the reset timeout: surface the
                    # half-open transition so it is observable.
                    notify = self._transition(BREAKER_HALF_OPEN)
                    self._probes_in_flight = 0
                admitted = self._probes_in_flight < self.half_open_probes
                if admitted:
                    self._probes_in_flight += 1
            else:
                admitted = False
        if notify is not None:
            notify()
        return admitted

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == BREAKER_HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                notify = self._transition(BREAKER_CLOSED)
            else:
                notify = None
        if notify is not None:
            notify()

    def record_failure(self) -> None:
        notify = None
        with self._lock:
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._opened_at = self._clock()
                notify = self._transition(BREAKER_OPEN)
            elif (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                notify = self._transition(BREAKER_OPEN)
        if notify is not None:
            notify()


class PopularityFallback:
    """Degraded-tier scorer: top-k by global popularity, no adaptation.

    Wraps the :class:`~repro.baselines.popularity.Popularity` baseline
    around the popularity prior and ``seen`` matrix of a serving artifact
    (memory-mapped — the fallback tier costs O(open), not a model load),
    and tags every answer ``degraded=True``.
    """

    def __init__(
        self,
        popularity: np.ndarray,
        seen: np.ndarray,
        candidate_pool: np.ndarray | None = None,
    ):
        from repro.baselines.popularity import Popularity

        scorer = Popularity()
        scorer.load_state_dict({"scores": np.asarray(popularity)})
        empty = np.zeros((0, 0), dtype=np.float32)
        scorer._serving = ServingState(
            user_content=empty, item_content=empty, seen=np.asarray(seen)
        )
        self._scorer = scorer
        if candidate_pool is None:
            self._pool = None
        else:
            self._pool = np.unique(np.asarray(candidate_pool, dtype=int))

    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        mmap_mode: str | None = "r",
        candidate_pool: np.ndarray | None = None,
    ) -> "PopularityFallback":
        """Build the fallback tier from a ``Recommender.save`` artifact.

        Reads only the serving members — no method construction, no
        weights materialized.  Artifacts written before the popularity
        prior existed fall back to counting the ``seen`` matrix (identical
        for 0/1 interactions).
        """
        from repro.nn.serialization import load_params

        arrays, _ = load_params(path, mmap_mode=mmap_mode)
        seen = arrays["serving.seen"]
        if seen.dtype == np.uint8:
            seen = seen.view(bool)
        popularity = arrays.get("serving.popularity")
        if popularity is None:
            popularity = seen.sum(axis=0, dtype=np.float32)
        return cls(popularity, seen, candidate_pool=candidate_pool)

    def recommend(
        self, user_row: int, k: int = 10, exclude_seen: bool = True
    ) -> Recommendation:
        """Top-``k`` popular unseen items for ``user_row``, ``degraded=True``."""
        result = self._scorer.recommend(
            int(user_row), k=int(k), exclude_seen=exclude_seen, candidates=self._pool
        )
        return replace(result, degraded=True)
