"""Declarative method registry: typed configs, profiles, dict construction.

Every evaluated method is described by a frozen :class:`MethodConfig`
dataclass registered under a name with :func:`register_method`.  A config
class declares the method's full hyper-parameter surface as typed fields
(the field defaults *are* the "full" profile) plus per-profile presets, so
any method is constructible from a plain dict/JSON::

    build_method({"name": "MetaDPA", "profile": "fast", "cvae_epochs": 60})

Unknown names, profiles and config keys are rejected with errors that list
the valid alternatives — a config typo fails loudly instead of silently
training with defaults.  :meth:`MethodConfig.to_dict` round-trips through
JSON, which is how saved artifacts remember how to rebuild their method
(:meth:`repro.core.Recommender.load`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

from repro.baselines import CATN, CoNN, DAML, MeLU, MetaCF, NeuMF, Popularity, TDAR
from repro.core.interface import Recommender
from repro.meta import MetaDPA, MetaDPAConfig

PROFILES = ("full", "fast")

_REGISTRY: dict[str, type["MethodConfig"]] = {}


def register_method(cls: type["MethodConfig"]) -> type["MethodConfig"]:
    """Class decorator: register a :class:`MethodConfig` under ``cls.method``."""
    name = cls.method
    if not name:
        raise ValueError(f"{cls.__name__} must set the `method` class attribute")
    if name in _REGISTRY:
        raise ValueError(f"method {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


@dataclass(frozen=True)
class MethodConfig:
    """Base class for per-method configs.

    Subclasses declare hyper-parameters as dataclass fields (defaults =
    "full" profile), set ``method`` to their registry name, optionally
    provide ``profiles`` presets, and implement :meth:`build`.
    """

    #: registry name; set by each subclass.
    method: ClassVar[str] = ""
    #: per-profile field presets, e.g. ``{"fast": {"epochs": 5}}``.
    profiles: ClassVar[dict[str, dict[str, Any]]] = {}

    def build(self, seed: int = 0) -> Recommender:
        """Instantiate the configured method."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> list[str]:
        return [f.name for f in dataclasses.fields(cls)]

    @classmethod
    def from_dict(
        cls, overrides: Mapping[str, Any] | None = None, profile: str | None = None
    ) -> "MethodConfig":
        """Build a config from a profile preset plus explicit overrides.

        Overrides win over the preset; unknown keys raise a ``ValueError``
        listing the valid fields, unknown profiles one listing the valid
        profiles.
        """
        if profile is not None and profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r} for {cls.method!r}; "
                f"use one of {PROFILES}"
            )
        overrides = dict(overrides or {})
        valid = cls.field_names()
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise ValueError(
                f"unknown config key(s) {unknown} for method {cls.method!r}; "
                f"valid fields: {sorted(valid)}"
            )
        merged = {**cls.profiles.get(profile or "full", {}), **overrides}
        # JSON round-trips turn tuples into lists; dataclass fields that
        # expect tuples (e.g. hidden_dims) get them back here.
        merged = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in merged.items()
        }
        return cls(**merged)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able field dict (tuples become lists)."""
        out: dict[str, Any] = {}
        for name, value in dataclasses.asdict(self).items():
            out[name] = list(value) if isinstance(value, tuple) else value
        return out


# ----------------------------------------------------------------------
# Per-method configs.  Field defaults are the validated "full" budgets the
# experiments use; "fast" shrinks training so the whole Table III fits in a
# CI run while relative budgets stay comparable across methods.
# ----------------------------------------------------------------------


@register_method
@dataclass(frozen=True)
class PopularityConfig(MethodConfig):
    method: ClassVar[str] = "Popularity"

    def build(self, seed: int = 0) -> Recommender:
        return Popularity(seed=seed)


@register_method
@dataclass(frozen=True)
class NeuMFConfig(MethodConfig):
    method: ClassVar[str] = "NeuMF"
    profiles: ClassVar[dict] = {"fast": {"epochs": 5}}

    embed_dim: int = 16
    hidden_dims: tuple[int, ...] = (32, 16)
    epochs: int = 20
    lr: float = 5e-3

    def build(self, seed: int = 0) -> Recommender:
        return NeuMF(
            embed_dim=self.embed_dim,
            hidden_dims=self.hidden_dims,
            epochs=self.epochs,
            lr=self.lr,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class MeLUConfig(MethodConfig):
    method: ClassVar[str] = "MeLU"
    profiles: ClassVar[dict] = {"fast": {"meta_epochs": 6}}

    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (64, 32)
    meta_epochs: int = 30
    finetune_steps: int = 5
    few_shot_views: bool = True

    def build(self, seed: int = 0) -> Recommender:
        return MeLU(
            embed_dim=self.embed_dim,
            hidden_dims=self.hidden_dims,
            meta_epochs=self.meta_epochs,
            finetune_steps=self.finetune_steps,
            few_shot_views=self.few_shot_views,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class MetaCFConfig(MethodConfig):
    method: ClassVar[str] = "MetaCF"
    profiles: ClassVar[dict] = {"fast": {"meta_epochs": 5}}

    embed_dim: int = 24
    hidden_dims: tuple[int, ...] = (32,)
    meta_epochs: int = 20
    inner_lr: float = 0.05
    inner_steps: int = 2
    outer_lr: float = 1e-3
    meta_batch_size: int = 16
    n_potential: int = 2
    finetune_steps: int = 5

    def build(self, seed: int = 0) -> Recommender:
        return MetaCF(
            embed_dim=self.embed_dim,
            hidden_dims=self.hidden_dims,
            meta_epochs=self.meta_epochs,
            inner_lr=self.inner_lr,
            inner_steps=self.inner_steps,
            outer_lr=self.outer_lr,
            meta_batch_size=self.meta_batch_size,
            n_potential=self.n_potential,
            finetune_steps=self.finetune_steps,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class CoNNConfig(MethodConfig):
    method: ClassVar[str] = "CoNN"
    profiles: ClassVar[dict] = {"fast": {"epochs": 4}}

    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (64, 32)
    epochs: int = 15
    lr: float = 1e-3

    def build(self, seed: int = 0) -> Recommender:
        return CoNN(
            embed_dim=self.embed_dim,
            hidden_dims=self.hidden_dims,
            epochs=self.epochs,
            lr=self.lr,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class DAMLConfig(MethodConfig):
    method: ClassVar[str] = "DAML"
    profiles: ClassVar[dict] = {"fast": {"epochs": 4}}

    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (32,)
    epochs: int = 15
    lr: float = 1e-3

    def build(self, seed: int = 0) -> Recommender:
        return DAML(
            embed_dim=self.embed_dim,
            hidden_dims=self.hidden_dims,
            epochs=self.epochs,
            lr=self.lr,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class TDARConfig(MethodConfig):
    method: ClassVar[str] = "TDAR"
    profiles: ClassVar[dict] = {"fast": {"epochs": 4}}

    embed_dim: int = 32
    epochs: int = 15
    lr: float = 1e-3
    align_weight: float = 0.5
    source_weight: float = 0.5
    n_neg_per_pos: int = 4

    def build(self, seed: int = 0) -> Recommender:
        return TDAR(
            embed_dim=self.embed_dim,
            epochs=self.epochs,
            lr=self.lr,
            align_weight=self.align_weight,
            source_weight=self.source_weight,
            n_neg_per_pos=self.n_neg_per_pos,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class CATNConfig(MethodConfig):
    method: ClassVar[str] = "CATN"
    profiles: ClassVar[dict] = {"fast": {"epochs": 4}}

    n_aspects: int = 8
    scale: float = 4.0
    epochs: int = 15
    lr: float = 1e-3
    source_weight: float = 0.5
    n_neg_per_pos: int = 4

    def build(self, seed: int = 0) -> Recommender:
        return CATN(
            n_aspects=self.n_aspects,
            scale=self.scale,
            epochs=self.epochs,
            lr=self.lr,
            source_weight=self.source_weight,
            n_neg_per_pos=self.n_neg_per_pos,
            seed=seed,
        )


@register_method
@dataclass(frozen=True)
class MetaDPASpec(MethodConfig):
    """Flat (JSON-able) view of :class:`repro.meta.MetaDPAConfig`."""

    method: ClassVar[str] = "MetaDPA"
    profiles: ClassVar[dict] = {"fast": {"cvae_epochs": 60, "meta_epochs": 6}}

    beta1: float = 0.1
    beta2: float = 1.0
    latent_dim: int = 16
    cvae_hidden_dim: int = 64
    cvae_epochs: int = 300
    cvae_lr: float = 3e-3
    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (64, 32)
    meta_epochs: int = 30
    finetune_steps: int = 5
    use_augmentation: bool = True
    augmentation_weight: float = 1.0
    few_shot_views: bool = True
    sharpen_augmented: bool = False

    def build(self, seed: int = 0) -> Recommender:
        fields = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        return MetaDPA(MetaDPAConfig(**fields), seed=seed)


# Ablation variants of Fig. 5: the paper's naming is "the variant keeps only
# that constraint" (MetaDPA-ME keeps ME and drops MDI, and vice versa).


@register_method
@dataclass(frozen=True)
class MetaDPAMESpec(MetaDPASpec):
    method: ClassVar[str] = "MetaDPA-ME"

    beta1: float = 0.0


@register_method
@dataclass(frozen=True)
class MetaDPAMDISpec(MetaDPASpec):
    method: ClassVar[str] = "MetaDPA-MDI"

    beta2: float = 0.0


@register_method
@dataclass(frozen=True)
class MetaDPANoAugSpec(MetaDPASpec):
    method: ClassVar[str] = "MetaDPA-NoAug"

    use_augmentation: bool = False


#: The paper's Table III row order.
TABLE3_METHODS = ("NeuMF", "MeLU", "CoNN", "TDAR", "CATN", "DAML", "MetaCF", "MetaDPA")


# ----------------------------------------------------------------------
# Construction entry points.
# ----------------------------------------------------------------------


def config_class(name: str) -> type[MethodConfig]:
    """The registered config class for ``name``; KeyError lists known names."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown method {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def build_method(
    spec: str | Mapping[str, Any] | MethodConfig,
    seed: int | None = None,
    profile: str | None = None,
) -> Recommender:
    """Construct a method from a name, a config dict, or a config object.

    Dict form: ``{"name": ..., "profile": ..., "seed": ..., **overrides}``;
    the ``seed``/``profile`` arguments are fallbacks for keys absent from
    the dict.  The built instance remembers its config so that
    ``save``/``load`` round-trips reproduce it exactly.
    """
    if isinstance(spec, MethodConfig):
        config = spec
    else:
        if isinstance(spec, str):
            spec = {"name": spec}
        overrides = dict(spec)
        name = overrides.pop("name", None)
        if not name:
            raise ValueError("method spec dict requires a 'name' key")
        seed = overrides.pop("seed", seed)
        profile = overrides.pop("profile", profile)
        config = config_class(name).from_dict(overrides, profile=profile)
    method = config.build(seed=int(seed or 0))
    method._method_config = config
    return method


def make_method(name: str, seed: int = 0, profile: str = "full") -> Recommender:
    """Instantiate a registered method by name (compatibility entry point)."""
    return build_method({"name": name}, seed=seed, profile=profile)


def method_names() -> list[str]:
    """All registered method names."""
    return sorted(_REGISTRY)
