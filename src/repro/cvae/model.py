"""The Dual Conditional VAE (Fig. 1 of the paper).

Architecture per domain ``d ∈ {source, target}``:

- rating encoder ``E_d``: MLP on ``[r_d ; x_d]`` producing ``(mu_d, log_var_d)``,
- content encoder ``E^x_d``: MLP on ``x_d`` producing the dense code ``z^x_d``,
- decoder ``D_d``: MLP on ``[z ; x_d]`` producing reconstructed ratings in
  ``[0, 1]`` (sigmoid output — see note below),
- a linear critic projection ``P_d`` mapping the decoder output to the latent
  dimension, used only inside the ME InfoNCE term (the two domains have
  different item counts, so their outputs cannot be dotted directly).

Output-activation note: the paper states softmax on the decoder output; a
softmax over the item axis produces a distribution (Mult-VAE style) whose
entries are ~1/m and which cannot represent independent per-item
probabilities — unusable as soft labels for the downstream BCE meta-learner.
We default to sigmoid (independent per-item probabilities in [0, 1], exactly
the range the paper requires for augmented ratings) and keep softmax as an
option for ablation.

All gradients are derived by hand on top of :mod:`repro.nn`; the test suite
checks them against numerical differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.nn.losses import binary_cross_entropy, gaussian_kl_to_code, info_nce
from repro.nn.module import Grads, Module, Params, mlp
from repro.nn.optim import add_grads
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CVAEConfig:
    """Hyper-parameters of one Dual-CVAE.

    ``beta1`` weighs the MDI constraint, ``beta2`` the ME constraint —
    matching Eq. (8).  The paper's grid search selects β1 = 0.1, β2 = 1.
    """

    n_items_source: int
    n_items_target: int
    content_dim: int
    latent_dim: int = 16
    hidden_dim: int = 64
    beta1: float = 0.1
    beta2: float = 1.0
    infonce_temperature: float = 0.1
    out_activation: str = "sigmoid"

    def __post_init__(self) -> None:
        if min(self.n_items_source, self.n_items_target, self.content_dim) <= 0:
            raise ValueError("dimensions must be positive")
        if self.latent_dim <= 0 or self.hidden_dim <= 0:
            raise ValueError("latent/hidden dims must be positive")
        if self.beta1 < 0 or self.beta2 < 0:
            raise ValueError("constraint weights must be non-negative")
        if self.out_activation not in ("sigmoid", "softmax"):
            raise ValueError("out_activation must be 'sigmoid' or 'softmax'")


@dataclass
class _Branch:
    """The three networks of one domain branch."""

    encoder: Module
    content_encoder: Module
    decoder: Module
    critic: Module


class DualCVAE:
    """A Dual-CVAE over one (source, target) domain pair.

    Parameters are stored flat in :attr:`params` with component prefixes
    (``enc_s.``, ``enc_x_s.``, ``dec_s.``, ``crit_s.`` and the ``_t``
    counterparts), so a single optimizer drives the whole model.
    """

    def __init__(self, config: CVAEConfig, rng: int | np.random.Generator | None = 0):
        self.config = config
        gen = ensure_rng(rng)
        c, latent, hidden = config.content_dim, config.latent_dim, config.hidden_dim
        out_act = config.out_activation

        def branch(n_items: int) -> _Branch:
            return _Branch(
                encoder=mlp([n_items + c, hidden, 2 * latent], activation="tanh"),
                content_encoder=mlp([c, hidden, latent], activation="tanh"),
                decoder=mlp([latent + c, hidden, n_items],
                            activation="tanh", out_activation=out_act),
                critic=mlp([n_items, latent]),
            )

        self._branches = {
            "s": branch(config.n_items_source),
            "t": branch(config.n_items_target),
        }
        self.params: Params = {}
        for side, br in self._branches.items():
            for prefix, module in self._components(side, br):
                for name, value in module.init_params(gen).items():
                    self.params[f"{prefix}.{name}"] = value

    @staticmethod
    def _components(side: str, br: _Branch) -> list[tuple[str, Module]]:
        return [
            (f"enc_{side}", br.encoder),
            (f"enc_x_{side}", br.content_encoder),
            (f"dec_{side}", br.decoder),
            (f"crit_{side}", br.critic),
        ]

    # ------------------------------------------------------------------
    # parameter plumbing
    # ------------------------------------------------------------------
    def _sub(self, prefix: str, params: Params | None = None) -> Params:
        src = self.params if params is None else params
        dot = prefix + "."
        return {k[len(dot):]: v for k, v in src.items() if k.startswith(dot)}

    @staticmethod
    def _merge(total: Grads, prefix: str, grads: Grads) -> None:
        add_grads(total, {f"{prefix}.{k}": v for k, v in grads.items()})

    # ------------------------------------------------------------------
    # forward pieces
    # ------------------------------------------------------------------
    def encode(
        self, side: str, ratings: np.ndarray, content: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, Any]:
        """Rating encoder: returns ``(mu, log_var, cache)``."""
        br = self._branches[side]
        x = np.concatenate([ratings, content], axis=1)
        out, cache = br.encoder.forward(self._sub(f"enc_{side}"), x)
        latent = self.config.latent_dim
        return out[:, :latent], out[:, latent:], cache

    def encode_content(self, side: str, content: np.ndarray) -> np.ndarray:
        """Content encoder output ``z^x`` (no cache; inference only)."""
        br = self._branches[side]
        return br.content_encoder(self._sub(f"enc_x_{side}"), content)

    def decode(self, side: str, z: np.ndarray, content: np.ndarray) -> np.ndarray:
        """Decoder output (inference only)."""
        br = self._branches[side]
        x = np.concatenate([z, content], axis=1)
        return br.decoder(self._sub(f"dec_{side}"), x)

    def generate_from_content(self, content: np.ndarray) -> np.ndarray:
        """The augmentation path (red line in Fig. 1): content → E^x_t → D_t.

        Returns a rating vector in [0, 1] for every row of ``content``.
        This is the only inference path used by diverse preference
        augmentation; it needs no ratings at all, which is what makes the
        augmentation applicable to *every* target-domain user.
        """
        z = self.encode_content("t", content)
        return self.decode("t", z, content)

    # ------------------------------------------------------------------
    # training: loss and gradients for one batch of shared users
    # ------------------------------------------------------------------
    def loss_and_grads(
        self,
        ratings_source: np.ndarray,
        ratings_target: np.ndarray,
        content_source: np.ndarray,
        content_target: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> tuple[dict[str, float], Grads]:
        """Compute all five loss terms of Eq. (8) and their gradients.

        Returns ``(losses, grads)`` where ``losses`` holds each named term
        plus ``"total"`` and ``grads`` matches :attr:`params`.
        """
        gen = ensure_rng(rng)
        cfg = self.config
        grads: Grads = {}

        sides = {
            "s": (ratings_source, content_source),
            "t": (ratings_target, content_target),
        }
        state: dict[str, dict[str, Any]] = {}

        # ---- forward: encoders, reparameterization, content encoders ----
        for side, (ratings, content) in sides.items():
            br = self._branches[side]
            mu, log_var_raw, enc_cache = self.encode(side, ratings, content)
            log_var = np.clip(log_var_raw, -8.0, 8.0)
            clip_mask = np.abs(log_var_raw) < 8.0
            eps = gen.normal(size=mu.shape)
            sigma = np.exp(0.5 * log_var)
            z = mu + sigma * eps
            zx, zx_cache = br.content_encoder.forward(
                self._sub(f"enc_x_{side}"), content
            )
            state[side] = {
                "ratings": ratings,
                "content": content,
                "mu": mu,
                "log_var": log_var,
                "clip_mask": clip_mask,
                "eps": eps,
                "sigma": sigma,
                "z": z,
                "zx": zx,
                "enc_cache": enc_cache,
                "zx_cache": zx_cache,
                # gradient accumulators
                "d_mu": np.zeros_like(mu),
                "d_log_var": np.zeros_like(log_var),
                "d_z": np.zeros_like(z),
                "d_zx": np.zeros_like(zx),
            }

        # ---- decoders: self reconstruction and cross reconstruction ----
        # self: D_s(z_s, x_s) vs r_s ;  cross: D_s(z_t, x_s) vs r_s
        recon: dict[tuple[str, str], dict[str, Any]] = {}
        for dec_side in ("s", "t"):
            for z_side in ("s", "t"):
                br = self._branches[dec_side]
                x_in = np.concatenate(
                    [state[z_side]["z"], state[dec_side]["content"]], axis=1
                )
                out, cache = br.decoder.forward(self._sub(f"dec_{dec_side}"), x_in)
                recon[(dec_side, z_side)] = {
                    "out": out,
                    "cache": cache,
                    "d_out": np.zeros_like(out),
                }

        losses: dict[str, float] = {}

        # ---- ELBO reconstruction (self paths) ----
        elbo_rec = 0.0
        for side in ("s", "t"):
            r = recon[(side, side)]
            loss, d_out = binary_cross_entropy(r["out"], state[side]["ratings"])
            elbo_rec += loss
            r["d_out"] += d_out
        losses["elbo_recon"] = elbo_rec

        # ---- content-conditioned KL (Eq. 3) ----
        kl_total = 0.0
        for side in ("s", "t"):
            st = state[side]
            kl, d_mu, d_log_var, d_code = gaussian_kl_to_code(
                st["mu"], st["log_var"], st["zx"]
            )
            kl_total += kl
            st["d_mu"] += d_mu
            st["d_log_var"] += d_log_var
            st["d_zx"] += d_code
        losses["kl"] = kl_total

        # ---- latent/content alignment MSE (Eq. 4) ----
        mse_total = 0.0
        for side in ("s", "t"):
            st = state[side]
            diff = st["z"] - st["zx"]
            n = diff.size
            mse_total += float((diff * diff).sum() / n)
            st["d_z"] += 2.0 * diff / n
            st["d_zx"] += -2.0 * diff / n
        losses["mse"] = mse_total

        # ---- cross-domain reconstruction (Eq. 5) ----
        rec_total = 0.0
        for dec_side, z_side in (("s", "t"), ("t", "s")):
            r = recon[(dec_side, z_side)]
            loss, d_out = binary_cross_entropy(r["out"], state[dec_side]["ratings"])
            rec_total += loss
            r["d_out"] += d_out
        losses["cross_recon"] = rec_total

        # ---- MDI: InfoNCE on latent codes (Eq. 6) ----
        if cfg.beta1 > 0:
            mdi, d_zs, d_zt = info_nce(
                state["s"]["z"], state["t"]["z"], temperature=cfg.infonce_temperature
            )
            losses["mdi"] = mdi
            state["s"]["d_z"] += cfg.beta1 * d_zs
            state["t"]["d_z"] += cfg.beta1 * d_zt
        else:
            losses["mdi"] = 0.0

        # ---- ME: InfoNCE on decoder outputs through critics (Eq. 7) ----
        if cfg.beta2 > 0:
            crit_caches = {}
            proj = {}
            for side in ("s", "t"):
                br = self._branches[side]
                p, cache = br.critic.forward(
                    self._sub(f"crit_{side}"), recon[(side, side)]["out"]
                )
                proj[side] = p
                crit_caches[side] = cache
            me, d_ps, d_pt = info_nce(
                proj["s"], proj["t"], temperature=cfg.infonce_temperature
            )
            losses["me"] = me
            for side, d_p in (("s", d_ps), ("t", d_pt)):
                br = self._branches[side]
                d_out, crit_grads = br.critic.backward(
                    self._sub(f"crit_{side}"), crit_caches[side], cfg.beta2 * d_p
                )
                self._merge(grads, f"crit_{side}", crit_grads)
                recon[(side, side)]["d_out"] += d_out
        else:
            losses["me"] = 0.0

        losses["total"] = (
            losses["elbo_recon"]
            + losses["kl"]
            + losses["mse"]
            + losses["cross_recon"]
            + cfg.beta1 * losses["mdi"]
            + cfg.beta2 * losses["me"]
        )

        # ---- backward: decoders → latent codes ----
        latent = cfg.latent_dim
        for (dec_side, z_side), r in recon.items():
            if not np.any(r["d_out"]):
                continue
            br = self._branches[dec_side]
            d_in, dec_grads = br.decoder.backward(
                self._sub(f"dec_{dec_side}"), r["cache"], r["d_out"]
            )
            self._merge(grads, f"dec_{dec_side}", dec_grads)
            state[z_side]["d_z"] += d_in[:, :latent]

        # ---- backward: reparameterization → encoders; content encoders ----
        for side in ("s", "t"):
            st = state[side]
            br = self._branches[side]
            # z = mu + exp(0.5*log_var) * eps
            d_mu = st["d_mu"] + st["d_z"]
            d_log_var = st["d_log_var"] + st["d_z"] * 0.5 * st["sigma"] * st["eps"]
            # The clip on log_var zeroes the gradient where it saturated.
            d_log_var = d_log_var * st["clip_mask"]
            d_enc_out = np.concatenate([d_mu, d_log_var], axis=1)
            _, enc_grads = br.encoder.backward(
                self._sub(f"enc_{side}"), st["enc_cache"], d_enc_out
            )
            self._merge(grads, f"enc_{side}", enc_grads)

            _, zx_grads = br.content_encoder.backward(
                self._sub(f"enc_x_{side}"), st["zx_cache"], st["d_zx"]
            )
            self._merge(grads, f"enc_x_{side}", zx_grads)

        # Ensure every parameter has a gradient entry (zero where unused).
        for name, value in self.params.items():
            if name not in grads:
                grads[name] = np.zeros_like(value)
        return losses, grads
