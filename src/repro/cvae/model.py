"""The Dual Conditional VAE (Fig. 1 of the paper).

Architecture per domain ``d ∈ {source, target}``:

- rating encoder ``E_d``: MLP on ``[r_d ; x_d]`` producing ``(mu_d, log_var_d)``,
- content encoder ``E^x_d``: MLP on ``x_d`` producing the dense code ``z^x_d``,
- decoder ``D_d``: MLP on ``[z ; x_d]`` producing reconstructed ratings in
  ``[0, 1]`` (sigmoid output — see note below),
- a linear critic projection ``P_d`` mapping the decoder output to the latent
  dimension, used only inside the ME InfoNCE term (the two domains have
  different item counts, so their outputs cannot be dotted directly).

Output-activation note: the paper states softmax on the decoder output; a
softmax over the item axis produces a distribution (Mult-VAE style) whose
entries are ~1/m and which cannot represent independent per-item
probabilities — unusable as soft labels for the downstream BCE meta-learner.
We default to sigmoid (independent per-item probabilities in [0, 1], exactly
the range the paper requires for augmented ratings) and keep softmax as an
option for ablation.

All gradients are derived by hand on top of :mod:`repro.nn`; the test suite
checks them against numerical differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.nn.losses import (
    _EPS as _BCE_EPS,  # the fused BCE must round exactly like the scalar one
    binary_cross_entropy,
    gaussian_kl_to_code,
    gaussian_kl_to_code_stacked,
    info_nce,
    info_nce_stacked,
)
from repro.nn.module import Grads, Module, Params, mlp
from repro.nn.optim import add_grads
from repro.nn.stacking import pad_axis, stack_params
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CVAEConfig:
    """Hyper-parameters of one Dual-CVAE.

    ``beta1`` weighs the MDI constraint, ``beta2`` the ME constraint —
    matching Eq. (8).  The paper's grid search selects β1 = 0.1, β2 = 1.
    """

    n_items_source: int
    n_items_target: int
    content_dim: int
    latent_dim: int = 16
    hidden_dim: int = 64
    beta1: float = 0.1
    beta2: float = 1.0
    infonce_temperature: float = 0.1
    out_activation: str = "sigmoid"

    def __post_init__(self) -> None:
        if min(self.n_items_source, self.n_items_target, self.content_dim) <= 0:
            raise ValueError("dimensions must be positive")
        if self.latent_dim <= 0 or self.hidden_dim <= 0:
            raise ValueError("latent/hidden dims must be positive")
        if self.beta1 < 0 or self.beta2 < 0:
            raise ValueError("constraint weights must be non-negative")
        if self.out_activation not in ("sigmoid", "softmax"):
            raise ValueError("out_activation must be 'sigmoid' or 'softmax'")


@dataclass
class _Branch:
    """The three networks of one domain branch."""

    encoder: Module
    content_encoder: Module
    decoder: Module
    critic: Module


def build_branch(
    n_items: int,
    content_dim: int,
    latent_dim: int,
    hidden_dim: int,
    out_activation: str,
) -> _Branch:
    """One domain branch's module set (shared by scalar and fused models)."""
    return _Branch(
        encoder=mlp(
            [n_items + content_dim, hidden_dim, 2 * latent_dim], activation="tanh"
        ),
        content_encoder=mlp([content_dim, hidden_dim, latent_dim], activation="tanh"),
        decoder=mlp(
            [latent_dim + content_dim, hidden_dim, n_items],
            activation="tanh",
            out_activation=out_activation,
        ),
        critic=mlp([n_items, latent_dim]),
    )


class DualCVAE:
    """A Dual-CVAE over one (source, target) domain pair.

    Parameters are stored flat in :attr:`params` with component prefixes
    (``enc_s.``, ``enc_x_s.``, ``dec_s.``, ``crit_s.`` and the ``_t``
    counterparts), so a single optimizer drives the whole model.

    Parameters and activations default to ``float32`` — the matrices only
    ever hold ratings in [0, 1] and O(1) activations, and the narrower dtype
    halves the memory traffic of the training hot loop.  Pass
    ``dtype=np.float64`` for gradient checking against numerical
    differentiation, where float32 rounding would drown the finite
    differences.
    """

    def __init__(
        self,
        config: CVAEConfig,
        rng: int | np.random.Generator | None = 0,
        dtype: np.dtype | type = np.float32,
    ):
        self.config = config
        self.dtype = np.dtype(dtype)
        gen = ensure_rng(rng)
        c, latent, hidden = config.content_dim, config.latent_dim, config.hidden_dim

        def branch(n_items: int) -> _Branch:
            return build_branch(n_items, c, latent, hidden, config.out_activation)

        self._branches = {
            "s": branch(config.n_items_source),
            "t": branch(config.n_items_target),
        }
        self.params: Params = {}
        for side, br in self._branches.items():
            for prefix, module in self._components(side, br):
                for name, value in module.init_params(gen).items():
                    self.params[f"{prefix}.{name}"] = value.astype(self.dtype)

    @staticmethod
    def _components(side: str, br: _Branch) -> list[tuple[str, Module]]:
        return [
            (f"enc_{side}", br.encoder),
            (f"enc_x_{side}", br.content_encoder),
            (f"dec_{side}", br.decoder),
            (f"crit_{side}", br.critic),
        ]

    # ------------------------------------------------------------------
    # parameter plumbing
    # ------------------------------------------------------------------
    def _sub(self, prefix: str, params: Params | None = None) -> Params:
        src = self.params if params is None else params
        dot = prefix + "."
        return {k[len(dot):]: v for k, v in src.items() if k.startswith(dot)}

    @staticmethod
    def _merge(total: Grads, prefix: str, grads: Grads) -> None:
        add_grads(total, {f"{prefix}.{k}": v for k, v in grads.items()})

    # ------------------------------------------------------------------
    # forward pieces
    # ------------------------------------------------------------------
    def _cast(self, *arrays: np.ndarray) -> tuple[np.ndarray, ...]:
        """Coerce inputs to the model dtype (no copy when already matching)."""
        return tuple(np.asarray(a, dtype=self.dtype) for a in arrays)

    def encode(
        self, side: str, ratings: np.ndarray, content: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, Any]:
        """Rating encoder: returns ``(mu, log_var, cache)``."""
        br = self._branches[side]
        ratings, content = self._cast(ratings, content)
        x = np.concatenate([ratings, content], axis=1)
        out, cache = br.encoder.forward(self._sub(f"enc_{side}"), x)
        latent = self.config.latent_dim
        return out[:, :latent], out[:, latent:], cache

    def encode_content(self, side: str, content: np.ndarray) -> np.ndarray:
        """Content encoder output ``z^x`` (no cache; inference only)."""
        br = self._branches[side]
        (content,) = self._cast(content)
        return br.content_encoder(self._sub(f"enc_x_{side}"), content)

    def decode(self, side: str, z: np.ndarray, content: np.ndarray) -> np.ndarray:
        """Decoder output (inference only)."""
        br = self._branches[side]
        z, content = self._cast(z, content)
        x = np.concatenate([z, content], axis=1)
        return br.decoder(self._sub(f"dec_{side}"), x)

    def generate_from_content(self, content: np.ndarray) -> np.ndarray:
        """The augmentation path (red line in Fig. 1): content → E^x_t → D_t.

        Returns a rating vector in [0, 1] for every row of ``content``.
        This is the only inference path used by diverse preference
        augmentation; it needs no ratings at all, which is what makes the
        augmentation applicable to *every* target-domain user.
        """
        z = self.encode_content("t", content)
        return self.decode("t", z, content)

    # ------------------------------------------------------------------
    # training: loss and gradients for one batch of shared users
    # ------------------------------------------------------------------
    def loss_and_grads(
        self,
        ratings_source: np.ndarray,
        ratings_target: np.ndarray,
        content_source: np.ndarray,
        content_target: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> tuple[dict[str, float], Grads]:
        """Compute all five loss terms of Eq. (8) and their gradients.

        Returns ``(losses, grads)`` where ``losses`` holds each named term
        plus ``"total"`` and ``grads`` matches :attr:`params`.
        """
        gen = ensure_rng(rng)
        cfg = self.config
        grads: Grads = {}

        ratings_source, content_source = self._cast(ratings_source, content_source)
        ratings_target, content_target = self._cast(ratings_target, content_target)
        sides = {
            "s": (ratings_source, content_source),
            "t": (ratings_target, content_target),
        }
        state: dict[str, dict[str, Any]] = {}

        # ---- forward: encoders, reparameterization, content encoders ----
        for side, (ratings, content) in sides.items():
            br = self._branches[side]
            mu, log_var_raw, enc_cache = self.encode(side, ratings, content)
            log_var = np.clip(log_var_raw, -8.0, 8.0)
            clip_mask = np.abs(log_var_raw) < 8.0
            eps = gen.normal(size=mu.shape).astype(mu.dtype, copy=False)
            sigma = np.exp(0.5 * log_var)
            z = mu + sigma * eps
            zx, zx_cache = br.content_encoder.forward(
                self._sub(f"enc_x_{side}"), content
            )
            state[side] = {
                "ratings": ratings,
                "content": content,
                "mu": mu,
                "log_var": log_var,
                "clip_mask": clip_mask,
                "eps": eps,
                "sigma": sigma,
                "z": z,
                "zx": zx,
                "enc_cache": enc_cache,
                "zx_cache": zx_cache,
                # gradient accumulators
                "d_mu": np.zeros_like(mu),
                "d_log_var": np.zeros_like(log_var),
                "d_z": np.zeros_like(z),
                "d_zx": np.zeros_like(zx),
            }

        # ---- decoders: self reconstruction and cross reconstruction ----
        # self: D_s(z_s, x_s) vs r_s ;  cross: D_s(z_t, x_s) vs r_s
        recon: dict[tuple[str, str], dict[str, Any]] = {}
        for dec_side in ("s", "t"):
            for z_side in ("s", "t"):
                br = self._branches[dec_side]
                x_in = np.concatenate(
                    [state[z_side]["z"], state[dec_side]["content"]], axis=1
                )
                out, cache = br.decoder.forward(self._sub(f"dec_{dec_side}"), x_in)
                recon[(dec_side, z_side)] = {
                    "out": out,
                    "cache": cache,
                    "d_out": np.zeros_like(out),
                }

        losses: dict[str, float] = {}

        # ---- ELBO reconstruction (self paths) ----
        elbo_rec = 0.0
        for side in ("s", "t"):
            r = recon[(side, side)]
            loss, d_out = binary_cross_entropy(r["out"], state[side]["ratings"])
            elbo_rec += loss
            r["d_out"] += d_out
        losses["elbo_recon"] = elbo_rec

        # ---- content-conditioned KL (Eq. 3) ----
        kl_total = 0.0
        for side in ("s", "t"):
            st = state[side]
            kl, d_mu, d_log_var, d_code = gaussian_kl_to_code(
                st["mu"], st["log_var"], st["zx"]
            )
            kl_total += kl
            st["d_mu"] += d_mu
            st["d_log_var"] += d_log_var
            st["d_zx"] += d_code
        losses["kl"] = kl_total

        # ---- latent/content alignment MSE (Eq. 4) ----
        mse_total = 0.0
        for side in ("s", "t"):
            st = state[side]
            diff = st["z"] - st["zx"]
            n = diff.size
            mse_total += float((diff * diff).sum() / n)
            st["d_z"] += 2.0 * diff / n
            st["d_zx"] += -2.0 * diff / n
        losses["mse"] = mse_total

        # ---- cross-domain reconstruction (Eq. 5) ----
        rec_total = 0.0
        for dec_side, z_side in (("s", "t"), ("t", "s")):
            r = recon[(dec_side, z_side)]
            loss, d_out = binary_cross_entropy(r["out"], state[dec_side]["ratings"])
            rec_total += loss
            r["d_out"] += d_out
        losses["cross_recon"] = rec_total

        # ---- MDI: InfoNCE on latent codes (Eq. 6) ----
        if cfg.beta1 > 0:
            mdi, d_zs, d_zt = info_nce(
                state["s"]["z"], state["t"]["z"], temperature=cfg.infonce_temperature
            )
            losses["mdi"] = mdi
            state["s"]["d_z"] += cfg.beta1 * d_zs
            state["t"]["d_z"] += cfg.beta1 * d_zt
        else:
            losses["mdi"] = 0.0

        # ---- ME: InfoNCE on decoder outputs through critics (Eq. 7) ----
        if cfg.beta2 > 0:
            crit_caches = {}
            proj = {}
            for side in ("s", "t"):
                br = self._branches[side]
                p, cache = br.critic.forward(
                    self._sub(f"crit_{side}"), recon[(side, side)]["out"]
                )
                proj[side] = p
                crit_caches[side] = cache
            me, d_ps, d_pt = info_nce(
                proj["s"], proj["t"], temperature=cfg.infonce_temperature
            )
            losses["me"] = me
            for side, d_p in (("s", d_ps), ("t", d_pt)):
                br = self._branches[side]
                d_out, crit_grads = br.critic.backward(
                    self._sub(f"crit_{side}"), crit_caches[side], cfg.beta2 * d_p
                )
                self._merge(grads, f"crit_{side}", crit_grads)
                recon[(side, side)]["d_out"] += d_out
        else:
            losses["me"] = 0.0

        losses["total"] = (
            losses["elbo_recon"]
            + losses["kl"]
            + losses["mse"]
            + losses["cross_recon"]
            + cfg.beta1 * losses["mdi"]
            + cfg.beta2 * losses["me"]
        )

        # ---- backward: decoders → latent codes ----
        latent = cfg.latent_dim
        for (dec_side, z_side), r in recon.items():
            if not np.any(r["d_out"]):
                continue
            br = self._branches[dec_side]
            d_in, dec_grads = br.decoder.backward(
                self._sub(f"dec_{dec_side}"), r["cache"], r["d_out"]
            )
            self._merge(grads, f"dec_{dec_side}", dec_grads)
            state[z_side]["d_z"] += d_in[:, :latent]

        # ---- backward: reparameterization → encoders; content encoders ----
        for side in ("s", "t"):
            st = state[side]
            br = self._branches[side]
            # z = mu + exp(0.5*log_var) * eps
            d_mu = st["d_mu"] + st["d_z"]
            d_log_var = st["d_log_var"] + st["d_z"] * 0.5 * st["sigma"] * st["eps"]
            # The clip on log_var zeroes the gradient where it saturated.
            d_log_var = d_log_var * st["clip_mask"]
            d_enc_out = np.concatenate([d_mu, d_log_var], axis=1)
            _, enc_grads = br.encoder.backward(
                self._sub(f"enc_{side}"), st["enc_cache"], d_enc_out
            )
            self._merge(grads, f"enc_{side}", enc_grads)

            _, zx_grads = br.content_encoder.backward(
                self._sub(f"enc_x_{side}"), st["zx_cache"], st["d_zx"]
            )
            self._merge(grads, f"enc_x_{side}", zx_grads)

        # Ensure every parameter has a gradient entry (zero where unused).
        for name, value in self.params.items():
            if name not in grads:
                grads[name] = np.zeros_like(value)
        return losses, grads

    def loss_only(
        self,
        ratings_source: np.ndarray,
        ratings_target: np.ndarray,
        content_source: np.ndarray,
        content_target: np.ndarray,
        rng: int | np.random.Generator | None = None,
    ) -> dict[str, float]:
        """All loss terms of Eq. (8) without any backward pass.

        Evaluation used to go through :meth:`loss_and_grads` and throw the
        gradients away — roughly doubling the cost of every monitoring pass.
        This is the forward-only path; it consumes the reparameterization
        noise in exactly the same order, so given the same ``rng`` it
        reproduces :meth:`loss_and_grads`'s loss values bit for bit.
        """
        gen = ensure_rng(rng)
        cfg = self.config
        ratings_source, content_source = self._cast(ratings_source, content_source)
        ratings_target, content_target = self._cast(ratings_target, content_target)
        sides = {
            "s": (ratings_source, content_source),
            "t": (ratings_target, content_target),
        }
        state: dict[str, dict[str, Any]] = {}
        for side, (ratings, content) in sides.items():
            br = self._branches[side]
            mu, log_var_raw, _ = self.encode(side, ratings, content)
            log_var = np.clip(log_var_raw, -8.0, 8.0)
            eps = gen.normal(size=mu.shape).astype(mu.dtype, copy=False)
            z = mu + np.exp(0.5 * log_var) * eps
            zx = br.content_encoder(self._sub(f"enc_x_{side}"), content)
            state[side] = {
                "ratings": ratings, "content": content,
                "mu": mu, "log_var": log_var, "z": z, "zx": zx,
            }

        recon = {
            (dec_side, z_side): self.decode(
                dec_side, state[z_side]["z"], state[dec_side]["content"]
            )
            for dec_side in ("s", "t")
            for z_side in ("s", "t")
        }

        losses: dict[str, float] = {}
        losses["elbo_recon"] = sum(
            binary_cross_entropy(recon[(side, side)], state[side]["ratings"])[0]
            for side in ("s", "t")
        )
        losses["kl"] = sum(
            gaussian_kl_to_code(
                state[side]["mu"], state[side]["log_var"], state[side]["zx"]
            )[0]
            for side in ("s", "t")
        )
        mse_total = 0.0
        for side in ("s", "t"):
            diff = state[side]["z"] - state[side]["zx"]
            mse_total += float((diff * diff).sum() / diff.size)
        losses["mse"] = mse_total
        losses["cross_recon"] = sum(
            binary_cross_entropy(
                recon[(dec_side, z_side)], state[dec_side]["ratings"]
            )[0]
            for dec_side, z_side in (("s", "t"), ("t", "s"))
        )
        if cfg.beta1 > 0:
            losses["mdi"] = info_nce(
                state["s"]["z"], state["t"]["z"], temperature=cfg.infonce_temperature
            )[0]
        else:
            losses["mdi"] = 0.0
        if cfg.beta2 > 0:
            proj = {
                side: self._branches[side].critic(
                    self._sub(f"crit_{side}"), recon[(side, side)]
                )
                for side in ("s", "t")
            }
            losses["me"] = info_nce(
                proj["s"], proj["t"], temperature=cfg.infonce_temperature
            )[0]
        else:
            losses["me"] = 0.0
        losses["total"] = (
            losses["elbo_recon"]
            + losses["kl"]
            + losses["mse"]
            + losses["cross_recon"]
            + cfg.beta1 * losses["mdi"]
            + cfg.beta2 * losses["me"]
        )
        return losses


# ----------------------------------------------------------------------
# Fused multi-domain model: k Dual-CVAEs stacked along a leading axis.
# ----------------------------------------------------------------------

def _pad_component(
    comp: str, sub: Params, n_items: int, n_items_max: int
) -> Params:
    """Pad one branch component's parameters to the common item width.

    Only three arrays touch an item axis: the encoder's first weight (its
    *rows* are ``[items ; content]``, so the item block is padded in place
    and the content block moves to offset ``n_items_max``), the decoder's
    last weight/bias (output columns) and the critic's weight (input rows).
    Zero padding is exact: padded rows/columns meet only zero-padded inputs
    and masked gradients, so they stay identically zero through training.
    """
    padded = dict(sub)
    if comp == "enc":
        weight = sub["0.W"]
        item_rows, content_rows = weight[:n_items], weight[n_items:]
        padded["0.W"] = np.concatenate(
            [pad_axis(item_rows, 0, n_items_max), content_rows], axis=0
        )
    elif comp == "dec":
        padded["2.W"] = pad_axis(sub["2.W"], 1, n_items_max)
        padded["2.b"] = pad_axis(sub["2.b"], 0, n_items_max)
    elif comp == "crit":
        padded["0.W"] = pad_axis(sub["0.W"], 0, n_items_max)
    return padded


def _unpad_component(
    comp: str, name: str, value: np.ndarray, n_items: int, n_items_max: int
) -> np.ndarray:
    """Inverse of :func:`_pad_component` for one parameter slice."""
    if comp == "enc" and name == "0.W":
        return np.concatenate([value[:n_items], value[n_items_max:]], axis=0)
    if comp == "dec" and name == "2.W":
        return value[:, :n_items]
    if comp == "dec" and name == "2.b":
        return value[:n_items]
    if comp == "crit" and name == "0.W":
        return value[:n_items]
    return value


_COMPONENTS = ("enc", "enc_x", "dec", "crit")


class FusedDualCVAE:
    """``k`` Dual-CVAEs trained as one stacked model (the fused hot path).

    The 2k domain branches (k source + k target) share one architecture and
    differ only in item-axis width, so their parameters are padded to the
    widest axis and stacked along a leading ``[2k, ...]`` axis: slice ``d``
    in ``[0, k)`` is domain ``d``'s *source* branch, slice ``k + d`` its
    *target* branch.  One stacked forward/backward per step then trains
    every branch of every domain at once — encoders in one pass, all four
    decoder reconstructions of every domain in one pass (self and cross
    reconstructions ride a doubled batch axis) — instead of k sequential
    per-domain epoch loops.

    Padding contract: inputs are zero-padded to the common item width and
    losses are masked, so padded parameter regions receive exactly zero
    gradients and never drift from zero; :meth:`write_back` therefore
    recovers each scalar model's parameters by slicing.  Softmax output
    activations normalize over the item axis and would see the padded
    columns, so fusion requires sigmoid outputs (or equal widths).
    """

    def __init__(self, models: Sequence[DualCVAE]):
        if not models:
            raise ValueError("FusedDualCVAE needs at least one model")
        self.models = list(models)
        self.k = len(self.models)
        ref = self.models[0].config
        for model in self.models:
            cfg = model.config
            if (
                cfg.content_dim != ref.content_dim
                or cfg.latent_dim != ref.latent_dim
                or cfg.hidden_dim != ref.hidden_dim
                or cfg.beta1 != ref.beta1
                or cfg.beta2 != ref.beta2
                or cfg.infonce_temperature != ref.infonce_temperature
                or cfg.out_activation != ref.out_activation
            ):
                raise ValueError(
                    "fused training requires identical CVAE hyper-parameters "
                    "across domains (item counts may differ)"
                )
            if model.dtype != self.models[0].dtype:
                raise ValueError("fused training requires a uniform dtype")
        self.config = ref
        self.dtype = self.models[0].dtype
        self.latent_dim = ref.latent_dim
        self.content_dim = ref.content_dim

        widths = [m.config.n_items_source for m in self.models]
        widths += [m.config.n_items_target for m in self.models]
        self.widths = np.asarray(widths, dtype=np.int64)
        self.n_items_max = int(self.widths.max())
        if ref.out_activation == "softmax" and len(set(widths)) > 1:
            raise ValueError(
                "softmax outputs normalize over the item axis and cannot be "
                "zero-padded; fuse only equal-width domains or use sigmoid"
            )
        self.n_stack = 2 * self.k
        self.branch = build_branch(
            self.n_items_max,
            ref.content_dim,
            ref.latent_dim,
            ref.hidden_dim,
            ref.out_activation,
        )
        #: maps each stacked slice to its domain (source and target branches
        #: of one domain share a gradient-clipping group / Adam schedule).
        self.group_index = np.concatenate([np.arange(self.k), np.arange(self.k)])

        self.params: Params = {}
        for comp in _COMPONENTS:
            per_slice = []
            for d in range(self.n_stack):
                side = "s" if d < self.k else "t"
                model = self.models[d % self.k]
                sub = model._sub(f"{comp}_{side}")
                per_slice.append(
                    _pad_component(comp, sub, int(self.widths[d]), self.n_items_max)
                )
            for name, value in stack_params(per_slice).items():
                self.params[f"{comp}.{name}"] = value
        # Repack every parameter as a view into one contiguous slice-major
        # ``(2k, S)`` buffer: the stacked optimizer then updates the whole
        # model in a dozen vector ops, and per-domain gradient norms become
        # one contraction over the matching gradient buffer.
        per_slice = sum(value.size for value in self.params.values()) // self.n_stack
        self.flat_params = np.empty((self.n_stack, per_slice), dtype=self.dtype)
        self.flat_slices: dict[str, tuple[int, int, tuple[int, ...]]] = {}
        offset = 0
        for name in sorted(self.params):
            value = self.params[name]
            size = value.size // self.n_stack
            view = self.flat_params[:, offset : offset + size].reshape(value.shape)
            view[:] = value
            self.params[name] = view
            self.flat_slices[name] = (offset, size, value.shape)
            offset += size
        # Sub-dict views are stable: optimizers update arrays in place, so
        # both the per-component dicts and the per-layer split are built
        # once — the hot loop never rebuilds a parameter dict.
        self._subs = {comp: self._strip(comp) for comp in _COMPONENTS}
        self._layer_params = {
            comp: [
                {
                    name[len(f"{i}."):]: value
                    for name, value in sub.items()
                    if name.startswith(f"{i}.")
                }
                for i in range(len(module.layers))
            ]
            for comp, sub, module in (
                ("enc", self._subs["enc"], self.branch.encoder),
                ("enc_x", self._subs["enc_x"], self.branch.content_encoder),
                ("dec", self._subs["dec"], self.branch.decoder),
                ("crit", self._subs["crit"], self.branch.critic),
            )
        }
        cols = np.arange(self.n_items_max)
        self.out_mask = (
            cols[None, :] < self.widths[:, None]
        ).astype(self.dtype)[:, None, :]  # (2k, 1, n_items_max)
        self._widths_f = self.widths.astype(self.dtype)

    def _forward(self, comp: str, module, x: np.ndarray):
        """Sequential forward over prebuilt per-layer parameter dicts."""
        caches = []
        out = x
        for layer, layer_params in zip(module.layers, self._layer_params[comp]):
            out, cache = layer.forward(layer_params, out)
            caches.append(cache)
        return out, caches

    def _backward(self, comp: str, module, caches, dy: np.ndarray, grads: Grads):
        """Sequential backward mirror of :meth:`_forward`; fills ``grads``."""
        layer_params = self._layer_params[comp]
        grad_out = dy
        for i in reversed(range(len(module.layers))):
            grad_out, layer_grads = module.layers[i].backward(
                layer_params[i], caches[i], grad_out
            )
            for name, value in layer_grads.items():
                grads[f"{comp}.{i}.{name}"] = value
        return grad_out

    def _strip(self, prefix: str) -> Params:
        dot = prefix + "."
        return {
            name[len(dot):]: value
            for name, value in self.params.items()
            if name.startswith(dot)
        }

    def _swap(self, x: np.ndarray) -> np.ndarray:
        """Exchange the source and target halves of the stack axis."""
        return np.concatenate([x[self.k:], x[:self.k]], axis=0)

    # ------------------------------------------------------------------
    def loss_and_grads(
        self,
        ratings: np.ndarray,
        content: np.ndarray,
        eps: np.ndarray,
        row_mask: np.ndarray | None = None,
        row_counts: np.ndarray | None = None,
    ) -> tuple[dict[str, np.ndarray], Grads]:
        """Per-domain losses of Eq. (8) and stacked gradients for one step.

        Parameters
        ----------
        ratings:
            ``(2k, batch, n_items_max)`` zero-padded ratings (source
            branches first).
        content:
            ``(2k, batch, content_dim)`` user content per branch.
        eps:
            ``(2k, batch, latent)`` reparameterization noise, zero in
            padded rows.
        row_mask:
            ``(2k, batch)`` with 1 for real rows, or ``None`` when every
            slice fills the batch.
        row_counts:
            ``(2k,)`` real row counts (defaults to the full batch).

        Returns ``(losses, grads)`` where every loss term is a ``(k,)``
        array of per-domain values summed over the domain's two branches,
        matching the scalar :meth:`DualCVAE.loss_and_grads` terms.
        """
        cfg = self.config
        k, latent = self.k, self.latent_dim
        batch = ratings.shape[1]
        if row_counts is None:
            row_counts = np.full(self.n_stack, batch, dtype=np.int64)
        counts_f = np.asarray(row_counts).astype(self.dtype)
        # max(count, 1): slices sitting a step out (count 0) produce fully
        # masked zeros, not 0/0.
        elem_counts = np.maximum(counts_f * self._widths_f, 1.0)

        # ---- forward: encoders, reparameterization, content encoders ----
        enc_in = np.concatenate([ratings, content], axis=2)
        enc_out, enc_cache = self._forward("enc", self.branch.encoder, enc_in)
        mu, log_var_raw = enc_out[..., :latent], enc_out[..., latent:]
        log_var = np.clip(log_var_raw, -8.0, 8.0)
        clip_mask = np.abs(log_var_raw) < 8.0
        sigma = np.exp(0.5 * log_var)
        z = mu + sigma * eps
        zx, zx_cache = self._forward("enc_x", self.branch.content_encoder, content)

        # ---- decoders: self and cross reconstruction in one pass --------
        # Each branch decodes its own latent code (rows [:batch]) and its
        # partner branch's (rows [batch:]); both compare against the
        # branch's own ratings, exactly the four paths of the scalar model.
        dec_in = np.concatenate(
            [
                np.concatenate([z, content], axis=2),
                np.concatenate([self._swap(z), content], axis=2),
            ],
            axis=1,
        )
        dec_out, dec_cache = self._forward("dec", self.branch.decoder, dec_in)
        dec_out = dec_out * self.out_mask
        out_self = dec_out[:, :batch]

        # ---- BCE over self and cross reconstructions in one pass --------
        # Both halves compare against the branch's own ratings with the
        # same per-slice normalization, so one clipped-log pass covers the
        # four reconstruction losses of the scalar model.
        target = np.concatenate([ratings, ratings], axis=1)
        pred = np.clip(dec_out, _BCE_EPS, 1.0 - _BCE_EPS)
        per_elem = -(target * np.log(pred) + (1.0 - target) * np.log(1.0 - pred))
        d_bce = (pred - target) / (pred * (1.0 - pred))
        if row_mask is not None:
            elem_mask = self.out_mask * row_mask[:, :, None]
            mask2 = np.concatenate([elem_mask, elem_mask], axis=1)
        else:
            mask2 = self.out_mask  # broadcasts over the doubled batch
        per_elem = per_elem * mask2
        d_bce = d_bce * mask2
        d_bce = d_bce / elem_counts[:, None, None]
        losses_self = (
            per_elem[:, :batch].reshape(self.n_stack, -1).sum(axis=1) / elem_counts
        )
        losses_cross = (
            per_elem[:, batch:].reshape(self.n_stack, -1).sum(axis=1) / elem_counts
        )
        d_self, d_cross = d_bce[:, :batch], d_bce[:, batch:]
        kl_d, d_mu, d_log_var, d_zx = gaussian_kl_to_code_stacked(
            mu, log_var, zx, row_mask=row_mask, counts=counts_f
        )

        # ---- latent/content alignment MSE (Eq. 4) -----------------------
        diff = z - zx
        if row_mask is not None:
            diff = diff * row_mask[:, :, None]
        mse_counts = counts_f * np.asarray(latent, dtype=self.dtype)
        mse_counts = np.maximum(mse_counts, 1.0)
        mse_d = (diff * diff).reshape(self.n_stack, -1).sum(axis=1) / mse_counts
        d_z = 2.0 * diff / mse_counts[:, None, None]
        d_zx = d_zx + (-2.0 * diff / mse_counts[:, None, None])

        mask_k = None if row_mask is None else row_mask[:k]

        # ---- MDI and ME InfoNCE terms (Eqs. 6-7) ------------------------
        # Latent codes and critic projections share the latent width, so
        # both contrastive terms ride one stacked call when both are on.
        grads: Grads = {}
        d_proj = None
        if cfg.beta2 > 0:
            proj, crit_cache = self._forward("crit", self.branch.critic, out_self)
        if cfg.beta1 > 0 and cfg.beta2 > 0:
            both, d_a, d_b = info_nce_stacked(
                np.concatenate([z[:k], proj[:k]], axis=0),
                np.concatenate([z[k:], proj[k:]], axis=0),
                row_mask=None if mask_k is None else np.tile(mask_k, (2, 1)),
                temperature=cfg.infonce_temperature,
            )
            mdi, me = both[:k], both[k:]
            d_z = d_z + cfg.beta1 * np.concatenate([d_a[:k], d_b[:k]], axis=0)
            d_proj = cfg.beta2 * np.concatenate([d_a[k:], d_b[k:]], axis=0)
        elif cfg.beta1 > 0:
            mdi, d_zs, d_zt = info_nce_stacked(
                z[:k], z[k:], row_mask=mask_k, temperature=cfg.infonce_temperature
            )
            d_z = d_z + cfg.beta1 * np.concatenate([d_zs, d_zt], axis=0)
            me = np.zeros(k, dtype=self.dtype)
        elif cfg.beta2 > 0:
            mdi = np.zeros(k, dtype=self.dtype)
            me, d_ps, d_pt = info_nce_stacked(
                proj[:k], proj[k:], row_mask=mask_k,
                temperature=cfg.infonce_temperature,
            )
            d_proj = cfg.beta2 * np.concatenate([d_ps, d_pt], axis=0)
        else:
            mdi = np.zeros(k, dtype=self.dtype)
            me = np.zeros(k, dtype=self.dtype)
        if cfg.beta2 > 0:
            d_out_crit = self._backward(
                "crit", self.branch.critic, crit_cache, d_proj, grads
            )
            d_self = d_self + d_out_crit

        fold = lambda arr: arr[:k] + arr[k:]  # noqa: E731 — sum both branches
        losses = {
            "elbo_recon": fold(losses_self),
            "kl": fold(kl_d),
            "mse": fold(mse_d),
            "cross_recon": fold(losses_cross),
            "mdi": mdi,
            "me": me,
        }
        losses["total"] = (
            losses["elbo_recon"]
            + losses["kl"]
            + losses["mse"]
            + losses["cross_recon"]
            + cfg.beta1 * losses["mdi"]
            + cfg.beta2 * losses["me"]
        )

        # ---- backward: decoders -> latent codes -------------------------
        d_out = np.concatenate([d_self, d_cross], axis=1)
        d_dec_in = self._backward("dec", self.branch.decoder, dec_cache, d_out, grads)
        d_z = d_z + d_dec_in[:, :batch, :latent] + self._swap(
            d_dec_in[:, batch:, :latent]
        )

        # ---- backward: reparameterization -> encoders -------------------
        d_mu = d_mu + d_z
        d_log_var = (d_log_var + d_z * 0.5 * sigma * eps) * clip_mask
        d_enc_out = np.concatenate([d_mu, d_log_var], axis=2)
        self._backward("enc", self.branch.encoder, enc_cache, d_enc_out, grads)
        self._backward("enc_x", self.branch.content_encoder, zx_cache, d_zx, grads)

        for name, value in self.params.items():
            if name not in grads:
                grads[name] = np.zeros_like(value)
        return losses, grads

    def loss_only(
        self,
        ratings: np.ndarray,
        content: np.ndarray,
        eps: np.ndarray,
        row_mask: np.ndarray | None = None,
        row_counts: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Per-domain loss terms without any backward pass (evaluation)."""
        cfg = self.config
        k, latent = self.k, self.latent_dim
        batch = ratings.shape[1]
        if row_counts is None:
            row_counts = np.full(self.n_stack, batch, dtype=np.int64)
        counts_f = np.asarray(row_counts).astype(self.dtype)
        elem_counts = np.maximum(counts_f * self._widths_f, 1.0)

        enc_in = np.concatenate([ratings, content], axis=2)
        enc_out, _ = self._forward("enc", self.branch.encoder, enc_in)
        mu, log_var_raw = enc_out[..., :latent], enc_out[..., latent:]
        log_var = np.clip(log_var_raw, -8.0, 8.0)
        z = mu + np.exp(0.5 * log_var) * eps
        zx, _ = self._forward("enc_x", self.branch.content_encoder, content)

        dec_in = np.concatenate(
            [
                np.concatenate([z, content], axis=2),
                np.concatenate([self._swap(z), content], axis=2),
            ],
            axis=1,
        )
        dec_out, _ = self._forward("dec", self.branch.decoder, dec_in)
        dec_out = dec_out * self.out_mask
        out_self = dec_out[:, :batch]

        target = np.concatenate([ratings, ratings], axis=1)
        pred = np.clip(dec_out, _BCE_EPS, 1.0 - _BCE_EPS)
        per_elem = -(target * np.log(pred) + (1.0 - target) * np.log(1.0 - pred))
        if row_mask is not None:
            elem_mask = self.out_mask * row_mask[:, :, None]
            per_elem = per_elem * np.concatenate([elem_mask, elem_mask], axis=1)
        else:
            per_elem = per_elem * self.out_mask
        losses_self = (
            per_elem[:, :batch].reshape(self.n_stack, -1).sum(axis=1) / elem_counts
        )
        losses_cross = (
            per_elem[:, batch:].reshape(self.n_stack, -1).sum(axis=1) / elem_counts
        )
        kl_d, _, _, _ = gaussian_kl_to_code_stacked(
            mu, log_var, zx, row_mask=row_mask, counts=counts_f
        )
        diff = z - zx
        if row_mask is not None:
            diff = diff * row_mask[:, :, None]
        mse_counts = np.maximum(counts_f * np.asarray(latent, dtype=self.dtype), 1.0)
        mse_d = (diff * diff).reshape(self.n_stack, -1).sum(axis=1) / mse_counts

        mask_k = None if row_mask is None else row_mask[:k]
        if cfg.beta2 > 0:
            proj, _ = self._forward("crit", self.branch.critic, out_self)
        if cfg.beta1 > 0 and cfg.beta2 > 0:
            both, _, _ = info_nce_stacked(
                np.concatenate([z[:k], proj[:k]], axis=0),
                np.concatenate([z[k:], proj[k:]], axis=0),
                row_mask=None if mask_k is None else np.tile(mask_k, (2, 1)),
                temperature=cfg.infonce_temperature,
            )
            mdi, me = both[:k], both[k:]
        else:
            if cfg.beta1 > 0:
                mdi, _, _ = info_nce_stacked(
                    z[:k], z[k:], row_mask=mask_k,
                    temperature=cfg.infonce_temperature,
                )
            else:
                mdi = np.zeros(k, dtype=self.dtype)
            if cfg.beta2 > 0:
                me, _, _ = info_nce_stacked(
                    proj[:k], proj[k:], row_mask=mask_k,
                    temperature=cfg.infonce_temperature,
                )
            else:
                me = np.zeros(k, dtype=self.dtype)

        fold = lambda arr: arr[:k] + arr[k:]  # noqa: E731
        losses = {
            "elbo_recon": fold(losses_self),
            "kl": fold(kl_d),
            "mse": fold(mse_d),
            "cross_recon": fold(losses_cross),
            "mdi": mdi,
            "me": me,
        }
        losses["total"] = (
            losses["elbo_recon"]
            + losses["kl"]
            + losses["mse"]
            + losses["cross_recon"]
            + cfg.beta1 * losses["mdi"]
            + cfg.beta2 * losses["me"]
        )
        return losses

    # ------------------------------------------------------------------
    def write_back(self) -> None:
        """Copy the trained stacked parameters back into the scalar models."""
        for d in range(self.n_stack):
            side = "s" if d < self.k else "t"
            model = self.models[d % self.k]
            n_items = int(self.widths[d])
            for comp in _COMPONENTS:
                for name in self._subs[comp]:
                    value = self.params[f"{comp}.{name}"][d]
                    model.params[f"{comp}_{side}.{name}"] = np.ascontiguousarray(
                        _unpad_component(comp, name, value, n_items, self.n_items_max)
                    )
