"""Multi-source domain adaptation with Dual Conditional VAEs (paper Sec. IV-A/B).

One :class:`~repro.cvae.model.DualCVAE` is trained per (source, target)
domain pair on their shared users.  Its loss (Eq. 8) combines

- ``ELBO``: BCE reconstruction of each domain's ratings from its own latent
  code conditioned on content, plus the content-conditioned KL of Eq. (3),
- ``MSE``: alignment of the sampled latent code with the content encoder's
  output (Eq. 4) so ratings can later be generated from content alone,
- ``Rec``: cross-domain reconstruction (decode each domain's ratings from
  the *other* domain's latent code, Eq. 5),
- ``MDI`` (weight β1): InfoNCE between the two domains' latent codes, and
- ``ME`` (weight β2): InfoNCE between the two decoders' outputs (through
  linear critic projections, since the domains have different item counts).

After training, :mod:`repro.cvae.augment` runs the content-encoder →
target-decoder path of each of the k Dual-CVAEs on every target-domain user
to produce k diverse rating vectors (Sec. IV-B).
"""

from repro.cvae.model import CVAEConfig, DualCVAE, FusedDualCVAE
from repro.cvae.trainer import (
    DualCVAETrainer,
    MultiDomainCVAETrainer,
    TrainerConfig,
)
from repro.cvae.augment import AugmentedRatings, DiversePreferenceAugmenter, rating_diversity
from repro.cvae.cache import AugmentationCache
from repro.cvae.diagnostics import AugmentationReport, diagnose_augmentation, generation_auc

__all__ = [
    "CVAEConfig",
    "DualCVAE",
    "FusedDualCVAE",
    "DualCVAETrainer",
    "MultiDomainCVAETrainer",
    "TrainerConfig",
    "AugmentedRatings",
    "DiversePreferenceAugmenter",
    "rating_diversity",
    "AugmentationCache",
    "AugmentationReport",
    "diagnose_augmentation",
    "generation_auc",
]
