"""Diagnostics for the augmentation pipeline.

These are the checks used while developing and validating the Dual-CVAE:
how informative the content → rating generation path is, how diverse the k
generations are, and how much mutual information the latent codes carry.
They are exposed as a public API because a downstream user tuning the CVAE
on their own domains needs exactly the same instruments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cvae.augment import AugmentedRatings, rating_diversity
from repro.cvae.trainer import DualCVAETrainer
from repro.nn.losses import info_nce_mi_estimate


def per_user_ranking_auc(scores: np.ndarray, truth: np.ndarray) -> float:
    """AUC of one user's generated scores against their true interactions.

    Returns NaN when the user has no positives or no negatives (undefined).
    """
    positives = scores[truth > 0]
    negatives = scores[truth == 0]
    if positives.size == 0 or negatives.size == 0:
        return float("nan")
    wins = (positives[:, None] > negatives[None, :]).mean()
    ties = (positives[:, None] == negatives[None, :]).mean()
    return float(wins + 0.5 * ties)


def generation_auc(
    matrix: np.ndarray, reference_ratings: np.ndarray, user_rows: np.ndarray
) -> float:
    """Mean per-user AUC of a generated rating matrix against references.

    ``reference_ratings`` would typically be the training-visible matrix:
    a value well above 0.5 means the content → decoder path actually learned
    user preferences, which is the precondition for useful augmentation.
    """
    aucs = [
        auc
        for auc in (
            per_user_ranking_auc(matrix[u], reference_ratings[u]) for u in user_rows
        )
        if not np.isnan(auc)
    ]
    return float(np.mean(aucs)) if aucs else float("nan")


@dataclass(frozen=True)
class AugmentationReport:
    """Summary of one augmentation run's health."""

    target_name: str
    source_names: list[str]
    generation_aucs: list[float]
    diversity: float
    value_ranges: list[tuple[float, float]]
    latent_mi: list[float]

    def format_table(self) -> str:
        lines = [f"Augmentation diagnostics for target {self.target_name!r}:"]
        lines.append(
            f"{'source':<14} {'gen AUC':>8} {'min':>7} {'max':>7} {'I(z_s,z_t)':>11}"
        )
        for i, name in enumerate(self.source_names):
            lo, hi = self.value_ranges[i]
            lines.append(
                f"{name:<14} {self.generation_aucs[i]:>8.3f} {lo:>7.3f} "
                f"{hi:>7.3f} {self.latent_mi[i]:>11.3f}"
            )
        lines.append(f"cross-source diversity (mean pairwise L2): {self.diversity:.4f}")
        return "\n".join(lines)

    @property
    def healthy(self) -> bool:
        """Heuristic health check: informative generations, nonzero diversity.

        "Informative" means the mean generation AUC clears 0.55 — distinctly
        better than chance.  An unhealthy report usually means the Dual-CVAEs
        are undertrained (raise ``TrainerConfig.epochs``).
        """
        return (
            bool(np.mean(self.generation_aucs) > 0.55) and self.diversity > 0.0
        )


def diagnose_augmentation(
    trainers: list[DualCVAETrainer],
    augmented: AugmentedRatings,
    reference_ratings: np.ndarray,
    user_rows: np.ndarray,
) -> AugmentationReport:
    """Build an :class:`AugmentationReport` from a fitted augmenter's parts.

    ``trainers`` and ``augmented`` come from a
    :class:`~repro.cvae.augment.DiversePreferenceAugmenter`;
    ``reference_ratings`` is the training-visible rating matrix and
    ``user_rows`` the users to score (typically the existing users).
    """
    if len(trainers) != augmented.k:
        raise ValueError("one trainer per generated matrix expected")
    aucs = [
        generation_auc(matrix, reference_ratings, user_rows)
        for matrix in augmented.matrices
    ]
    ranges = [(float(m.min()), float(m.max())) for m in augmented.matrices]
    latent_mi = []
    for trainer in trainers:
        pair = trainer.pair
        mu_s, _, _ = trainer.model.encode("s", pair.ratings_source, pair.content_source)
        mu_t, _, _ = trainer.model.encode("t", pair.ratings_target, pair.content_target)
        latent_mi.append(info_nce_mi_estimate(mu_s, mu_t))
    return AugmentationReport(
        target_name=augmented.target_name,
        source_names=list(augmented.source_names),
        generation_aucs=aucs,
        diversity=rating_diversity(augmented),
        value_ranges=ranges,
        latent_mi=latent_mi,
    )
