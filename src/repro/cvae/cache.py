"""Content-addressed on-disk cache of augmentation results.

Training the k Dual-CVAEs is the dominant cost of a MetaDPA fit, yet the
:class:`~repro.cvae.augment.AugmentedRatings` they produce depend only on
the dataset, the target domain, the augmenter seed and the CVAE
hyper-parameters — not on any meta-learning knob.  Grid runs that sweep
meta-level settings (or replay a cell) therefore used to retrain identical
CVAEs once per cell; this cache stores each distinct augmentation once and
hands it back on every later request.

Entries follow the :mod:`repro.runner.store` conventions: one atomically
written ``<key>.npz`` per augmentation, content-addressed by the canonical
JSON of everything the matrices depend on, with corruption-rejecting loads
(anything unreadable or schema-mismatched is treated as a miss and simply
recomputed).
"""

from __future__ import annotations

import io
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.cvae.augment import AugmentedRatings
from repro.cvae.trainer import TrainerConfig
from repro.utils.persist import atomic_write_bytes, content_key

_FORMAT_VERSION = 1


class AugmentationCache:
    """Read/write access to one augmentation cache directory."""

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- keys ----------------------------------------------------------
    @staticmethod
    def key(
        target_name: str,
        seed: int,
        cvae_overrides: Mapping[str, Any] | None,
        trainer_config: TrainerConfig,
        fused: bool,
        token: str = "",
    ) -> str:
        """Content hash of everything an augmentation's matrices depend on.

        ``token`` names the dataset (e.g. the canonical dataset spec), so a
        cache directory shared across runs never mixes benchmarks.  The
        trainer config and the ``fused`` flag are part of the key: epochs,
        learning rate and the (float32-level) fused/sequential distinction
        all change the trained decoders, hence the generated matrices.
        ``eval_every`` alone is excluded — evaluation is a pure monitoring
        pass over an independent rng, so its frequency cannot change the
        generated matrices and must not invalidate warm entries.
        """
        trainer = asdict(trainer_config)
        trainer.pop("eval_every", None)
        payload = {
            "format": _FORMAT_VERSION,
            "target": target_name,
            "seed": int(seed),
            "cvae": dict(sorted((cvae_overrides or {}).items())),
            "trainer": trainer,
            "fused": bool(fused),
            "token": token,
        }
        return content_key(payload)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    # -- read/write ----------------------------------------------------
    def save(self, key: str, augmented: AugmentedRatings) -> None:
        """Persist one augmentation atomically under ``key``."""
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            format=np.array([_FORMAT_VERSION], dtype=np.int64),
            target_name=np.array(augmented.target_name),
            source_names=np.array(augmented.source_names),
            matrices=np.stack(augmented.matrices),
        )
        atomic_write_bytes(self._path(key), buf.getvalue())

    def load(self, key: str) -> AugmentedRatings | None:
        """Load a cached augmentation, or ``None`` for anything not valid."""
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as npz:
                if int(npz["format"][0]) != _FORMAT_VERSION:
                    return None
                target_name = str(npz["target_name"][()])
                source_names = [str(name) for name in npz["source_names"]]
                matrices = np.asarray(npz["matrices"])
            if matrices.ndim != 3 or matrices.shape[0] != len(source_names):
                return None
            if not source_names or not np.isfinite(matrices).all():
                return None
            return AugmentedRatings(
                target_name=target_name,
                source_names=source_names,
                matrices=[matrices[j].copy() for j in range(matrices.shape[0])],
            )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None

    def has(self, key: str) -> bool:
        return self.load(key) is not None

    def keys(self) -> list[str]:
        """Keys of every entry file currently on disk (validity unchecked)."""
        return sorted(path.stem for path in self.cache_dir.glob("*.npz"))

    def __len__(self) -> int:
        return len(self.keys())
