"""Diverse preference augmentation (paper Sec. IV-B).

After the k Dual-CVAEs are trained, each one's content-encoder →
target-decoder path is run on the content of *every* user in the target
domain, producing k continuous rating vectors per user.  Those vectors,
together with the original binary ratings, become the label sets of the
augmented meta-learning tasks (Eq. 10).

Training the k Dual-CVAEs is fused by default: their parameters are
stacked along a leading domain axis and all k train in one numpy pass per
step (:class:`~repro.cvae.trainer.MultiDomainCVAETrainer`).  Pass
``fuse_domains=False`` for the sequential reference path — the equivalence
tests pin that both produce numerically matching matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cvae.model import CVAEConfig
from repro.cvae.trainer import DualCVAETrainer, MultiDomainCVAETrainer, TrainerConfig
from repro.data.domain import Domain, MultiDomainDataset
from repro.utils.rng import spawn_rngs

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (cache stores us)
    from repro.cvae.cache import AugmentationCache


@dataclass
class AugmentedRatings:
    """k generated rating matrices for one target domain.

    ``matrices[j]`` has shape ``(n_target_users, n_target_items)`` with
    entries in [0, 1]; ``source_names[j]`` records which source domain's
    Dual-CVAE generated it.
    """

    target_name: str
    source_names: list[str]
    matrices: list[np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.source_names) != len(self.matrices):
            raise ValueError("one source name per generated matrix")
        shapes = {m.shape for m in self.matrices}
        if len(shapes) > 1:
            raise ValueError(f"inconsistent matrix shapes: {shapes}")

    @property
    def k(self) -> int:
        return len(self.matrices)

    def for_user(self, user_row: int) -> list[np.ndarray]:
        """The k generated rating vectors of one user."""
        return [m[user_row] for m in self.matrices]


class DiversePreferenceAugmenter:
    """Trains k Dual-CVAEs (one per source domain) and generates ratings.

    Usage::

        augmenter = DiversePreferenceAugmenter(dataset, "Books", seed=0)
        augmenter.fit()
        augmented = augmenter.generate()

    ``fuse_domains=True`` (the default) trains all k CVAEs jointly on a
    stacked domain axis; ``False`` keeps the sequential per-domain loop as
    the reference path.  An optional :class:`~repro.cvae.cache
    .AugmentationCache` short-circuits :meth:`fit_generate` entirely when
    an identical augmentation (same target, seed, CVAE hyper-parameters and
    dataset ``cache_token``) was computed before.
    """

    def __init__(
        self,
        dataset: MultiDomainDataset,
        target_name: str,
        cvae_config_overrides: dict | None = None,
        trainer_config: TrainerConfig | None = None,
        seed: int = 0,
        fuse_domains: bool = True,
        cache: "AugmentationCache | None" = None,
        cache_token: str = "",
    ):
        if target_name not in dataset.targets:
            raise KeyError(f"unknown target domain {target_name!r}")
        self.dataset = dataset
        self.target_name = target_name
        self._overrides = dict(cvae_config_overrides or {})
        self._trainer_config = trainer_config or TrainerConfig()
        self._seed = seed
        self.fuse_domains = fuse_domains
        self.cache = cache
        self._cache_token = cache_token
        #: ``None`` until a cache-aware :meth:`fit_generate` ran; then True
        #: for a cache hit (no training happened) and False for a miss.
        self.cache_hit: bool | None = None
        #: number of Dual-CVAE trainings this augmenter actually ran.
        self.n_trained = 0
        self.trainers: list[DualCVAETrainer] = []

    def _build_trainers(self) -> list[DualCVAETrainer]:
        pairs = self.dataset.pairs_for_target(self.target_name)
        rngs = spawn_rngs(self._seed, len(pairs))
        trainers = []
        for pair, rng in zip(pairs, rngs):
            config = CVAEConfig(
                n_items_source=pair.ratings_source.shape[1],
                n_items_target=pair.ratings_target.shape[1],
                content_dim=pair.content_source.shape[1],
                **self._overrides,
            )
            trainers.append(
                DualCVAETrainer(
                    pair,
                    cvae_config=config,
                    trainer_config=self._trainer_config,
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
            )
        return trainers

    def _can_fuse(self, trainers: list[DualCVAETrainer]) -> bool:
        if not self.fuse_domains or len(trainers) < 2:
            return False
        if trainers[0].model.config.out_activation == "sigmoid":
            return True
        # Softmax normalizes over the item axis and cannot be zero-padded.
        widths = {t.model.config.n_items_source for t in trainers}
        widths |= {t.model.config.n_items_target for t in trainers}
        return len(widths) == 1

    def fit(self) -> "DiversePreferenceAugmenter":
        """Train one Dual-CVAE per (source → target) pair.

        The k models are statistically independent either way; fusing only
        changes how the arithmetic is batched, not what is computed.
        """
        trainers = self._build_trainers()
        if self._can_fuse(trainers):
            MultiDomainCVAETrainer(trainers).train()
        else:
            for trainer in trainers:
                trainer.train()
        self.trainers = trainers
        self.n_trained += len(trainers)
        return self

    def generate(self) -> AugmentedRatings:
        """Generate the k diverse rating matrices for all target users."""
        if not self.trainers:
            raise RuntimeError("call fit() before generate()")
        target: Domain = self.dataset.targets[self.target_name]
        matrices = [
            trainer.model.generate_from_content(target.user_content)
            for trainer in self.trainers
        ]
        return AugmentedRatings(
            target_name=self.target_name,
            source_names=[t.pair.source_name for t in self.trainers],
            matrices=matrices,
        )

    def cache_key(self) -> str | None:
        """The content key this augmentation is stored under, if caching."""
        if self.cache is None:
            return None
        return self.cache.key(
            self.target_name,
            self._seed,
            self._overrides,
            self._trainer_config,
            fused=self.fuse_domains,
            token=self._cache_token,
        )

    def _cached_entry_matches(self, cached: AugmentedRatings) -> bool:
        """Guard against key collisions / shared caches across datasets.

        A hit must describe *this* dataset: one matrix of exactly the
        target's shape per source domain.  Anything else (a cache shared
        between benchmarks without distinct ``cache_token`` values) is
        treated as a miss and recomputed rather than trained on.
        """
        target = self.dataset.targets[self.target_name]
        expected_sources = [
            pair.source_name for pair in self.dataset.pairs_for_target(self.target_name)
        ]
        return (
            cached.target_name == self.target_name
            and cached.source_names == expected_sources
            and all(
                matrix.shape == (target.n_users, target.n_items)
                for matrix in cached.matrices
            )
        )

    def fit_generate(self) -> AugmentedRatings:
        """:meth:`fit` then :meth:`generate`, via the cache when attached."""
        key = self.cache_key()
        if key is not None:
            cached = self.cache.load(key)
            if cached is not None and self._cached_entry_matches(cached):
                self.cache_hit = True
                return cached
            self.cache_hit = False
        augmented = self.fit().generate()
        if key is not None:
            self.cache.save(key, augmented)
        return augmented


def rating_diversity(augmented: AugmentedRatings) -> float:
    """Mean pairwise L2 distance between the k generated rating matrices.

    This is the quantity the ME constraint is supposed to increase; the
    ablation benchmarks report it to show β2's effect directly.  One
    broadcasted pairwise pass replaces the former O(k²) Python pair loop.
    Returns 0.0 when k < 2.
    """
    mats = augmented.matrices
    k = len(mats)
    if k < 2:
        return 0.0
    stacked = np.stack(mats).astype(np.float64)  # (k, users, items)
    # Index only the k(k-1)/2 distinct pairs — a full (k, k, ...) broadcast
    # would square the peak memory for the redundant triangle + diagonal.
    left, right = np.triu_indices(k, 1)
    diff = stacked[left] - stacked[right]  # (pairs, users, items)
    per_user = np.sqrt((diff * diff).sum(axis=2))  # (pairs, users)
    return float(per_user.mean(axis=1).mean())
