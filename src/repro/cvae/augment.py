"""Diverse preference augmentation (paper Sec. IV-B).

After the k Dual-CVAEs are trained, each one's content-encoder →
target-decoder path is run on the content of *every* user in the target
domain, producing k continuous rating vectors per user.  Those vectors,
together with the original binary ratings, become the label sets of the
augmented meta-learning tasks (Eq. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cvae.model import CVAEConfig
from repro.cvae.trainer import DualCVAETrainer, TrainerConfig
from repro.data.domain import Domain, MultiDomainDataset
from repro.utils.rng import spawn_rngs


@dataclass
class AugmentedRatings:
    """k generated rating matrices for one target domain.

    ``matrices[j]`` has shape ``(n_target_users, n_target_items)`` with
    entries in [0, 1]; ``source_names[j]`` records which source domain's
    Dual-CVAE generated it.
    """

    target_name: str
    source_names: list[str]
    matrices: list[np.ndarray] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.source_names) != len(self.matrices):
            raise ValueError("one source name per generated matrix")
        shapes = {m.shape for m in self.matrices}
        if len(shapes) > 1:
            raise ValueError(f"inconsistent matrix shapes: {shapes}")

    @property
    def k(self) -> int:
        return len(self.matrices)

    def for_user(self, user_row: int) -> list[np.ndarray]:
        """The k generated rating vectors of one user."""
        return [m[user_row] for m in self.matrices]


class DiversePreferenceAugmenter:
    """Trains k Dual-CVAEs (one per source domain) and generates ratings.

    Usage::

        augmenter = DiversePreferenceAugmenter(dataset, "Books", seed=0)
        augmenter.fit()
        augmented = augmenter.generate()
    """

    def __init__(
        self,
        dataset: MultiDomainDataset,
        target_name: str,
        cvae_config_overrides: dict | None = None,
        trainer_config: TrainerConfig | None = None,
        seed: int = 0,
    ):
        if target_name not in dataset.targets:
            raise KeyError(f"unknown target domain {target_name!r}")
        self.dataset = dataset
        self.target_name = target_name
        self._overrides = dict(cvae_config_overrides or {})
        self._trainer_config = trainer_config or TrainerConfig()
        self._seed = seed
        self.trainers: list[DualCVAETrainer] = []

    def fit(self) -> "DiversePreferenceAugmenter":
        """Train one Dual-CVAE per (source → target) pair, independently."""
        pairs = self.dataset.pairs_for_target(self.target_name)
        rngs = spawn_rngs(self._seed, len(pairs))
        self.trainers = []
        for pair, rng in zip(pairs, rngs):
            config = CVAEConfig(
                n_items_source=pair.ratings_source.shape[1],
                n_items_target=pair.ratings_target.shape[1],
                content_dim=pair.content_source.shape[1],
                **self._overrides,
            )
            trainer = DualCVAETrainer(
                pair,
                cvae_config=config,
                trainer_config=self._trainer_config,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            trainer.train()
            self.trainers.append(trainer)
        return self

    def generate(self) -> AugmentedRatings:
        """Generate the k diverse rating matrices for all target users."""
        if not self.trainers:
            raise RuntimeError("call fit() before generate()")
        target: Domain = self.dataset.targets[self.target_name]
        matrices = [
            trainer.model.generate_from_content(target.user_content)
            for trainer in self.trainers
        ]
        return AugmentedRatings(
            target_name=self.target_name,
            source_names=[t.pair.source_name for t in self.trainers],
            matrices=matrices,
        )

    def fit_generate(self) -> AugmentedRatings:
        """Convenience: :meth:`fit` then :meth:`generate`."""
        return self.fit().generate()


def rating_diversity(augmented: AugmentedRatings) -> float:
    """Mean pairwise L2 distance between the k generated rating matrices.

    This is the quantity the ME constraint is supposed to increase; the
    ablation benchmarks report it to show β2's effect directly.
    Returns 0.0 when k < 2.
    """
    mats = augmented.matrices
    if len(mats) < 2:
        return 0.0
    total = 0.0
    n_pairs = 0
    for i in range(len(mats)):
        for j in range(i + 1, len(mats)):
            diff = mats[i] - mats[j]
            total += float(np.sqrt((diff * diff).sum(axis=1)).mean())
            n_pairs += 1
    return total / n_pairs
