"""Training loop for one Dual-CVAE on a shared-user domain pair."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cvae.model import CVAEConfig, DualCVAE
from repro.data.domain import DomainPair
from repro.nn.optim import Adam, clip_grad_norm
from repro.utils.batching import iter_batches
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization knobs for Dual-CVAE training."""

    epochs: int = 200
    batch_size: int = 32
    lr: float = 3e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    eval_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 <= self.eval_fraction < 1.0:
            raise ValueError("eval_fraction must be in [0, 1)")


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during training."""

    train_loss: list[float] = field(default_factory=list)
    eval_loss: list[float] = field(default_factory=list)
    terms: dict[str, list[float]] = field(default_factory=dict)

    def record_terms(self, losses: dict[str, float]) -> None:
        for name, value in losses.items():
            self.terms.setdefault(name, []).append(value)


class DualCVAETrainer:
    """Trains one :class:`DualCVAE` on a :class:`DomainPair`.

    The paper trains the k Dual-CVAEs independently (one per source domain);
    callers simply construct k trainers.  Ratings are split 80/20 into a
    train/eval partition of shared *users* for monitoring, mirroring the
    paper's domain-adaptation phase split.
    """

    def __init__(
        self,
        pair: DomainPair,
        cvae_config: CVAEConfig | None = None,
        trainer_config: TrainerConfig | None = None,
        seed: int = 0,
    ):
        self.pair = pair
        self.trainer_config = trainer_config or TrainerConfig()
        init_rng, self._noise_rng, self._batch_rng = spawn_rngs(seed, 3)
        if cvae_config is None:
            cvae_config = CVAEConfig(
                n_items_source=pair.ratings_source.shape[1],
                n_items_target=pair.ratings_target.shape[1],
                content_dim=pair.content_source.shape[1],
            )
        self._check_dims(cvae_config)
        self.model = DualCVAE(cvae_config, rng=init_rng)
        self.history = TrainingHistory()

        n = pair.n_shared_users
        order = ensure_rng(seed).permutation(n)
        n_eval = int(round(self.trainer_config.eval_fraction * n))
        self._eval_rows = order[:n_eval]
        self._train_rows = order[n_eval:]
        if self._train_rows.size == 0:
            raise ValueError("no shared users left for training")

    def _check_dims(self, config: CVAEConfig) -> None:
        if config.n_items_source != self.pair.ratings_source.shape[1]:
            raise ValueError("cvae_config.n_items_source does not match the pair")
        if config.n_items_target != self.pair.ratings_target.shape[1]:
            raise ValueError("cvae_config.n_items_target does not match the pair")
        if config.content_dim != self.pair.content_source.shape[1]:
            raise ValueError("cvae_config.content_dim does not match the pair")

    def _batch(self, rows: np.ndarray) -> tuple[np.ndarray, ...]:
        pair = self.pair
        return (
            pair.ratings_source[rows],
            pair.ratings_target[rows],
            pair.content_source[rows],
            pair.content_target[rows],
        )

    def train(self) -> TrainingHistory:
        """Run the configured number of epochs; returns the loss history."""
        cfg = self.trainer_config
        optimizer = Adam(self.model.params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        for _ in range(cfg.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch_idx in iter_batches(
                self._train_rows.size, cfg.batch_size, rng=self._batch_rng
            ):
                rows = self._train_rows[batch_idx]
                losses, grads = self.model.loss_and_grads(
                    *self._batch(rows), rng=self._noise_rng
                )
                clip_grad_norm(grads, cfg.grad_clip)
                optimizer.step(grads)
                epoch_loss += losses["total"]
                n_batches += 1
                self.history.record_terms(losses)
            self.history.train_loss.append(epoch_loss / max(n_batches, 1))
            self.history.eval_loss.append(self.evaluate())
        return self.history

    def evaluate(self) -> float:
        """Total loss on the held-out shared users (no parameter updates)."""
        if self._eval_rows.size == 0:
            return float("nan")
        losses, _ = self.model.loss_and_grads(
            *self._batch(self._eval_rows), rng=np.random.default_rng(0)
        )
        return losses["total"]
