"""Training loops for Dual-CVAEs on shared-user domain pairs.

Two trainers share one contract:

- :class:`DualCVAETrainer` — the scalar reference: one model, one domain
  pair, a Python loop over epochs and minibatches.
- :class:`MultiDomainCVAETrainer` — the fused hot path: it takes k scalar
  trainers, stacks their models along a leading domain axis
  (:class:`~repro.cvae.model.FusedDualCVAE`) and drives all k of them
  through their *own* batch schedules in one ``(2k, batch, ...)`` numpy
  pass per step, with per-domain Adam state and per-domain gradient
  clipping on the same stacked axis.  Each scalar trainer's rngs, splits,
  histories and final model parameters end up the same (to float32
  rounding) as if it had been trained alone — the sequential path stays
  available as the bitwise reference for equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cvae.model import CVAEConfig, DualCVAE, FusedDualCVAE
from repro.data.domain import DomainPair
from repro.nn.optim import Adam, StackedAdam, clip_grad_norm
from repro.obs import metrics as obs_metrics
from repro.utils.batching import iter_batches
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization knobs for Dual-CVAE training.

    ``eval_every`` controls how often the held-out loss is computed: every
    epoch by default (full per-epoch traces), every n-th epoch otherwise —
    evaluation is a pure monitoring pass, so sparse traces trade visibility
    for speed without touching the training trajectory.
    """

    epochs: int = 200
    batch_size: int = 32
    lr: float = 3e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    eval_fraction: float = 0.2
    eval_every: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 <= self.eval_fraction < 1.0:
            raise ValueError("eval_fraction must be in [0, 1)")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during training."""

    train_loss: list[float] = field(default_factory=list)
    eval_loss: list[float] = field(default_factory=list)
    terms: dict[str, list[float]] = field(default_factory=dict)

    def record_terms(self, losses: dict[str, float]) -> None:
        for name, value in losses.items():
            self.terms.setdefault(name, []).append(value)


class DualCVAETrainer:
    """Trains one :class:`DualCVAE` on a :class:`DomainPair`.

    The paper trains the k Dual-CVAEs independently (one per source domain);
    callers construct k trainers and either loop over them or hand them to
    :class:`MultiDomainCVAETrainer` to train jointly.  Ratings are split
    80/20 into a train/eval partition of shared *users* for monitoring,
    mirroring the paper's domain-adaptation phase split.
    """

    def __init__(
        self,
        pair: DomainPair,
        cvae_config: CVAEConfig | None = None,
        trainer_config: TrainerConfig | None = None,
        seed: int = 0,
    ):
        self.pair = pair
        self.trainer_config = trainer_config or TrainerConfig()
        init_rng, self._noise_rng, self._batch_rng = spawn_rngs(seed, 3)
        if cvae_config is None:
            cvae_config = CVAEConfig(
                n_items_source=pair.ratings_source.shape[1],
                n_items_target=pair.ratings_target.shape[1],
                content_dim=pair.content_source.shape[1],
            )
        self._check_dims(cvae_config)
        self.model = DualCVAE(cvae_config, rng=init_rng)
        self.history = TrainingHistory()
        # One float32 copy up front keeps every batch slice in the model
        # dtype without a per-step astype.
        self._data = tuple(
            np.asarray(arr, dtype=self.model.dtype)
            for arr in (
                pair.ratings_source,
                pair.ratings_target,
                pair.content_source,
                pair.content_target,
            )
        )

        n = pair.n_shared_users
        order = ensure_rng(seed).permutation(n)
        n_eval = int(round(self.trainer_config.eval_fraction * n))
        self._eval_rows = order[:n_eval]
        self._train_rows = order[n_eval:]
        if self._train_rows.size == 0:
            raise ValueError("no shared users left for training")

    def _check_dims(self, config: CVAEConfig) -> None:
        if config.n_items_source != self.pair.ratings_source.shape[1]:
            raise ValueError("cvae_config.n_items_source does not match the pair")
        if config.n_items_target != self.pair.ratings_target.shape[1]:
            raise ValueError("cvae_config.n_items_target does not match the pair")
        if config.content_dim != self.pair.content_source.shape[1]:
            raise ValueError("cvae_config.content_dim does not match the pair")

    def _batch(self, rows: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(arr[rows] for arr in self._data)

    def _eval_due(self, epoch: int) -> bool:
        return (epoch + 1) % self.trainer_config.eval_every == 0

    def train(self) -> TrainingHistory:
        """Run the configured number of epochs; returns the loss history."""
        cfg = self.trainer_config
        optimizer = Adam(self.model.params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch_idx in iter_batches(
                self._train_rows.size, cfg.batch_size, rng=self._batch_rng
            ):
                rows = self._train_rows[batch_idx]
                losses, grads = self.model.loss_and_grads(
                    *self._batch(rows), rng=self._noise_rng
                )
                clip_grad_norm(grads, cfg.grad_clip)
                optimizer.step(grads)
                epoch_loss += losses["total"]
                n_batches += 1
                self.history.record_terms(losses)
            self.history.train_loss.append(epoch_loss / max(n_batches, 1))
            if self._eval_due(epoch):
                self.history.eval_loss.append(self.evaluate())
        return self.history

    def evaluate(self) -> float:
        """Total loss on the held-out shared users (loss-only forward)."""
        if self._eval_rows.size == 0:
            return float("nan")
        losses = self.model.loss_only(
            *self._batch(self._eval_rows), rng=np.random.default_rng(0)
        )
        return losses["total"]


class MultiDomainCVAETrainer:
    """Trains k scalar trainers' models jointly in one stacked pass per step.

    Every per-domain ingredient — model initialization, train/eval row
    split, minibatch shuffling, reparameterization noise, Adam moments and
    step counts, gradient clipping — comes from (or matches) the scalar
    trainers, so the fused run reproduces k independent sequential runs up
    to float32 summation order.  Domains whose epochs have different batch
    counts simply sit out the tail steps (their Adam state does not
    advance), and ragged final batches ride zero-padded rows behind masks.
    """

    def __init__(self, trainers: list[DualCVAETrainer]):
        if not trainers:
            raise ValueError("MultiDomainCVAETrainer needs at least one trainer")
        ref = trainers[0].trainer_config
        if any(t.trainer_config != ref for t in trainers):
            raise ValueError("all trainers must share one TrainerConfig")
        self.trainers = trainers
        self.trainer_config = ref
        self.fused = FusedDualCVAE([t.model for t in trainers])
        self._build_stores()

    def _build_stores(self) -> None:
        """Zero-padded per-branch data with a sentinel all-zero row.

        Row index ``n_max`` of every slice is all zeros; padded row indices
        point there, so batch assembly is a single fancy-index gather.
        """
        fused = self.fused
        k = fused.k
        dtype = fused.dtype
        n_max = max(t.pair.n_shared_users for t in self.trainers)
        self._sentinel = n_max
        self._ratings = np.zeros(
            (fused.n_stack, n_max + 1, fused.n_items_max), dtype=dtype
        )
        self._content = np.zeros(
            (fused.n_stack, n_max + 1, fused.content_dim), dtype=dtype
        )
        for d, trainer in enumerate(self.trainers):
            n = trainer.pair.n_shared_users
            rs, rt, xs, xt = trainer._data
            self._ratings[d, :n, : rs.shape[1]] = rs
            self._ratings[k + d, :n, : rt.shape[1]] = rt
            self._content[d, :n] = xs
            self._content[k + d, :n] = xt

    def _assemble(
        self, rows_per_domain: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
        """Gather one stacked batch from per-domain row index arrays."""
        fused = self.fused
        k = fused.k
        sizes = np.array([rows.size for rows in rows_per_domain], dtype=np.int64)
        batch = int(sizes.max())
        rows = np.full((k, batch), self._sentinel, dtype=np.int64)
        for d, r in enumerate(rows_per_domain):
            rows[d, : r.size] = r
        rows2 = np.concatenate([rows, rows], axis=0)
        gather = np.arange(fused.n_stack)[:, None]
        ratings = self._ratings[gather, rows2]
        content = self._content[gather, rows2]
        if np.all(sizes == batch):
            row_mask = None
        else:
            mask_k = (np.arange(batch)[None, :] < sizes[:, None]).astype(fused.dtype)
            row_mask = np.concatenate([mask_k, mask_k], axis=0)
        row_counts = np.concatenate([sizes, sizes])
        return ratings, content, row_mask, row_counts, sizes

    def _draw_eps(
        self, sizes: np.ndarray, rngs: list[np.random.Generator], batch: int
    ) -> np.ndarray:
        """Per-domain noise in the scalar draw order (side s, then side t)."""
        fused = self.fused
        k, latent = fused.k, fused.latent_dim
        eps = np.zeros((fused.n_stack, batch, latent), dtype=fused.dtype)
        for d in range(k):
            b = int(sizes[d])
            if b == 0:
                continue
            gen = rngs[d]
            eps[d, :b] = gen.normal(size=(b, latent)).astype(fused.dtype, copy=False)
            eps[k + d, :b] = gen.normal(size=(b, latent)).astype(
                fused.dtype, copy=False
            )
        return eps

    def train(self) -> list[TrainingHistory]:
        """Train all domains; returns the scalar trainers' histories."""
        cfg = self.trainer_config
        fused = self.fused
        k = fused.k
        optimizer = StackedAdam(
            fused.params,
            n_stack=fused.n_stack,
            lr=cfg.lr,
            weight_decay=cfg.weight_decay,
            flat_params=fused.flat_params,
            flat_slices=fused.flat_slices,
        )
        noise_rngs = [t._noise_rng for t in self.trainers]
        n_train = np.array([t._train_rows.size for t in self.trainers])
        n_steps = int(np.ceil(n_train.max() / cfg.batch_size))
        width = n_steps * cfg.batch_size
        gather = np.arange(fused.n_stack)[:, None]
        reg = obs_metrics()
        for epoch in range(cfg.epochs):
            epoch_loss = np.zeros(k)
            n_batches = np.zeros(k, dtype=np.int64)
            with reg.span("cvae.epoch", size=int(n_train.sum())):
                # One gather per epoch: each domain's rows in its own
                # shuffled order (consuming the batch rng exactly like
                # iter_batches), sentinel-padded to a common width so every
                # step is an aligned zero-copy slice across all domains.
                with reg.span("cvae.gather"):
                    rows = np.full((k, width), self._sentinel, dtype=np.int64)
                    for d, trainer in enumerate(self.trainers):
                        order = np.arange(n_train[d])
                        trainer._batch_rng.shuffle(order)
                        rows[d, : n_train[d]] = trainer._train_rows[order]
                    rows2 = np.concatenate([rows, rows], axis=0)
                    epoch_ratings = self._ratings[gather, rows2]
                    epoch_content = self._content[gather, rows2]

                for step in range(n_steps):
                    with reg.span("cvae.step"):
                        start = step * cfg.batch_size
                        sizes = np.clip(n_train - start, 0, cfg.batch_size)
                        batch = int(sizes.max())
                        ratings = epoch_ratings[:, start : start + batch]
                        content = epoch_content[:, start : start + batch]
                        if np.all(sizes == batch):
                            row_mask = None
                        else:
                            mask_k = (
                                np.arange(batch)[None, :] < sizes[:, None]
                            ).astype(fused.dtype)
                            row_mask = np.concatenate([mask_k, mask_k], axis=0)
                        row_counts = np.concatenate([sizes, sizes])
                        eps = self._draw_eps(sizes, noise_rngs, batch)
                        losses, grads = fused.loss_and_grads(
                            ratings,
                            content,
                            eps,
                            row_mask=row_mask,
                            row_counts=row_counts,
                        )
                        active = sizes > 0
                        optimizer.clipped_step(
                            grads,
                            cfg.grad_clip,
                            fused.group_index,
                            active=None
                            if active.all()
                            else np.concatenate([active, active]),
                        )
                    for d in np.flatnonzero(active):
                        self.trainers[d].history.record_terms(
                            {name: float(value[d]) for name, value in losses.items()}
                        )
                        epoch_loss[d] += float(losses["total"][d])
                        n_batches[d] += 1
            evals = (
                self.evaluate()
                if (epoch + 1) % cfg.eval_every == 0
                else None
            )
            for d, trainer in enumerate(self.trainers):
                trainer.history.train_loss.append(
                    epoch_loss[d] / max(int(n_batches[d]), 1)
                )
                if evals is not None:
                    trainer.history.eval_loss.append(evals[d])
        fused.write_back()
        return [t.history for t in self.trainers]

    def evaluate(self) -> list[float]:
        """Held-out loss per domain, matching each scalar ``evaluate()``."""
        rows_per_domain = [t._eval_rows for t in self.trainers]
        if all(rows.size == 0 for rows in rows_per_domain):
            return [float("nan")] * len(self.trainers)
        ratings, content, row_mask, row_counts, sizes = self._assemble(
            rows_per_domain
        )
        rngs = [np.random.default_rng(0) for _ in self.trainers]
        eps = self._draw_eps(sizes, rngs, ratings.shape[1])
        losses = self.fused.loss_only(
            ratings, content, eps, row_mask=row_mask, row_counts=row_counts
        )
        return [
            float(losses["total"][d]) if sizes[d] else float("nan")
            for d in range(len(self.trainers))
        ]
