"""Wilcoxon signed-rank significance testing (paper Section V-D).

The paper compares MetaDPA against the second-best method over 30
independent random train/test splits with a one-sided Wilcoxon signed-rank
test per metric.  :func:`wilcoxon_one_sided` reproduces that statistic;
:func:`paired_metric_series` is the harness that collects per-split results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of one one-sided Wilcoxon signed-rank test."""

    metric: str
    p_value: float
    n_pairs: int
    median_difference: float

    @property
    def significant(self) -> bool:
        """True when the improvement is significant at the 0.05 level."""
        return self.p_value < 0.05


def wilcoxon_one_sided(
    ours: Sequence[float],
    theirs: Sequence[float],
    metric: str = "metric",
) -> SignificanceResult:
    """Test H1: ``median(ours - theirs) > 0`` (we are better).

    Matches the paper's setup: the null hypothesis is that the median
    difference is non-positive; small p-values mean our method wins.
    """
    ours_arr = np.asarray(ours, dtype=float)
    theirs_arr = np.asarray(theirs, dtype=float)
    if ours_arr.shape != theirs_arr.shape:
        raise ValueError("paired samples must have equal length")
    if ours_arr.size < 3:
        raise ValueError("need at least 3 paired samples")
    diff = ours_arr - theirs_arr
    if np.allclose(diff, 0.0):
        # Degenerate: identical results; no evidence either way.
        return SignificanceResult(
            metric=metric, p_value=1.0, n_pairs=diff.size, median_difference=0.0
        )
    result = stats.wilcoxon(ours_arr, theirs_arr, alternative="greater")
    return SignificanceResult(
        metric=metric,
        p_value=float(result.pvalue),
        n_pairs=int(diff.size),
        median_difference=float(np.median(diff)),
    )


def paired_metric_series(
    run_fn: Callable[[int], dict[str, float]],
    seeds: Sequence[int],
) -> dict[str, np.ndarray]:
    """Collect per-seed metric dictionaries into aligned arrays.

    ``run_fn(seed)`` runs one independent split and returns
    ``{metric_name: value}``; the output maps each metric name to the array
    of values across seeds, ready for :func:`wilcoxon_one_sided`.
    """
    per_metric: dict[str, list[float]] = {}
    for seed in seeds:
        outcome = run_fn(seed)
        for name, value in outcome.items():
            per_metric.setdefault(name, []).append(float(value))
    n = len(seeds)
    for name, values in per_metric.items():
        if len(values) != n:
            raise ValueError(f"metric {name!r} missing for some seeds")
    return {name: np.asarray(values) for name, values in per_metric.items()}
