"""Temporal-split evaluation: train before t, serve (and observe) after t.

The offline leave-one-out protocol of :mod:`repro.eval.protocol` freezes
each user's full support history before scoring — it cannot answer the
streaming questions: how much do rankings decay as new interactions arrive
*after* the artifact was trained, and how much of that decay does a
periodic reptile meta-refresh claw back?

This module's protocol:

1. :func:`split_task_stream` stamps every support interaction of every task
   with a seeded pseudo-time in ``[0, 1)`` and cuts at the
   ``initial_frac`` quantile per task: the earliest interactions form the
   *initial* support task (what the artifact served at deploy time, ≤ t);
   the rest become a time-ordered :class:`ObserveEvent` stream (> t).  The
   query side — the held-out positives being ranked — is never touched.
2. :func:`evaluate_stream` registers the initial tasks with a
   :class:`~repro.service.RecommenderService`, scores every instance
   through the *serving* path (cached adaptations, batched cold-start), and
   then replays the event stream in ``n_windows`` slices — ``observe`` per
   event, optionally ``meta_refresh`` per window — re-scoring after each.

Because scoring always goes through ``service.score_instances``, the
reported serve cost (adapted users per window) is the cost a production
deployment would pay; refresh-vs-no-refresh runs are compared at equal
serve cost with :func:`compare_refresh_cadence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.eval.metrics import MetricSet


@dataclass(frozen=True)
class ObserveEvent:
    """One post-t interaction: ``(user, item, rating)`` at pseudo-time ``time``."""

    user_row: int
    item_row: int
    rating: float
    time: float


def split_task_stream(
    tasks: list[PreferenceTask],
    initial_frac: float = 0.5,
    seed: int = 0,
) -> tuple[list[PreferenceTask], list[ObserveEvent]]:
    """Split each task's support set into initial history and future events.

    Benchmark tasks carry no timestamps, so each support interaction gets a
    seeded uniform pseudo-time; per task, the earliest ``initial_frac``
    fraction (at least one interaction) stays in the returned initial task
    and the remainder becomes the event stream, globally sorted by time.
    Query sets pass through unchanged — they are the post-t evaluation
    target.
    """
    if not 0.0 < initial_frac <= 1.0:
        raise ValueError("initial_frac must be in (0, 1]")
    rng = np.random.default_rng(seed)
    initial: list[PreferenceTask] = []
    events: list[ObserveEvent] = []
    for task in tasks:
        n = task.n_support
        if n == 0:
            initial.append(task)
            continue
        times = rng.random(n)
        order = np.argsort(times, kind="stable")
        n_init = max(1, int(np.floor(initial_frac * n)))
        keep = np.sort(order[:n_init])
        initial.append(
            replace(
                task,
                support_items=task.support_items[keep],
                support_labels=task.support_labels[keep],
            )
        )
        for idx in order[n_init:]:
            events.append(
                ObserveEvent(
                    user_row=int(task.user_row),
                    item_row=int(task.support_items[idx]),
                    rating=float(task.support_labels[idx]),
                    time=float(times[idx]),
                )
            )
    events.sort(key=lambda e: e.time)
    return initial, events


@dataclass(frozen=True)
class StreamWindow:
    """Metrics and serve cost after ingesting one slice of the event stream."""

    index: int
    n_events: int
    metrics: MetricSet
    adapted_users: int  # users fine-tuned while scoring this window
    refreshes: int  # cumulative service meta-refreshes so far


@dataclass
class TemporalEvalReport:
    """Metric trajectory of one temporal-split run."""

    initial: MetricSet
    windows: list[StreamWindow] = field(default_factory=list)

    @property
    def final(self) -> MetricSet:
        return self.windows[-1].metrics if self.windows else self.initial

    @property
    def total_adapted_users(self) -> int:
        return sum(w.adapted_users for w in self.windows)

    def trace(self, name: str) -> list[float]:
        """One metric (``hr``/``mrr``/``ndcg``/``auc``) across all windows."""
        return [getattr(self.initial, name)] + [
            getattr(w.metrics, name) for w in self.windows
        ]

    def to_dict(self) -> dict:
        def row(m: MetricSet) -> dict:
            return {"hr": m.hr, "mrr": m.mrr, "ndcg": m.ndcg, "auc": m.auc}

        return {
            "initial": row(self.initial),
            "windows": [
                {
                    "index": w.index,
                    "n_events": w.n_events,
                    "adapted_users": w.adapted_users,
                    "refreshes": w.refreshes,
                    **row(w.metrics),
                }
                for w in self.windows
            ],
        }


def evaluate_stream(
    service,
    initial_tasks: list[PreferenceTask],
    instances: list[EvalInstance],
    events: list[ObserveEvent],
    n_windows: int = 4,
    k: int = 10,
    refresh_each_window: bool = False,
    clear_cache_each_window: bool = False,
) -> TemporalEvalReport:
    """Serve, observe, and re-score through a windowed event stream.

    ``service`` is a :class:`~repro.service.RecommenderService` (any method
    with serving support; ``refresh_each_window`` additionally needs
    ``supports_meta_refresh``).  The initial tasks are registered, every
    instance is scored through the serving path (window "initial"), then
    the events are replayed in ``n_windows`` consecutive slices — after
    each slice the instances are re-scored, so the report traces ranking
    quality against event ingestion and refresh cadence.

    ``clear_cache_each_window`` drops the adaptation cache where a refresh
    *would* have (a refresh invalidates everything) without touching the
    meta-parameters — the control arm that equalizes per-window adaptation
    cost between refresh and no-refresh runs.
    """
    if n_windows <= 0:
        raise ValueError("n_windows must be positive")
    for task in initial_tasks:
        service.register_user_history(task)
    initial = MetricSet.from_score_lists(service.score_instances(instances), k=k)
    report = TemporalEvalReport(initial=initial)
    bounds = np.linspace(0, len(events), n_windows + 1).astype(int)
    for w in range(n_windows):
        window_events = events[bounds[w] : bounds[w + 1]]
        for event in window_events:
            service.observe(event.user_row, event.item_row, event.rating)
        if refresh_each_window:
            service.meta_refresh()
        elif clear_cache_each_window:
            service.clear_cache()
        adapted_before = service.stats()["adaptation"]["users"]
        metrics = MetricSet.from_score_lists(
            service.score_instances(instances), k=k
        )
        stats = service.stats()
        report.windows.append(
            StreamWindow(
                index=w,
                n_events=len(window_events),
                metrics=metrics,
                adapted_users=stats["adaptation"]["users"] - adapted_before,
                refreshes=stats["stream"]["refreshes"],
            )
        )
    return report


def compare_refresh_cadence(
    make_service,
    tasks: list[PreferenceTask],
    instances: list[EvalInstance],
    initial_frac: float = 0.5,
    n_windows: int = 4,
    k: int = 10,
    seed: int = 0,
) -> dict[str, TemporalEvalReport]:
    """Run the temporal protocol with and without periodic meta-refresh.

    ``make_service`` builds a *fresh* service around an identically
    initialized method on every call (each arm must start from the same
    parameters).  Both arms see the same split and the same event stream,
    and both drop the adaptation cache at every window boundary (a refresh
    does so implicitly, the control explicitly), so they adapt the same
    users at the same points — the metric gap is attributable to the
    refresh itself at equal serve cost.
    """
    initial, events = split_task_stream(tasks, initial_frac=initial_frac, seed=seed)
    reports: dict[str, TemporalEvalReport] = {}
    for label, refresh in (("no_refresh", False), ("refresh", True)):
        service = make_service()
        reports[label] = evaluate_stream(
            service,
            initial,
            instances,
            events,
            n_windows=n_windows,
            k=k,
            refresh_each_window=refresh,
            clear_cache_each_window=not refresh,
        )
    return reports
