"""Evaluation: ranking metrics, the leave-one-out protocol, significance tests."""

from repro.eval.metrics import MetricSet, auc, hit_ratio, mrr, ndcg, rank_of_positive
from repro.eval.protocol import EvaluationResult, evaluate_method, evaluate_scenarios
from repro.eval.significance import SignificanceResult, wilcoxon_one_sided

__all__ = [
    "MetricSet",
    "rank_of_positive",
    "hit_ratio",
    "mrr",
    "ndcg",
    "auc",
    "EvaluationResult",
    "evaluate_method",
    "evaluate_scenarios",
    "SignificanceResult",
    "wilcoxon_one_sided",
]
