"""Evaluation: ranking metrics, the leave-one-out protocol, significance tests."""

from repro.eval.metrics import MetricSet, auc, hit_ratio, mrr, ndcg, rank_of_positive
from repro.eval.protocol import EvaluationResult, evaluate_method, evaluate_scenarios
from repro.eval.significance import SignificanceResult, wilcoxon_one_sided
from repro.eval.temporal import (
    ObserveEvent,
    TemporalEvalReport,
    compare_refresh_cadence,
    evaluate_stream,
    split_task_stream,
)

__all__ = [
    "MetricSet",
    "rank_of_positive",
    "hit_ratio",
    "mrr",
    "ndcg",
    "auc",
    "EvaluationResult",
    "evaluate_method",
    "evaluate_scenarios",
    "SignificanceResult",
    "wilcoxon_one_sided",
    "ObserveEvent",
    "TemporalEvalReport",
    "compare_refresh_cadence",
    "evaluate_stream",
    "split_task_stream",
]
