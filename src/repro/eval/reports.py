"""Export experiment results to Markdown and CSV.

The experiment runners return rich result objects with ``format_table``
methods for the console; these helpers render the same data in formats that
can be dropped into a report or spreadsheet.
"""

from __future__ import annotations

import csv
import io

from repro.experiments.table3 import METRIC_NAMES, Table3Result

_METRIC_HEADERS = {"hr": "HR@10", "mrr": "MRR@10", "ndcg": "NDCG@10", "auc": "AUC"}


def table3_to_markdown(result: Table3Result, bold_best: bool = True) -> str:
    """Render a Table-III result as GitHub-flavoured Markdown tables."""
    chunks: list[str] = []
    for target in result.targets:
        chunks.append(f"### Target domain: {target}\n")
        for scenario in result.scenarios:
            chunks.append(f"**{scenario.value}**\n")
            header = "| Method | " + " | ".join(
                _METRIC_HEADERS[m] for m in METRIC_NAMES
            ) + " |"
            divider = "|" + "---|" * (len(METRIC_NAMES) + 1)
            rows = [header, divider]
            best = {
                metric: max(
                    result.mean(target, scenario, m, metric) for m in result.methods
                )
                for metric in METRIC_NAMES
            }
            for method in result.methods:
                cells = []
                for metric in METRIC_NAMES:
                    value = result.mean(target, scenario, method, metric)
                    text = f"{value:.4f}"
                    if bold_best and value == best[metric]:
                        text = f"**{text}**"
                    cells.append(text)
                rows.append(f"| {method} | " + " | ".join(cells) + " |")
            chunks.append("\n".join(rows) + "\n")
    return "\n".join(chunks)


def table3_to_csv(result: Table3Result) -> str:
    """Render a Table-III result as long-format CSV (one row per cell)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["target", "scenario", "method", "metric", "mean", "n_seeds"])
    for target in result.targets:
        for scenario in result.scenarios:
            for method in result.methods:
                for metric in METRIC_NAMES:
                    writer.writerow(
                        [
                            target,
                            scenario.value,
                            method,
                            metric,
                            f"{result.mean(target, scenario, method, metric):.6f}",
                            len(result.seeds),
                        ]
                    )
    return buffer.getvalue()


def ablation_to_csv(result) -> str:
    """Render a Fig. 5 :class:`AblationResult` as long-format CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["target", "scenario", "variant", "k", "ndcg", "diversity"])
    for (scenario, variant), values in result.curves.items():
        diversity = result.diversity.get(variant, "")
        for k, value in zip(result.ks, values):
            writer.writerow(
                [
                    result.target,
                    scenario.value,
                    variant,
                    k,
                    f"{value:.6f}",
                    f"{diversity:.6f}" if diversity != "" else "",
                ]
            )
    return buffer.getvalue()


def ablation_to_markdown(result) -> str:
    """Render a Fig. 5 :class:`AblationResult` as Markdown tables."""
    chunks = [f"### Ablation (Fig. 5) on {result.target}\n"]
    if result.diversity:
        chunks.append("| Variant | Diversity |")
        chunks.append("|---|---|")
        for variant in result.variants:
            if variant in result.diversity:
                chunks.append(f"| {variant} | {result.diversity[variant]:.4f} |")
        chunks.append("")
    for scenario in result.scenarios:
        chunks.append(f"**{scenario.value}**\n")
        chunks.append("| Variant | " + " | ".join(f"NDCG@{k}" for k in result.ks) + " |")
        chunks.append("|" + "---|" * (len(result.ks) + 1))
        for variant in result.variants:
            values = result.curves.get((scenario, variant))
            if values is None:
                continue
            cells = " | ".join(f"{v:.4f}" for v in values)
            chunks.append(f"| {variant} | {cells} |")
        chunks.append("")
    return "\n".join(chunks)


def significance_to_csv(report) -> str:
    """Render a Sec. V-D :class:`SignificanceReport` as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "target",
            "scenario",
            "metric",
            "runner_up",
            "median_diff",
            "p_value",
            "significant",
        ]
    )
    for (scenario, metric), (runner_up, res) in report.results.items():
        writer.writerow(
            [
                report.target,
                scenario.value,
                metric,
                runner_up,
                f"{res.median_difference:.6f}",
                f"{res.p_value:.6e}",
                "yes" if res.significant else "no",
            ]
        )
    return buffer.getvalue()


def significance_to_markdown(report) -> str:
    """Render a Sec. V-D :class:`SignificanceReport` as a Markdown table."""
    chunks = [
        f"### Significance (Sec. V-D) on {report.target}, "
        f"{report.n_seeds} random splits\n",
        "| Scenario | Metric | Runner-up | Median diff | p-value | Significant |",
        "|---|---|---|---|---|---|",
    ]
    for (scenario, metric), (runner_up, res) in report.results.items():
        chunks.append(
            f"| {scenario.value} | {metric} | {runner_up} | "
            f"{res.median_difference:.4f} | {res.p_value:.2e} | "
            f"{'yes' if res.significant else 'no'} |"
        )
    return "\n".join(chunks) + "\n"


def curves_to_csv(ks: list[int], curves: dict, label: str = "series") -> str:
    """Render NDCG@k curves (Figs. 3–5 data) as CSV.

    ``curves`` maps ``(scenario, name)`` (or any 2-tuple whose first element
    has a ``.value``) to a list of values aligned with ``ks``.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["scenario", label, *[f"k={k}" for k in ks]])
    for (scenario, name), values in curves.items():
        scenario_label = getattr(scenario, "value", str(scenario))
        writer.writerow([scenario_label, name, *[f"{v:.6f}" for v in values]])
    return buffer.getvalue()
