"""The end-to-end evaluation protocol of Section V-A2.

For each scenario:

1. build meta-test tasks from the scenario's block of the rating matrix,
2. build leave-one-out instances (one query positive vs 99 sampled
   negatives) from each task,
3. let the method score each instance, passing the task's support set so
   meta-learners can fine-tune,
4. aggregate HR@k / MRR@k / NDCG@k / AUC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.interface import FitContext, Recommender
from repro.data.domain import Domain
from repro.data.negative_sampling import EvalInstance, build_eval_instances
from repro.data.splits import ColdStartSplits, Scenario
from repro.data.tasks import PreferenceTask, TaskConfig, build_task_set
from repro.eval.metrics import MetricSet, ndcg_curve
from repro.utils.rng import spawn_rngs


@dataclass
class EvaluationResult:
    """Scores of one method on one (domain, scenario) pair."""

    method: str
    domain: str
    scenario: Scenario
    metrics: MetricSet
    score_lists: list[np.ndarray] = field(repr=False, default_factory=list)

    def ndcg_at(self, ks: list[int]) -> dict[int, float]:
        """NDCG@k curve over the stored per-instance score lists."""
        return ndcg_curve(self.score_lists, ks)


def align_tasks(
    tasks: Iterable[PreferenceTask], instances: Sequence[EvalInstance]
) -> list[PreferenceTask | None]:
    """The support task backing each instance's user (``None`` if task-free).

    Methods receive tasks positionally aligned with the instances they
    score; this is the single place that alignment is computed for the
    evaluation entry points and the grid runner.
    """
    task_by_user = {task.user_row: task for task in tasks}
    return [task_by_user.get(instance.user_row) for instance in instances]


def resolve_method(method, seed: int = 0, profile: str | None = None) -> Recommender:
    """Accept a :class:`Recommender`, a registry name, or a config dict.

    Evaluation entry points route through this, so callers can pass the
    declarative form — ``{"name": "MetaDPA", "cvae_epochs": 60}`` — instead
    of constructing method objects by hand.
    """
    if isinstance(method, Recommender):
        return method
    if isinstance(method, (str, Mapping)):
        from repro.registry import build_method

        return build_method(method, seed=seed, profile=profile)
    from repro.registry import MethodConfig, build_method

    if isinstance(method, MethodConfig):
        return build_method(method, seed=seed)
    raise TypeError(
        f"cannot resolve a method from {type(method).__name__}; "
        "pass a Recommender, a registered name, or a config dict"
    )


def evaluate_method(
    method: Recommender,
    domain: Domain,
    splits: ColdStartSplits,
    scenario: Scenario,
    task_config: TaskConfig | None = None,
    n_negatives: int = 99,
    k: int = 10,
    seed: int = 0,
) -> EvaluationResult:
    """Evaluate a fitted method on one scenario of one target domain."""
    task_rng, neg_rng = spawn_rngs(seed, 2)
    tasks = build_task_set(domain, splits, scenario, config=task_config, rng=task_rng)
    instances = build_eval_instances(
        domain, splits, scenario, tasks, n_negatives=n_negatives, rng=neg_rng
    )
    score_lists = method.score_batch(align_tasks(tasks, instances), instances)
    return EvaluationResult(
        method=method.name,
        domain=domain.name,
        scenario=scenario,
        metrics=MetricSet.from_score_lists(score_lists, k=k),
        score_lists=score_lists,
    )


def evaluate_prepared(
    method,
    experiment,
    scenarios: list[Scenario] | None = None,
    k: int = 10,
    fit: bool = True,
) -> dict[Scenario, EvaluationResult]:
    """Evaluate on a :class:`repro.data.experiment.Experiment` bundle.

    This is the preferred entry point: the experiment bundle owns the
    leak-free splits, tasks, instances and visibility matrices, so every
    method is scored on *identical* candidate lists.  ``method`` may be a
    fitted/unfitted :class:`Recommender`, a registered method name, or a
    config dict accepted by :func:`repro.registry.build_method`.
    """
    method = resolve_method(method, seed=experiment.seed)
    if fit:
        method.fit(experiment.ctx)
    results: dict[Scenario, EvaluationResult] = {}
    for scenario in scenarios or list(experiment.task_sets):
        tasks = experiment.task_sets[scenario]
        instances = experiment.instances[scenario]
        score_lists = method.score_batch(align_tasks(tasks, instances), instances)
        results[scenario] = EvaluationResult(
            method=method.name,
            domain=experiment.domain.name,
            scenario=scenario,
            metrics=MetricSet.from_score_lists(score_lists, k=k),
            score_lists=score_lists,
        )
    return results


def evaluate_scenarios(
    method,
    ctx: FitContext,
    scenarios: list[Scenario] | None = None,
    task_config: TaskConfig | None = None,
    n_negatives: int = 99,
    k: int = 10,
) -> dict[Scenario, EvaluationResult]:
    """Fit once, then evaluate on every requested scenario.

    Like :func:`evaluate_prepared`, ``method`` may also be a registered
    name or config dict.
    """
    method = resolve_method(method, seed=ctx.seed)
    method.fit(ctx)
    results = {}
    for scenario in scenarios or list(Scenario):
        results[scenario] = evaluate_method(
            method,
            ctx.domain,
            ctx.splits,
            scenario,
            task_config=task_config,
            n_negatives=n_negatives,
            k=k,
            seed=ctx.seed,
        )
    return results


def format_results_table(
    results: dict[str, dict[Scenario, EvaluationResult]],
    scenarios: list[Scenario] | None = None,
) -> str:
    """Render a Table-III-style block: rows = methods, grouped by scenario."""
    lines: list[str] = []
    for scenario in scenarios or list(Scenario):
        lines.append(f"--- {scenario.value} ---")
        header = f"{'Method':<12} {'HR@10':>8} {'MRR@10':>8} {'NDCG@10':>8} {'AUC':>8}"
        lines.append(header)
        for method_name, per_scenario in results.items():
            res = per_scenario.get(scenario)
            if res is None:
                continue
            m = res.metrics
            lines.append(
                f"{method_name:<12} {m.hr:>8.4f} {m.mrr:>8.4f} {m.ndcg:>8.4f} {m.auc:>8.4f}"
            )
        lines.append("")
    return "\n".join(lines)
