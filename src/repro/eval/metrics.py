"""Top-k ranking metrics used throughout the paper's evaluation.

All metrics operate on one leave-one-out trial: a score array whose first
entry is the held-out positive item and whose remaining entries are sampled
negatives (:class:`repro.data.negative_sampling.EvalInstance` layout).

Ties are handled with the mid-rank convention so that a constant scorer gets
AUC 0.5 and chance-level HR, rather than an arbitrary 0 or 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rank_of_positive(scores: np.ndarray) -> float:
    """1-based rank of the positive (index 0), mid-rank for ties."""
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size < 1:
        raise ValueError("scores must be a non-empty 1-D array")
    pos = scores[0]
    higher = float(np.sum(scores[1:] > pos))
    ties = float(np.sum(scores[1:] == pos))
    return 1.0 + higher + 0.5 * ties


def hit_ratio(scores: np.ndarray, k: int) -> float:
    """1.0 if the positive ranks within the top-``k``, else 0.0."""
    _check_k(k)
    return 1.0 if rank_of_positive(scores) <= k else 0.0


def mrr(scores: np.ndarray, k: int) -> float:
    """Reciprocal rank if the positive is within top-``k``, else 0."""
    _check_k(k)
    rank = rank_of_positive(scores)
    return 1.0 / rank if rank <= k else 0.0


def ndcg(scores: np.ndarray, k: int) -> float:
    """NDCG@k for a single relevant item: ``1 / log2(rank + 1)`` inside top-k.

    With exactly one relevant item the ideal DCG is 1, so no normalization
    constant is needed.
    """
    _check_k(k)
    rank = rank_of_positive(scores)
    return float(1.0 / np.log2(rank + 1.0)) if rank <= k else 0.0


def auc(scores: np.ndarray) -> float:
    """Fraction of negatives ranked below the positive (ties count half)."""
    scores = np.asarray(scores, dtype=float)
    n_neg = scores.size - 1
    if n_neg == 0:
        return 0.5
    pos = scores[0]
    wins = float(np.sum(scores[1:] < pos))
    ties = float(np.sum(scores[1:] == pos))
    return (wins + 0.5 * ties) / n_neg


def _check_k(k: int) -> None:
    if k <= 0:
        raise ValueError("k must be positive")


def _batch_rank_stats(
    score_lists: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-trial ``(rank, wins, ties, length)`` computed as one matrix op.

    Trials are padded into a single matrix with NaN; NaN compares false
    against the positive exactly like the scalar helpers treat out-of-range
    (or genuinely NaN) scores, so padding never shifts a rank.  This is the
    aggregation hot path every grid cell pays — one vectorized pass instead
    of four Python loops over the trial list.
    """
    arrays = []
    for scores in score_lists:
        scores = np.asarray(scores, dtype=float)
        if scores.ndim != 1 or scores.size < 1:
            raise ValueError("scores must be a non-empty 1-D array")
        arrays.append(scores)
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    matrix = np.full((len(arrays), int(lengths.max())), np.nan)
    for row, scores in enumerate(arrays):
        matrix[row, : scores.size] = scores
    pos = matrix[:, :1]
    negatives = matrix[:, 1:]
    higher = np.sum(negatives > pos, axis=1)
    ties = np.sum(negatives == pos, axis=1)
    wins = np.sum(negatives < pos, axis=1)
    ranks = 1.0 + higher + 0.5 * ties
    return ranks, wins.astype(float), ties.astype(float), lengths


@dataclass(frozen=True)
class MetricSet:
    """The four headline metrics of Table III, averaged over trials."""

    hr: float
    mrr: float
    ndcg: float
    auc: float
    n_trials: int
    k: int = 10

    @staticmethod
    def from_score_lists(score_lists: list[np.ndarray], k: int = 10) -> "MetricSet":
        """Aggregate metrics over many leave-one-out trials (vectorized)."""
        _check_k(k)
        if not score_lists:
            return MetricSet(hr=0.0, mrr=0.0, ndcg=0.0, auc=0.0, n_trials=0, k=k)
        ranks, wins, ties, lengths = _batch_rank_stats(score_lists)
        in_k = ranks <= k
        n_neg = (lengths - 1).astype(float)
        auc_per_trial = np.where(
            n_neg > 0, (wins + 0.5 * ties) / np.maximum(n_neg, 1.0), 0.5
        )
        return MetricSet(
            hr=float(np.mean(in_k)),
            mrr=float(np.mean(np.where(in_k, 1.0 / ranks, 0.0))),
            ndcg=float(np.mean(np.where(in_k, 1.0 / np.log2(ranks + 1.0), 0.0))),
            auc=float(np.mean(auc_per_trial)),
            n_trials=len(score_lists),
            k=k,
        )

    def as_row(self, label: str) -> str:
        return (
            f"{label:<12} HR@{self.k}={self.hr:.4f}  MRR@{self.k}={self.mrr:.4f}  "
            f"NDCG@{self.k}={self.ndcg:.4f}  AUC={self.auc:.4f}  (n={self.n_trials})"
        )


def ndcg_curve(score_lists: list[np.ndarray], ks: list[int]) -> dict[int, float]:
    """NDCG@k for several cutoffs — the series plotted in Figs. 3–5.

    Ranks are computed once and reused across every cutoff.
    """
    for k in ks:
        _check_k(k)
    if not score_lists:
        return {k: 0.0 for k in ks}
    ranks, _, _, _ = _batch_rank_stats(score_lists)
    gains = 1.0 / np.log2(ranks + 1.0)
    return {k: float(np.mean(np.where(ranks <= k, gains, 0.0))) for k in ks}
