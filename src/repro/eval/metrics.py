"""Top-k ranking metrics used throughout the paper's evaluation.

All metrics operate on one leave-one-out trial: a score array whose first
entry is the held-out positive item and whose remaining entries are sampled
negatives (:class:`repro.data.negative_sampling.EvalInstance` layout).

Ties are handled with the mid-rank convention so that a constant scorer gets
AUC 0.5 and chance-level HR, rather than an arbitrary 0 or 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rank_of_positive(scores: np.ndarray) -> float:
    """1-based rank of the positive (index 0), mid-rank for ties."""
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size < 1:
        raise ValueError("scores must be a non-empty 1-D array")
    pos = scores[0]
    higher = float(np.sum(scores[1:] > pos))
    ties = float(np.sum(scores[1:] == pos))
    return 1.0 + higher + 0.5 * ties


def hit_ratio(scores: np.ndarray, k: int) -> float:
    """1.0 if the positive ranks within the top-``k``, else 0.0."""
    _check_k(k)
    return 1.0 if rank_of_positive(scores) <= k else 0.0


def mrr(scores: np.ndarray, k: int) -> float:
    """Reciprocal rank if the positive is within top-``k``, else 0."""
    _check_k(k)
    rank = rank_of_positive(scores)
    return 1.0 / rank if rank <= k else 0.0


def ndcg(scores: np.ndarray, k: int) -> float:
    """NDCG@k for a single relevant item: ``1 / log2(rank + 1)`` inside top-k.

    With exactly one relevant item the ideal DCG is 1, so no normalization
    constant is needed.
    """
    _check_k(k)
    rank = rank_of_positive(scores)
    return float(1.0 / np.log2(rank + 1.0)) if rank <= k else 0.0


def auc(scores: np.ndarray) -> float:
    """Fraction of negatives ranked below the positive (ties count half)."""
    scores = np.asarray(scores, dtype=float)
    n_neg = scores.size - 1
    if n_neg == 0:
        return 0.5
    pos = scores[0]
    wins = float(np.sum(scores[1:] < pos))
    ties = float(np.sum(scores[1:] == pos))
    return (wins + 0.5 * ties) / n_neg


def _check_k(k: int) -> None:
    if k <= 0:
        raise ValueError("k must be positive")


@dataclass(frozen=True)
class MetricSet:
    """The four headline metrics of Table III, averaged over trials."""

    hr: float
    mrr: float
    ndcg: float
    auc: float
    n_trials: int
    k: int = 10

    @staticmethod
    def from_score_lists(score_lists: list[np.ndarray], k: int = 10) -> "MetricSet":
        """Aggregate metrics over many leave-one-out trials."""
        if not score_lists:
            return MetricSet(hr=0.0, mrr=0.0, ndcg=0.0, auc=0.0, n_trials=0, k=k)
        return MetricSet(
            hr=float(np.mean([hit_ratio(s, k) for s in score_lists])),
            mrr=float(np.mean([mrr(s, k) for s in score_lists])),
            ndcg=float(np.mean([ndcg(s, k) for s in score_lists])),
            auc=float(np.mean([auc(s) for s in score_lists])),
            n_trials=len(score_lists),
            k=k,
        )

    def as_row(self, label: str) -> str:
        return (
            f"{label:<12} HR@{self.k}={self.hr:.4f}  MRR@{self.k}={self.mrr:.4f}  "
            f"NDCG@{self.k}={self.ndcg:.4f}  AUC={self.auc:.4f}  (n={self.n_trials})"
        )


def ndcg_curve(score_lists: list[np.ndarray], ks: list[int]) -> dict[int, float]:
    """NDCG@k for several cutoffs — the series plotted in Figs. 3–5."""
    return {
        k: float(np.mean([ndcg(s, k) for s in score_lists])) if score_lists else 0.0
        for k in ks
    }
