"""CoNN — Deep Cooperative Neural Networks (Zheng et al., WSDM 2017).

Two parallel networks learn user behaviour and item properties from review
text; a shared top layer couples them into a rating prediction.  Our
implementation maps each side's bag-of-words review content through its own
embedding + hidden stack and predicts with a joint MLP head — the same
architecture as :class:`repro.meta.model.PreferenceModel`, trained as plain
supervised learning (no meta-learning, no fine-tuning at test time).

Being purely content-based, CoNN degrades gracefully under cold-start but
cannot use the support ratings of a new user/item, which is what separates
it from the meta-learners in Table III.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import repeat_user_content, train_supervised, warm_triples
from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.nn.module import Params
from repro.utils.rng import spawn_rngs


class CoNN(Recommender):
    """Parallel user/item content networks with a shared prediction layer."""

    name = "CoNN"

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dims: tuple[int, ...] = (64, 32),
        epochs: int = 15,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.model: PreferenceModel | None = None
        self.params: Params | None = None
        self._ctx: FitContext | None = None
        self.loss_history: list[float] = []

    def fit(self, ctx: FitContext) -> "CoNN":
        self._ctx = ctx
        domain = ctx.domain
        init_rng, train_rng = spawn_rngs(self.seed, 2)
        self.model = PreferenceModel(
            PreferenceModelConfig(
                content_dim=domain.user_content.shape[1],
                embed_dim=self.embed_dim,
                hidden_dims=self.hidden_dims,
            )
        )
        self.params = self.model.init_params(init_rng)
        users, items, labels = warm_triples(ctx.warm_tasks)
        user_content = domain.user_content
        item_content = domain.item_content

        def loss_grad_fn(batch: np.ndarray):
            assert self.model is not None and self.params is not None
            return self.model.loss_and_grads(
                self.params,
                user_content[users[batch]],
                item_content[items[batch]],
                labels[batch],
            )

        self.loss_history = train_supervised(
            self.params,
            loss_grad_fn,
            n_samples=users.size,
            epochs=self.epochs,
            lr=self.lr,
            rng=train_rng,
        )
        self.attach_serving(ctx)
        return self

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self.model is None or self.params is None or self._ctx is None:
            raise RuntimeError("fit() must be called before score()")
        domain = self._ctx.domain
        candidates = instance.candidates
        return self.model.predict(
            self.params,
            repeat_user_content(domain.user_content, instance.user_row, candidates.size),
            domain.item_content[candidates],
        )
