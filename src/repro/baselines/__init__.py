"""Baseline recommenders evaluated in Table III.

Every baseline implements :class:`repro.core.Recommender` on the same
numpy substrate as MetaDPA:

- :class:`Popularity` — degree-count sanity baseline (not in the paper).
- :class:`NeuMF` — neural collaborative filtering with ID embeddings; its
  embeddings for unseen users/items are untrained, which is why it sits at
  chance level in cold-start rows of Table III.
- :class:`MeLU` — MAML over the content preference model with MeLU's
  decision-layer-only local update; no augmentation.
- :class:`MetaCF` — meta-learning CF with an inductive user representation
  (mean of rated item embeddings) and potential-interaction extension.
- :class:`CoNN` — two parallel content networks with a shared top layer.
- :class:`DAML` — content networks with mutual attention between the user
  and item representations.
- :class:`TDAR` — text-feature matching trained with source-domain data and
  batch-level domain alignment.
- :class:`CATN` — aspect extraction with a cross-aspect matching matrix,
  trained with source-domain auxiliary data.

Each class's docstring records how the simplified implementation relates to
the published method.
"""

from repro.baselines.popularity import Popularity
from repro.baselines.neumf import NeuMF
from repro.baselines.melu import MeLU
from repro.baselines.metacf import MetaCF
from repro.baselines.conn import CoNN
from repro.baselines.daml import DAML
from repro.baselines.tdar import TDAR
from repro.baselines.catn import CATN

ALL_BASELINES = (NeuMF, MeLU, MetaCF, CoNN, DAML, TDAR, CATN)

__all__ = [
    "Popularity",
    "NeuMF",
    "MeLU",
    "MetaCF",
    "CoNN",
    "DAML",
    "TDAR",
    "CATN",
    "ALL_BASELINES",
]
