"""Shared helpers for the baseline implementations."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.tasks import TaskSet
from repro.nn.module import Grads, Params
from repro.nn.optim import Adam, clip_grad_norm
from repro.utils.batching import iter_batches
from repro.utils.rng import ensure_rng


def warm_triples(
    warm_tasks: TaskSet, include_query: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten warm meta-tasks into supervised (user, item, label) triples.

    By default only the *support* portions are used: the query positives are
    the warm-start evaluation targets, so supervised baselines must never
    train on them.  (``include_query=True`` exists for diagnostics only.)
    """
    users: list[np.ndarray] = []
    items: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for task in warm_tasks:
        if include_query:
            task_items = np.concatenate([task.support_items, task.query_items])
            task_labels = np.concatenate([task.support_labels, task.query_labels])
        else:
            task_items = task.support_items
            task_labels = task.support_labels
        users.append(np.full(task_items.size, task.user_row, dtype=int))
        items.append(task_items)
        labels.append(task_labels)
    if not users:
        empty = np.array([], dtype=int)
        return empty, empty, np.array([], dtype=float)
    return (
        np.concatenate(users),
        np.concatenate(items),
        np.concatenate(labels).astype(float),
    )


def domain_triples(
    ratings: np.ndarray,
    n_neg_per_pos: int,
    rng: np.random.Generator,
    max_users: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample (user, item, label) triples from a full rating matrix.

    Used by cross-domain baselines to draw source-domain training data.
    """
    n_users, n_items = ratings.shape
    rows = np.arange(n_users)
    if max_users is not None and n_users > max_users:
        rows = rng.choice(rows, size=max_users, replace=False)
    users: list[int] = []
    items: list[int] = []
    labels: list[float] = []
    for row in rows:
        pos = np.flatnonzero(ratings[row] > 0)
        if pos.size == 0:
            continue
        neg_pool = np.flatnonzero(ratings[row] == 0)
        n_neg = min(n_neg_per_pos * pos.size, neg_pool.size)
        neg = rng.choice(neg_pool, size=n_neg, replace=False) if n_neg else []
        for i in pos:
            users.append(row)
            items.append(int(i))
            labels.append(1.0)
        for i in neg:
            users.append(row)
            items.append(int(i))
            labels.append(0.0)
    return np.asarray(users), np.asarray(items), np.asarray(labels)


LossGradFn = Callable[[np.ndarray], tuple[float, Grads]]


def train_supervised(
    params: Params,
    loss_grad_fn: LossGradFn,
    n_samples: int,
    epochs: int,
    batch_size: int = 64,
    lr: float = 1e-3,
    grad_clip: float = 5.0,
    rng: int | np.random.Generator | None = 0,
) -> list[float]:
    """Generic mini-batch Adam loop.

    ``loss_grad_fn(batch_indices)`` returns the batch loss and gradients for
    ``params``.  Returns the per-epoch mean loss trace.
    """
    if n_samples <= 0:
        raise ValueError("no training samples")
    gen = ensure_rng(rng)
    optimizer = Adam(params, lr=lr)
    history: list[float] = []
    for _ in range(epochs):
        total = 0.0
        n_batches = 0
        for batch in iter_batches(n_samples, batch_size, rng=gen):
            loss, grads = loss_grad_fn(batch)
            clip_grad_norm(grads, grad_clip)
            optimizer.step(grads)
            total += loss
            n_batches += 1
        history.append(total / max(n_batches, 1))
    return history


def repeat_user_content(
    content: np.ndarray, user_row: int, n: int
) -> np.ndarray:
    """Broadcast one user's content row against ``n`` candidate items."""
    return np.repeat(content[user_row][None, :], n, axis=0)
