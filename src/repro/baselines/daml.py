"""DAML — Dual Attention Mutual Learning (Liu et al., KDD 2019).

DAML extracts review features with local and mutual attention and predicts
with a neural factorization machine.  The simplified reproduction keeps the
two defining ingredients at bag-of-words scale:

- **mutual attention**: a sigmoid gate computed from the elementwise product
  of the user and item representations reweights both sides, so each side's
  features are emphasized where the other side agrees;
- **second-order interaction**: an FM-style inner product of the attended
  representations is added to the MLP head's logit.

Dropped relative to the paper: convolutional word-window encoders and rating
features (we have bag-of-words content, not word sequences).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import repeat_user_content, train_supervised, warm_triples
from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.nn.layers import sigmoid
from repro.nn.losses import binary_cross_entropy
from repro.nn.module import Grads, Params, mlp
from repro.utils.rng import spawn_rngs


class DAML(Recommender):
    """Mutual-attention content model with an FM-style interaction term."""

    name = "DAML"

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dims: tuple[int, ...] = (32,),
        epochs: int = 15,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.params: Params | None = None
        self._mlp = None
        self._ctx: FitContext | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build(self, content_dim: int, rng: np.random.Generator) -> None:
        e = self.embed_dim
        limit = np.sqrt(6.0 / (content_dim + e))
        self._mlp = mlp([2 * e, *self.hidden_dims, 1], activation="relu")
        params: Params = {
            "Wu": rng.uniform(-limit, limit, size=(content_dim, e)),
            "bu": np.zeros(e),
            "Wi": rng.uniform(-limit, limit, size=(content_dim, e)),
            "bi": np.zeros(e),
            "att_w": np.ones(e),
            "att_b": np.zeros(e),
            "fm_alpha": np.array([0.5]),
        }
        for name, value in self._mlp.init_params(rng).items():
            params[f"mlp.{name}"] = value
        self.params = params

    @staticmethod
    def _sub(params: Params, prefix: str) -> Params:
        dot = prefix + "."
        return {k[len(dot):]: v for k, v in params.items() if k.startswith(dot)}

    def _forward(
        self, params: Params, cu: np.ndarray, ci: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        zu = np.tanh(cu @ params["Wu"] + params["bu"])
        zi = np.tanh(ci @ params["Wi"] + params["bi"])
        prod = zu * zi
        gate = sigmoid(prod * params["att_w"] + params["att_b"])
        hu = zu * gate
        hi = zi * gate
        fm = (hu * hi).sum(axis=1)
        joint = np.concatenate([hu, hi], axis=1)
        assert self._mlp is not None
        top, c_mlp = self._mlp.forward(self._sub(params, "mlp"), joint)
        logits = top[:, 0] + params["fm_alpha"][0] * fm
        preds = sigmoid(logits)
        cache = dict(
            cu=cu, ci=ci, zu=zu, zi=zi, prod=prod, gate=gate, hu=hu, hi=hi,
            fm=fm, c_mlp=c_mlp, preds=preds,
        )
        return preds, cache

    def _loss_grads(
        self, params: Params, cu: np.ndarray, ci: np.ndarray, labels: np.ndarray
    ) -> tuple[float, Grads]:
        preds, c = self._forward(params, cu, ci)
        loss, d_pred = binary_cross_entropy(preds, labels)
        d_logit = d_pred * c["preds"] * (1.0 - c["preds"])

        grads: Grads = {"fm_alpha": np.array([(d_logit * c["fm"]).sum()])}
        d_fm = d_logit * params["fm_alpha"][0]
        assert self._mlp is not None
        d_joint, g_mlp = self._mlp.backward(
            self._sub(params, "mlp"), c["c_mlp"], d_logit[:, None]
        )
        for k, v in g_mlp.items():
            grads[f"mlp.{k}"] = v
        e = self.embed_dim
        d_hu = d_joint[:, :e] + d_fm[:, None] * c["hi"]
        d_hi = d_joint[:, e:] + d_fm[:, None] * c["hu"]

        # h = z * gate ; gate = sigmoid(prod * w + b) ; prod = zu * zi
        d_gate = d_hu * c["zu"] + d_hi * c["zi"]
        d_pre_gate = d_gate * c["gate"] * (1.0 - c["gate"])
        grads["att_w"] = (d_pre_gate * c["prod"]).sum(axis=0)
        grads["att_b"] = d_pre_gate.sum(axis=0)
        d_prod = d_pre_gate * params["att_w"]
        d_zu = d_hu * c["gate"] + d_prod * c["zi"]
        d_zi = d_hi * c["gate"] + d_prod * c["zu"]

        d_pre_u = d_zu * (1.0 - c["zu"] ** 2)
        d_pre_i = d_zi * (1.0 - c["zi"] ** 2)
        grads["Wu"] = c["cu"].T @ d_pre_u
        grads["bu"] = d_pre_u.sum(axis=0)
        grads["Wi"] = c["ci"].T @ d_pre_i
        grads["bi"] = d_pre_i.sum(axis=0)
        return loss, grads

    # ------------------------------------------------------------------
    def fit(self, ctx: FitContext) -> "DAML":
        self._ctx = ctx
        domain = ctx.domain
        init_rng, train_rng = spawn_rngs(self.seed, 2)
        self._build(domain.user_content.shape[1], init_rng)
        users, items, labels = warm_triples(ctx.warm_tasks)
        uc, ic = domain.user_content, domain.item_content
        assert self.params is not None

        def loss_grad_fn(batch: np.ndarray):
            return self._loss_grads(
                self.params, uc[users[batch]], ic[items[batch]], labels[batch]
            )

        self.loss_history = train_supervised(
            self.params,
            loss_grad_fn,
            n_samples=users.size,
            epochs=self.epochs,
            lr=self.lr,
            rng=train_rng,
        )
        self.attach_serving(ctx)
        return self

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self.params is None or self._ctx is None:
            raise RuntimeError("fit() must be called before score()")
        domain = self._ctx.domain
        candidates = instance.candidates
        preds, _ = self._forward(
            self.params,
            repeat_user_content(domain.user_content, instance.user_row, candidates.size),
            domain.item_content[candidates],
        )
        return preds
