"""Popularity baseline: rank items by their warm-block interaction count.

Not part of the paper's baseline set; it anchors the evaluation (any learned
method should beat it on warm-start, and it is immune to user cold-start
since it ignores the user entirely).
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask


class Popularity(Recommender):
    """Score every item by its interaction count among existing users."""

    name = "Popularity"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._scores: np.ndarray | None = None

    def fit(self, ctx: FitContext) -> "Popularity":
        # Only training-visible interactions count; new items correctly get
        # zero popularity (their ratings are hidden until evaluation).
        self._scores = ctx.visible_ratings.sum(axis=0)
        self.attach_serving(ctx)
        return self

    def state_dict(self) -> dict:
        if self._scores is None:
            raise RuntimeError("fit() must be called before state_dict()")
        return {"scores": self._scores}

    def load_state_dict(self, state: dict) -> None:
        self._scores = np.asarray(state["scores"])

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self._scores is None:
            raise RuntimeError("fit() must be called before score()")
        return self._scores[instance.candidates]
