"""TDAR — Text-enhanced Domain Adaptation Recommendation (KDD 2020).

TDAR extracts textual features per user/item in a word semantic space and
feeds them, with the CF embeddings, into a domain-adapted model.  The
reproduction keeps its essence:

- user and item **text encoders shared across domains** (review text is the
  domain-invariant feature), scoring by the inner product of the encoded
  user and item representations;
- joint training on the target's warm block **and** the source domains'
  interactions;
- **domain alignment** on shared users: the encoded target representation
  of a shared user is pulled toward their encoded source representation
  (simplified from TDAR's adversarial domain classifier to a paired MSE —
  same objective, deterministic optimization).

TDAR was designed for warm-start semi-supervised CF; as in the paper it has
no fine-tuning mechanism, so its cold-start rows depend entirely on how well
text generalizes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    domain_triples,
    repeat_user_content,
    train_supervised,
    warm_triples,
)
from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.nn.layers import sigmoid
from repro.nn.losses import binary_cross_entropy
from repro.nn.module import Grads, Params
from repro.utils.rng import spawn_rngs


class TDAR(Recommender):
    """Shared text encoders + inner-product scorer with domain alignment."""

    name = "TDAR"

    def __init__(
        self,
        embed_dim: int = 32,
        epochs: int = 15,
        lr: float = 1e-3,
        align_weight: float = 0.5,
        source_weight: float = 0.5,
        n_neg_per_pos: int = 4,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.epochs = epochs
        self.lr = lr
        self.align_weight = align_weight
        self.source_weight = source_weight
        self.n_neg_per_pos = n_neg_per_pos
        self.seed = seed
        self.params: Params | None = None
        self._ctx: FitContext | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build(self, content_dim: int, rng: np.random.Generator) -> None:
        e = self.embed_dim
        limit = np.sqrt(6.0 / (content_dim + e))
        self.params = {
            "Wu": rng.uniform(-limit, limit, size=(content_dim, e)),
            "bu": np.zeros(e),
            "Wi": rng.uniform(-limit, limit, size=(content_dim, e)),
            "bi": np.zeros(e),
            "bias": np.zeros(1),
        }

    def _encode_user(self, params: Params, cu: np.ndarray) -> np.ndarray:
        return np.tanh(cu @ params["Wu"] + params["bu"])

    def _encode_item(self, params: Params, ci: np.ndarray) -> np.ndarray:
        return np.tanh(ci @ params["Wi"] + params["bi"])

    def _predict(self, params: Params, cu: np.ndarray, ci: np.ndarray) -> np.ndarray:
        zu = self._encode_user(params, cu)
        zi = self._encode_item(params, ci)
        return sigmoid((zu * zi).sum(axis=1) + params["bias"][0])

    def _bce_grads(
        self, params: Params, cu: np.ndarray, ci: np.ndarray, labels: np.ndarray
    ) -> tuple[float, Grads]:
        zu = self._encode_user(params, cu)
        zi = self._encode_item(params, ci)
        logits = (zu * zi).sum(axis=1) + params["bias"][0]
        preds = sigmoid(logits)
        loss, d_pred = binary_cross_entropy(preds, labels)
        d_logit = d_pred * preds * (1.0 - preds)
        d_zu = d_logit[:, None] * zi
        d_zi = d_logit[:, None] * zu
        d_pre_u = d_zu * (1.0 - zu * zu)
        d_pre_i = d_zi * (1.0 - zi * zi)
        grads: Grads = {
            "Wu": cu.T @ d_pre_u,
            "bu": d_pre_u.sum(axis=0),
            "Wi": ci.T @ d_pre_i,
            "bi": d_pre_i.sum(axis=0),
            "bias": np.array([d_logit.sum()]),
        }
        return loss, grads

    def _align_grads(
        self, params: Params, cu_target: np.ndarray, cu_source: np.ndarray
    ) -> tuple[float, Grads]:
        """Pull shared users' target representation toward their source one."""
        zt = self._encode_user(params, cu_target)
        zs = self._encode_user(params, cu_source)
        diff = zt - zs
        n = diff.size
        loss = float((diff * diff).sum() / n)
        d_zt = 2.0 * diff / n
        d_zs = -2.0 * diff / n
        d_pre_t = d_zt * (1.0 - zt * zt)
        d_pre_s = d_zs * (1.0 - zs * zs)
        grads: Grads = {
            "Wu": cu_target.T @ d_pre_t + cu_source.T @ d_pre_s,
            "bu": d_pre_t.sum(axis=0) + d_pre_s.sum(axis=0),
        }
        return loss, grads

    # ------------------------------------------------------------------
    def fit(self, ctx: FitContext) -> "TDAR":
        self._ctx = ctx
        domain = ctx.domain
        init_rng, src_rng, train_rng = spawn_rngs(self.seed, 3)
        self._build(domain.user_content.shape[1], init_rng)
        assert self.params is not None

        # Target warm triples.
        t_users, t_items, t_labels = warm_triples(ctx.warm_tasks)
        datasets = [
            (domain.user_content[t_users], domain.item_content[t_items], t_labels, 1.0)
        ]
        # Source-domain triples (subsampled for speed).
        for source_name in ctx.dataset.source_names():
            source = ctx.dataset.sources[source_name]
            s_users, s_items, s_labels = domain_triples(
                source.ratings, self.n_neg_per_pos, src_rng, max_users=60
            )
            if s_users.size:
                datasets.append(
                    (
                        source.user_content[s_users],
                        source.item_content[s_items],
                        s_labels,
                        self.source_weight,
                    )
                )
        cu_all = np.concatenate([d[0] for d in datasets])
        ci_all = np.concatenate([d[1] for d in datasets])
        y_all = np.concatenate([d[2] for d in datasets])
        w_all = np.concatenate([np.full(d[2].size, d[3]) for d in datasets])

        # Shared-user alignment pairs.
        pairs = ctx.dataset.pairs_for_target(ctx.target_name)
        align_t = np.concatenate([p.content_target for p in pairs]) if pairs else None
        align_s = np.concatenate([p.content_source for p in pairs]) if pairs else None

        def loss_grad_fn(batch: np.ndarray):
            assert self.params is not None
            loss, grads = self._bce_grads(
                self.params, cu_all[batch], ci_all[batch], y_all[batch]
            )
            scale = float(w_all[batch].mean())
            for name in grads:
                grads[name] = grads[name] * scale
            if align_t is not None and self.align_weight > 0:
                a_loss, a_grads = self._align_grads(self.params, align_t, align_s)
                loss += self.align_weight * a_loss
                for name, grad in a_grads.items():
                    grads[name] = grads[name] + self.align_weight * grad
            return loss, grads

        self.loss_history = train_supervised(
            self.params,
            loss_grad_fn,
            n_samples=y_all.size,
            epochs=self.epochs,
            lr=self.lr,
            rng=train_rng,
        )
        self.attach_serving(ctx)
        return self

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self.params is None or self._ctx is None:
            raise RuntimeError("fit() must be called before score()")
        domain = self._ctx.domain
        candidates = instance.candidates
        return self._predict(
            self.params,
            repeat_user_content(domain.user_content, instance.user_row, candidates.size),
            domain.item_content[candidates],
        )
