"""MeLU — Meta-Learned User preference estimator (Lee et al., KDD 2019).

MeLU applies MAML to a content-based preference model; its characteristic
design choice is the *partial* local update: only the decision (MLP) layers
are adapted in the inner loop while the embedding layers stay global.

Relative to MetaDPA this is exactly "block 3 without blocks 1–2": same
preference network, same MAML optimization, no augmented tasks.  Its
vulnerability to meta-overfitting on sparse interactions is the phenomenon
the paper's augmentation targets.

The whole serving surface (adaptation, streaming refresh, frozen-tower
scoring, artifact round-trip) comes from
:class:`~repro.meta.serving.MAMLServingMixin`.
"""

from __future__ import annotations

from repro.core.interface import FitContext, Recommender
from repro.meta.corpus import PackedContent, TaskCorpusBuilder
from repro.meta.maml import MAML, MAMLConfig, subsample_support
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.meta.serving import MAMLServingMixin
from repro.utils.rng import spawn_rngs


class MeLU(MAMLServingMixin, Recommender):
    """MAML over the content preference model, decision-layer local updates."""

    name = "MeLU"

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dims: tuple[int, ...] = (64, 32),
        meta_epochs: int = 30,
        maml_config: MAMLConfig | None = None,
        finetune_steps: int = 5,
        few_shot_views: bool = True,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.meta_epochs = meta_epochs
        self.maml_config = maml_config or MAMLConfig(local_only_decision=True)
        self.finetune_steps = finetune_steps
        self.few_shot_views = few_shot_views
        self.seed = seed
        self.maml: MAML | None = None
        self._ctx: FitContext | None = None
        self._content: PackedContent | None = None
        self._stream_corpus = None
        self._tables = None
        self.meta_loss_history: list[float] = []

    def fit(self, ctx: FitContext) -> "MeLU":
        self._ctx = ctx
        self._content = None
        self._stream_corpus = None
        self._tables = None
        self.attach_serving(ctx)
        domain = ctx.domain
        maml_rng, _ = spawn_rngs(self.seed, 2)
        model = self._build_model(domain.user_content.shape[1])
        self.maml = MAML(model, self.maml_config, seed=maml_rng)
        view_rng, _ = spawn_rngs(self.seed + 1, 2)
        builder = TaskCorpusBuilder(self._packed_content())
        for t in ctx.warm_tasks:
            builder.add_task(t)
            if self.few_shot_views:
                builder.add_task(subsample_support(t, view_rng))
        self.meta_loss_history = self.maml.fit(builder.build(), epochs=self.meta_epochs)
        return self

    # -- MAMLServingMixin hooks -----------------------------------------
    @property
    def _finetune_steps(self) -> int:
        return self.finetune_steps

    @property
    def _maml_config(self) -> MAMLConfig:
        return self.maml_config

    def _build_model(self, content_dim: int) -> PreferenceModel:
        return PreferenceModel(
            PreferenceModelConfig(
                content_dim=content_dim,
                embed_dim=self.embed_dim,
                hidden_dims=self.hidden_dims,
            )
        )
