"""MeLU — Meta-Learned User preference estimator (Lee et al., KDD 2019).

MeLU applies MAML to a content-based preference model; its characteristic
design choice is the *partial* local update: only the decision (MLP) layers
are adapted in the inner loop while the embedding layers stay global.

Relative to MetaDPA this is exactly "block 3 without blocks 1–2": same
preference network, same MAML optimization, no augmented tasks.  Its
vulnerability to meta-overfitting on sparse interactions is the phenomenon
the paper's augmentation targets.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.meta.corpus import PackedContent, PackedContentMixin, TaskCorpusBuilder
from repro.meta.maml import (
    MAML,
    MAMLConfig,
    adapt_task_states,
    batched_candidate_scores,
    stream_refresh,
    subsample_support,
)
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.nn.module import Params
from repro.utils.rng import spawn_rngs


class MeLU(PackedContentMixin, Recommender):
    """MAML over the content preference model, decision-layer local updates."""

    name = "MeLU"

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dims: tuple[int, ...] = (64, 32),
        meta_epochs: int = 30,
        maml_config: MAMLConfig | None = None,
        finetune_steps: int = 5,
        few_shot_views: bool = True,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.meta_epochs = meta_epochs
        self.maml_config = maml_config or MAMLConfig(local_only_decision=True)
        self.finetune_steps = finetune_steps
        self.few_shot_views = few_shot_views
        self.seed = seed
        self.maml: MAML | None = None
        self._ctx: FitContext | None = None
        self._content: PackedContent | None = None
        self._stream_corpus = None
        self.meta_loss_history: list[float] = []

    def fit(self, ctx: FitContext) -> "MeLU":
        self._ctx = ctx
        self._content = None
        self._stream_corpus = None
        self.attach_serving(ctx)
        domain = ctx.domain
        maml_rng, _ = spawn_rngs(self.seed, 2)
        model = self._build_model(domain.user_content.shape[1])
        self.maml = MAML(model, self.maml_config, seed=maml_rng)
        view_rng, _ = spawn_rngs(self.seed + 1, 2)
        builder = TaskCorpusBuilder(self._packed_content())
        for t in ctx.warm_tasks:
            builder.add_task(t)
            if self.few_shot_views:
                builder.add_task(subsample_support(t, view_rng))
        self.meta_loss_history = self.maml.fit(builder.build(), epochs=self.meta_epochs)
        return self

    # ------------------------------------------------------------------
    def _build_model(self, content_dim: int) -> PreferenceModel:
        return PreferenceModel(
            PreferenceModelConfig(
                content_dim=content_dim,
                embed_dim=self.embed_dim,
                hidden_dims=self.hidden_dims,
            )
        )

    def adapt_user(self, task: PreferenceTask | None):
        """Fine-tune the meta-initialization on the user's support set."""
        if self.maml is None:
            raise RuntimeError("fit() must be called before adapt_user()")
        if task is None or task.n_support == 0 or self.finetune_steps == 0:
            return None
        return self.adapt_users([task])[0]

    def adapt_users(self, tasks):
        """Fine-tune a whole batch of users in one vectorized inner loop."""
        if self.maml is None:
            raise RuntimeError("fit() must be called before adapt_users()")
        content = self._packed_content()
        return adapt_task_states(
            self.maml,
            content.user,
            content.item,
            tasks,
            self.finetune_steps,
        )

    def meta_refresh(self, tasks, meta_lr: float = 0.1, steps: int | None = None):
        """Reptile-refresh the meta-initialization from observed tasks."""
        if self.maml is None:
            raise RuntimeError("fit() must be called before meta_refresh()")
        self._stream_corpus, info = stream_refresh(
            self.maml,
            self._packed_content(),
            tasks,
            corpus=self._stream_corpus,
            meta_lr=meta_lr,
            steps=self.finetune_steps if steps is None else steps,
        )
        return info

    def score_with_state(
        self,
        state,
        instance: EvalInstance,
        task: PreferenceTask | None = None,
    ) -> np.ndarray:
        if self.maml is None:
            raise RuntimeError("fit() must be called before scoring")
        content = self._packed_content()
        params = state if state is not None else self.maml.params
        candidates = instance.candidates
        # (1, C) user row: the model embeds the user once and broadcasts
        # the embedding across the candidates (see _broadcast_user).
        return self.maml.predict(
            content.user[instance.user_row][None, :],
            content.item[candidates],
            params=params,
        )

    def score_with_state_batch(self, states, instances) -> list[np.ndarray]:
        if self.maml is None:
            raise RuntimeError("fit() must be called before scoring")
        content = self._packed_content()
        return batched_candidate_scores(
            self.maml, content.user, content.item, states, instances
        )

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        return self.score_with_state(self.adapt_user(task), instance)

    def score_batch(self, tasks, instances) -> list[np.ndarray]:
        """Adapt every evaluated user in one batched inner loop, then score."""
        if len(tasks) != len(instances):
            raise ValueError("tasks and instances must align")
        return self.score_with_state_batch(self.adapt_users(tasks), instances)

    # ------------------------------------------------------------------
    def state_dict(self) -> Params:
        if self.maml is None:
            raise RuntimeError("fit() must be called before state_dict()")
        return dict(self.maml.params)

    def load_state_dict(self, state: Params) -> None:
        model = self._build_model(self.serving.user_content.shape[1])
        self.maml = MAML(model, self.maml_config, seed=self.seed)
        self.maml.params = {
            name: np.asarray(value) for name, value in state.items()
        }
