"""MeLU — Meta-Learned User preference estimator (Lee et al., KDD 2019).

MeLU applies MAML to a content-based preference model; its characteristic
design choice is the *partial* local update: only the decision (MLP) layers
are adapted in the inner loop while the embedding layers stay global.

Relative to MetaDPA this is exactly "block 3 without blocks 1–2": same
preference network, same MAML optimization, no augmented tasks.  Its
vulnerability to meta-overfitting on sparse interactions is the phenomenon
the paper's augmentation targets.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.meta.maml import MAML, MAMLConfig, materialize_task, subsample_support
from repro.meta.model import PreferenceModel, PreferenceModelConfig
from repro.utils.rng import spawn_rngs


class MeLU(Recommender):
    """MAML over the content preference model, decision-layer local updates."""

    name = "MeLU"

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dims: tuple[int, ...] = (64, 32),
        meta_epochs: int = 30,
        maml_config: MAMLConfig | None = None,
        finetune_steps: int = 5,
        few_shot_views: bool = True,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.meta_epochs = meta_epochs
        self.maml_config = maml_config or MAMLConfig(local_only_decision=True)
        self.finetune_steps = finetune_steps
        self.few_shot_views = few_shot_views
        self.seed = seed
        self.maml: MAML | None = None
        self._ctx: FitContext | None = None
        self.meta_loss_history: list[float] = []

    def fit(self, ctx: FitContext) -> "MeLU":
        self._ctx = ctx
        domain = ctx.domain
        maml_rng, _ = spawn_rngs(self.seed, 2)
        model = PreferenceModel(
            PreferenceModelConfig(
                content_dim=domain.user_content.shape[1],
                embed_dim=self.embed_dim,
                hidden_dims=self.hidden_dims,
            )
        )
        self.maml = MAML(model, self.maml_config, seed=maml_rng)
        view_rng, _ = spawn_rngs(self.seed + 1, 2)
        source_tasks = []
        for t in ctx.warm_tasks:
            source_tasks.append(t)
            if self.few_shot_views:
                source_tasks.append(subsample_support(t, view_rng))
        tasks = [
            materialize_task(
                domain.user_content,
                domain.item_content,
                t.user_row,
                t.support_items,
                t.support_labels,
                t.query_items,
                t.query_labels,
            )
            for t in source_tasks
        ]
        self.meta_loss_history = self.maml.fit(tasks, epochs=self.meta_epochs)
        return self

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self.maml is None or self._ctx is None:
            raise RuntimeError("fit() must be called before score()")
        domain = self._ctx.domain
        params = self.maml.params
        if task is not None and task.n_support > 0 and self.finetune_steps > 0:
            item = materialize_task(
                domain.user_content,
                domain.item_content,
                task.user_row,
                task.support_items,
                task.support_labels,
                task.query_items,
                task.query_labels,
            )
            params = self.maml.finetune(item, steps=self.finetune_steps)
        candidates = instance.candidates
        user_content = np.repeat(
            domain.user_content[instance.user_row][None, :], candidates.size, axis=0
        )
        return self.maml.predict(
            user_content, domain.item_content[candidates], params=params
        )
