"""MetaCF — Fast adaptation for cold-start CF with meta-learning (ICDM 2020).

The published method meta-learns a CF model with dynamic subgraph sampling
and extends sparse histories with *potential interactions*.  This
reproduction keeps its load-bearing ideas on our substrate:

- an **inductive user representation**: the mean embedding of the items in
  the user's support set, so brand-new users need no trained user embedding
  (this is what makes MetaCF strong on C-U);
- **MAML** over user tasks on an item-embedding + MLP scoring model;
- **potential interactions**: each task's support positives are extended
  with the items most co-occurring with them in the warm block, compensating
  for very short histories.

Dropped: the GNN subgraph encoder (replaced by the mean-embedding user
representation, its one-layer equivalent at our scale).
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.meta.corpus import TaskCorpusBuilder
from repro.nn.layers import sigmoid
from repro.nn.losses import binary_cross_entropy
from repro.nn.module import Grads, Params, mlp
from repro.nn.optim import Adam, add_grads, clip_grad_norm
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.topk import top_k_order


class MetaCF(Recommender):
    """Meta-learned CF with inductive user representations."""

    name = "MetaCF"

    def __init__(
        self,
        embed_dim: int = 24,
        hidden_dims: tuple[int, ...] = (32,),
        meta_epochs: int = 20,
        inner_lr: float = 0.05,
        inner_steps: int = 2,
        outer_lr: float = 1e-3,
        meta_batch_size: int = 16,
        n_potential: int = 2,
        finetune_steps: int = 5,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.meta_epochs = meta_epochs
        self.inner_lr = inner_lr
        self.inner_steps = inner_steps
        self.outer_lr = outer_lr
        self.meta_batch_size = meta_batch_size
        self.n_potential = n_potential
        self.finetune_steps = finetune_steps
        self.seed = seed
        self.params: Params | None = None
        self._mlp = None
        self._ctx: FitContext | None = None
        self._cooc: np.ndarray | None = None
        self.meta_loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build(self, n_items: int, rng: np.random.Generator) -> None:
        e = self.embed_dim
        self._mlp = mlp([2 * e, *self.hidden_dims, 1], activation="relu",
                        out_activation="sigmoid")
        params: Params = {"E": rng.normal(0.0, 0.05, size=(n_items, e))}
        for name, value in self._mlp.init_params(rng).items():
            params[f"mlp.{name}"] = value
        self.params = params

    @staticmethod
    def _sub(params: Params, prefix: str) -> Params:
        dot = prefix + "."
        return {k[len(dot):]: v for k, v in params.items() if k.startswith(dot)}

    def _loss_grads(
        self,
        params: Params,
        profile_items: np.ndarray,
        items: np.ndarray,
        labels: np.ndarray,
    ) -> tuple[float, Grads]:
        """BCE loss for one task; user = mean embedding of ``profile_items``."""
        emb = params["E"]
        user = emb[profile_items].mean(axis=0)
        ei = emb[items]
        joint = np.concatenate(
            [np.broadcast_to(user, (items.size, user.size)), ei], axis=1
        )
        assert self._mlp is not None
        preds, c_mlp = self._mlp.forward(self._sub(params, "mlp"), joint)
        loss, d_pred = binary_cross_entropy(preds[:, 0], labels)
        d_joint, g_mlp = self._mlp.backward(
            self._sub(params, "mlp"), c_mlp, d_pred[:, None]
        )
        e = self.embed_dim
        d_user = d_joint[:, :e].sum(axis=0)
        d_ei = d_joint[:, e:]
        dE = np.zeros_like(emb)
        np.add.at(dE, items, d_ei)
        np.add.at(
            dE,
            profile_items,
            np.broadcast_to(
                d_user / profile_items.size, (profile_items.size, d_user.size)
            ),
        )
        grads: Grads = {"E": dE}
        for k, v in g_mlp.items():
            grads[f"mlp.{k}"] = v
        return loss, grads

    # ------------------------------------------------------------------
    def _extend_profile(self, positives: np.ndarray) -> np.ndarray:
        """Add potential interactions: top co-occurring items in the warm block."""
        if self._cooc is None or self.n_potential == 0 or positives.size == 0:
            return positives
        scores = self._cooc[positives].sum(axis=0)
        scores[positives] = -np.inf
        # Descending *stable* order: co-occurrence counts tie constantly,
        # and ``np.argsort(scores)[::-1]`` reverses equal-score runs into
        # descending-index order — which made the selected potential
        # neighbours depend on how the unstable tail happened to land.
        # ``top_k_order`` ranks ties by ascending index, deterministically.
        extra = top_k_order(scores, self.n_potential)
        extra = extra[np.isfinite(scores[extra]) & (scores[extra] > 0)]
        return np.concatenate([positives, extra]).astype(int)

    def _profile_of(
        self, support_items: np.ndarray, support_labels: np.ndarray
    ) -> np.ndarray:
        positives = support_items[support_labels > 0.5]
        if positives.size == 0:
            positives = support_items[:1]
        return self._extend_profile(positives.astype(int))

    def _inner_adapt(
        self,
        profile: np.ndarray,
        items: np.ndarray,
        labels: np.ndarray,
        steps: int,
        params: Params | None = None,
    ) -> Params:
        """Fast-weight gradient steps on one task's support set.

        The single inner-loop implementation shared by meta-training and
        meta-testing fine-tuning (mirroring ``MAML.adapt``).
        """
        fast = dict(params if params is not None else self.params)
        for _ in range(steps):
            _, grads = self._loss_grads(fast, profile, items, labels)
            for name, grad in grads.items():
                fast[name] = fast[name] - self.inner_lr * grad
        return fast

    def fit(self, ctx: FitContext) -> "MetaCF":
        self._ctx = ctx
        domain = ctx.domain
        init_rng, loop_rng = spawn_rngs(self.seed, 2)
        self._build(domain.n_items, init_rng)
        visible = ctx.visible_ratings
        self._cooc = visible.T @ visible
        np.fill_diagonal(self._cooc, 0.0)

        # Tasks live in a packed corpus (index pools + float32 labels, one
        # copy total); the per-task math reads zero-copy views out of it.
        # MetaCF never pads, so epochs iterate in pure shuffled order.
        builder = TaskCorpusBuilder(None)
        for task in ctx.warm_tasks:
            builder.add_task(task)
        corpus = builder.build()
        assert self.params is not None
        optimizer = Adam(self.params, lr=self.outer_lr)
        for _ in range(self.meta_epochs):
            epoch_loss = 0.0
            n_batches = 0
            for view_ids in corpus.epoch_batches(
                self.meta_batch_size, rng=loop_rng, bucketed=False
            ):
                meta_grads: Grads = {}
                batch_loss = 0.0
                for view in view_ids:
                    _, s_items, s_labels, q_items, q_labels = corpus.view_arrays(
                        int(view)
                    )
                    profile = self._profile_of(s_items, s_labels)
                    fast = self._inner_adapt(
                        profile, s_items, s_labels, self.inner_steps
                    )
                    loss, grads = self._loss_grads(fast, profile, q_items, q_labels)
                    batch_loss += loss
                    add_grads(meta_grads, grads, scale=1.0 / len(view_ids))
                clip_grad_norm(meta_grads, 5.0)
                optimizer.step(meta_grads)
                epoch_loss += batch_loss / len(view_ids)
                n_batches += 1
            self.meta_loss_history.append(epoch_loss / max(n_batches, 1))
        self.attach_serving(ctx)
        return self

    # ------------------------------------------------------------------
    def adapt_user(self, task: PreferenceTask | None):
        """Fine-tuned ``(profile, params)`` pair for one user's support set."""
        if self.params is None or self._mlp is None:
            raise RuntimeError("fit() must be called before adapt_user()")
        if task is None or task.n_support == 0:
            return None
        profile = self._profile_of(task.support_items, task.support_labels)
        params = self._inner_adapt(
            profile, task.support_items, task.support_labels, self.finetune_steps
        )
        return profile, params

    def score_with_state(
        self,
        state,
        instance: EvalInstance,
        task: PreferenceTask | None = None,
    ) -> np.ndarray:
        if self.params is None or self._mlp is None:
            raise RuntimeError("fit() must be called before scoring")
        if state is None:
            # No history at all: fall back to the global item prior.
            profile, params = np.arange(self.params["E"].shape[0]), self.params
        else:
            profile, params = state
        candidates = instance.candidates
        emb = params["E"]
        user = emb[profile].mean(axis=0)
        joint = np.concatenate(
            [np.broadcast_to(user, (candidates.size, user.size)), emb[candidates]],
            axis=1,
        )
        preds = self._mlp(self._sub(params, "mlp"), joint)
        return preds[:, 0]

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        return self.score_with_state(self.adapt_user(task), instance)

    # ------------------------------------------------------------------
    def state_dict(self) -> Params:
        if self.params is None or self._cooc is None:
            raise RuntimeError("fit() must be called before state_dict()")
        return {**self.params, "cooc": self._cooc}

    def load_state_dict(self, state: Params) -> None:
        state = dict(state)
        self._cooc = np.asarray(state.pop("cooc"))
        n_items = state["E"].shape[0]
        self._build(n_items, ensure_rng(self.seed))
        self.params = {name: np.asarray(value) for name, value in state.items()}
