"""CATN — Cross-domain recommendation via Aspect Transfer Network (SIGIR 2020).

CATN extracts aspect-level preferences from review documents and learns a
cross-domain aspect matching for cold-start users.  The reproduction keeps
the aspect mechanism at bag-of-words scale:

- **aspect extractors**: softmax projections of user and item content onto
  ``n_aspects`` latent aspects (shared across domains, since the vocabulary
  is shared);
- an **aspect correlation matrix** ``M``: the predicted preference is the
  bilinear form ``a_u^T M a_i`` through a sigmoid;
- joint training on the target warm block and the source domains'
  interactions, so ``M`` captures cross-domain aspect matching.

Dropped: the review-document CNN encoders and the auxiliary-review module
(our users are fully described by their bag-of-words content).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    domain_triples,
    repeat_user_content,
    train_supervised,
    warm_triples,
)
from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.nn.layers import sigmoid, softmax
from repro.nn.losses import binary_cross_entropy
from repro.nn.module import Grads, Params
from repro.utils.rng import spawn_rngs


class CATN(Recommender):
    """Aspect-level bilinear matching with cross-domain training."""

    name = "CATN"

    def __init__(
        self,
        n_aspects: int = 8,
        scale: float = 4.0,
        epochs: int = 15,
        lr: float = 1e-3,
        source_weight: float = 0.5,
        n_neg_per_pos: int = 4,
        seed: int = 0,
    ):
        self.n_aspects = n_aspects
        self.scale = scale
        self.epochs = epochs
        self.lr = lr
        self.source_weight = source_weight
        self.n_neg_per_pos = n_neg_per_pos
        self.seed = seed
        self.params: Params | None = None
        self._ctx: FitContext | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build(self, content_dim: int, rng: np.random.Generator) -> None:
        a = self.n_aspects
        limit = np.sqrt(6.0 / (content_dim + a))
        self.params = {
            "Au": rng.uniform(-limit, limit, size=(content_dim, a)),
            "Ai": rng.uniform(-limit, limit, size=(content_dim, a)),
            "M": np.eye(a) + rng.normal(0.0, 0.01, size=(a, a)),
            "bias": np.zeros(1),
        }

    def _aspects(
        self, params: Params, cu: np.ndarray, ci: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        au = softmax(cu @ params["Au"] * self.scale)
        ai = softmax(ci @ params["Ai"] * self.scale)
        return au, ai

    def _predict(self, params: Params, cu: np.ndarray, ci: np.ndarray) -> np.ndarray:
        au, ai = self._aspects(params, cu, ci)
        logits = self.scale * (au * (ai @ params["M"].T)).sum(axis=1) + params["bias"][0]
        return sigmoid(logits)

    def _bce_grads(
        self, params: Params, cu: np.ndarray, ci: np.ndarray, labels: np.ndarray
    ) -> tuple[float, Grads]:
        au, ai = self._aspects(params, cu, ci)
        mi = ai @ params["M"].T  # (B, A): M @ a_i per row
        mu = au @ params["M"]    # (B, A): a_u^T M per row
        logits = self.scale * (au * mi).sum(axis=1) + params["bias"][0]
        preds = sigmoid(logits)
        loss, d_pred = binary_cross_entropy(preds, labels)
        d_logit = d_pred * preds * (1.0 - preds)

        d_au = self.scale * d_logit[:, None] * mi
        d_ai = self.scale * d_logit[:, None] * mu
        dM = self.scale * (au * d_logit[:, None]).T @ ai

        # Softmax backward for both aspect heads.
        def softmax_back(a: np.ndarray, d_a: np.ndarray) -> np.ndarray:
            dot = (d_a * a).sum(axis=1, keepdims=True)
            return a * (d_a - dot)

        d_hu = softmax_back(au, d_au) * self.scale
        d_hi = softmax_back(ai, d_ai) * self.scale
        grads: Grads = {
            "Au": cu.T @ d_hu,
            "Ai": ci.T @ d_hi,
            "M": dM,
            "bias": np.array([d_logit.sum()]),
        }
        return loss, grads

    # ------------------------------------------------------------------
    def fit(self, ctx: FitContext) -> "CATN":
        self._ctx = ctx
        domain = ctx.domain
        init_rng, src_rng, train_rng = spawn_rngs(self.seed, 3)
        self._build(domain.user_content.shape[1], init_rng)
        assert self.params is not None

        t_users, t_items, t_labels = warm_triples(ctx.warm_tasks)
        cu_parts = [domain.user_content[t_users]]
        ci_parts = [domain.item_content[t_items]]
        y_parts = [t_labels]
        w_parts = [np.ones(t_labels.size)]
        for source_name in ctx.dataset.source_names():
            source = ctx.dataset.sources[source_name]
            s_users, s_items, s_labels = domain_triples(
                source.ratings, self.n_neg_per_pos, src_rng, max_users=60
            )
            if s_users.size:
                cu_parts.append(source.user_content[s_users])
                ci_parts.append(source.item_content[s_items])
                y_parts.append(s_labels)
                w_parts.append(np.full(s_labels.size, self.source_weight))
        cu_all = np.concatenate(cu_parts)
        ci_all = np.concatenate(ci_parts)
        y_all = np.concatenate(y_parts)
        w_all = np.concatenate(w_parts)

        def loss_grad_fn(batch: np.ndarray):
            assert self.params is not None
            loss, grads = self._bce_grads(
                self.params, cu_all[batch], ci_all[batch], y_all[batch]
            )
            weight = float(w_all[batch].mean())
            for name in grads:
                grads[name] = grads[name] * weight
            return loss, grads

        self.loss_history = train_supervised(
            self.params,
            loss_grad_fn,
            n_samples=y_all.size,
            epochs=self.epochs,
            lr=self.lr,
            rng=train_rng,
        )
        self.attach_serving(ctx)
        return self

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self.params is None or self._ctx is None:
            raise RuntimeError("fit() must be called before score()")
        domain = self._ctx.domain
        candidates = instance.candidates
        return self._predict(
            self.params,
            repeat_user_content(domain.user_content, instance.user_row, candidates.size),
            domain.item_content[candidates],
        )
