"""NeuMF — Neural Collaborative Filtering (He et al., 2017).

Combines a GMF branch (elementwise product of user/item ID embeddings) with
an MLP branch (concatenated embeddings through hidden layers); a linear head
over both branches feeds a sigmoid.

ID embeddings are the point: users/items absent from the warm training block
keep their random initialization, so NeuMF performs near chance level on the
cold-start scenarios — exactly its behaviour in Table III (AUC ≈ 0.50).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import train_supervised, warm_triples
from repro.core.interface import FitContext, Recommender
from repro.data.negative_sampling import EvalInstance
from repro.data.tasks import PreferenceTask
from repro.nn.layers import Embedding, sigmoid
from repro.nn.losses import binary_cross_entropy
from repro.nn.module import Grads, Params, mlp
from repro.utils.rng import ensure_rng, spawn_rngs


class NeuMF(Recommender):
    """Neural matrix factorization with GMF + MLP branches."""

    name = "NeuMF"

    def __init__(
        self,
        embed_dim: int = 16,
        hidden_dims: tuple[int, ...] = (32, 16),
        epochs: int = 20,
        lr: float = 5e-3,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_dims = hidden_dims
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.params: Params | None = None
        self._modules: dict | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build(self, n_users: int, n_items: int, rng: np.random.Generator) -> None:
        e = self.embed_dim
        modules = {
            "user_gmf": Embedding(n_users, e, std=0.05),
            "item_gmf": Embedding(n_items, e, std=0.05),
            "user_mlp": Embedding(n_users, e, std=0.05),
            "item_mlp": Embedding(n_items, e, std=0.05),
            "mlp": mlp([2 * e, *self.hidden_dims], activation="relu"),
        }
        params: Params = {}
        for prefix, module in modules.items():
            for name, value in module.init_params(rng).items():
                params[f"{prefix}.{name}"] = value
        # Final prediction head over [gmf_vector ; mlp_top].
        head_in = e + self.hidden_dims[-1]
        params["head.w"] = rng.normal(0.0, 0.05, size=head_in)
        params["head.b"] = np.zeros(1)
        self._modules = modules
        self.params = params

    @staticmethod
    def _sub(params: Params, prefix: str) -> Params:
        dot = prefix + "."
        return {k[len(dot):]: v for k, v in params.items() if k.startswith(dot)}

    def _forward(
        self, params: Params, users: np.ndarray, items: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        mods = self._modules
        assert mods is not None
        ug, c_ug = mods["user_gmf"].forward(self._sub(params, "user_gmf"), users)
        ig, c_ig = mods["item_gmf"].forward(self._sub(params, "item_gmf"), items)
        um, c_um = mods["user_mlp"].forward(self._sub(params, "user_mlp"), users)
        im, c_im = mods["item_mlp"].forward(self._sub(params, "item_mlp"), items)
        gmf = ug * ig
        mlp_in = np.concatenate([um, im], axis=1)
        top, c_mlp = mods["mlp"].forward(self._sub(params, "mlp"), mlp_in)
        feats = np.concatenate([gmf, top], axis=1)
        logits = feats @ params["head.w"] + params["head.b"]
        preds = sigmoid(logits)
        cache = {
            "ug": ug, "ig": ig, "feats": feats, "preds": preds,
            "c_ug": c_ug, "c_ig": c_ig, "c_um": c_um, "c_im": c_im, "c_mlp": c_mlp,
        }
        return preds, cache

    def _loss_grads(
        self, params: Params, users: np.ndarray, items: np.ndarray, labels: np.ndarray
    ) -> tuple[float, Grads]:
        mods = self._modules
        assert mods is not None
        preds, cache = self._forward(params, users, items)
        loss, d_pred = binary_cross_entropy(preds, labels)
        # Through the sigmoid head.
        d_logits = d_pred * cache["preds"] * (1.0 - cache["preds"])
        grads: Grads = {
            "head.w": cache["feats"].T @ d_logits,
            "head.b": np.array([d_logits.sum()]),
        }
        d_feats = d_logits[:, None] * params["head.w"][None, :]
        e = self.embed_dim
        d_gmf, d_top = d_feats[:, :e], d_feats[:, e:]

        d_mlp_in, g_mlp = mods["mlp"].backward(self._sub(params, "mlp"), cache["c_mlp"], d_top)
        for k, v in g_mlp.items():
            grads[f"mlp.{k}"] = v
        _, g_um = mods["user_mlp"].backward(
            self._sub(params, "user_mlp"), cache["c_um"], d_mlp_in[:, :e]
        )
        _, g_im = mods["item_mlp"].backward(
            self._sub(params, "item_mlp"), cache["c_im"], d_mlp_in[:, e:]
        )
        _, g_ug = mods["user_gmf"].backward(
            self._sub(params, "user_gmf"), cache["c_ug"], d_gmf * cache["ig"]
        )
        _, g_ig = mods["item_gmf"].backward(
            self._sub(params, "item_gmf"), cache["c_ig"], d_gmf * cache["ug"]
        )
        for prefix, sub in (
            ("user_mlp", g_um), ("item_mlp", g_im), ("user_gmf", g_ug), ("item_gmf", g_ig)
        ):
            for k, v in sub.items():
                grads[f"{prefix}.{k}"] = v
        return loss, grads

    # ------------------------------------------------------------------
    def fit(self, ctx: FitContext) -> "NeuMF":
        domain = ctx.domain
        init_rng, train_rng = spawn_rngs(self.seed, 2)
        self._build(domain.n_users, domain.n_items, init_rng)
        users, items, labels = warm_triples(ctx.warm_tasks)
        assert self.params is not None

        def loss_grad_fn(batch: np.ndarray):
            return self._loss_grads(
                self.params, users[batch], items[batch], labels[batch]
            )

        self.loss_history = train_supervised(
            self.params,
            loss_grad_fn,
            n_samples=users.size,
            epochs=self.epochs,
            lr=self.lr,
            rng=train_rng,
        )
        self.attach_serving(ctx)
        return self

    def state_dict(self) -> Params:
        if self.params is None:
            raise RuntimeError("fit() must be called before state_dict()")
        return dict(self.params)

    def load_state_dict(self, state: Params) -> None:
        # The serving state is attached before this call; its seen-matrix
        # shape carries the embedding table sizes the modules need.
        serving = self.serving
        self._build(serving.n_users, serving.n_items, ensure_rng(self.seed))
        self.params = {name: np.asarray(value) for name, value in state.items()}

    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        if self.params is None:
            raise RuntimeError("fit() must be called before score()")
        candidates = instance.candidates
        users = np.full(candidates.size, instance.user_row, dtype=int)
        preds, _ = self._forward(self.params, users, candidates)
        return preds
