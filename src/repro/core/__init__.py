"""Core abstractions: the recommender interface every method implements.

The paper's primary contribution, MetaDPA, lives in :mod:`repro.meta`
(preference meta-learning) and :mod:`repro.cvae` (multi-source domain
adaptation + diverse preference augmentation); this package defines the
shared contract that MetaDPA and all baselines implement so the evaluation
protocol and every benchmark can treat them uniformly.
"""

from repro.core.interface import (
    FitContext,
    Recommendation,
    Recommender,
    ServingState,
    training_visibility,
)

__all__ = [
    "FitContext",
    "Recommendation",
    "Recommender",
    "ServingState",
    "training_visibility",
]
