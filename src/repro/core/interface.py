"""The recommender contract shared by MetaDPA and every baseline.

A method is fitted once per target domain on the *warm* block (existing
users × existing items) — multi-domain methods may additionally read the
source domains from the dataset — and is then asked to score leave-one-out
candidate lists.  For cold-start scenarios the method receives the
evaluation task's support set so that meta-learners can fine-tune; methods
that cannot exploit the support set simply ignore it (that inability is
part of what Table III measures).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.data.domain import Domain, MultiDomainDataset
from repro.data.negative_sampling import EvalInstance
from repro.data.splits import ColdStartSplits
from repro.data.tasks import PreferenceTask, TaskSet


@dataclass
class FitContext:
    """Everything a method may use at training time.

    Attributes
    ----------
    dataset:
        the full multi-domain benchmark (sources + targets).  Single-domain
        methods only read ``dataset.targets[target_name]``.
    target_name:
        which target domain is being evaluated.
    splits:
        the existing/new user and item partition of the target domain.
    warm_tasks:
        meta-training tasks built from the warm block (Ue × Ie); their
        support/query structure doubles as the train/validation split for
        non-meta methods.
    seed:
        per-run seed; every method must be deterministic given it.
    train_ratings:
        the binary matrix of interactions *visible at training time* — the
        warm tasks' support positives.  Methods that count interactions
        directly (popularity, item co-occurrence) must use this, never
        ``domain.ratings``, or they would see held-out evaluation positives.
    """

    dataset: MultiDomainDataset
    target_name: str
    splits: ColdStartSplits
    warm_tasks: TaskSet
    seed: int = 0
    train_ratings: np.ndarray | None = None

    @property
    def domain(self) -> Domain:
        return self.dataset.targets[self.target_name]

    @property
    def visible_ratings(self) -> np.ndarray:
        """Training-visible interaction matrix (see ``train_ratings``)."""
        if self.train_ratings is None:
            self.train_ratings = training_visibility(
                self.domain.n_users, self.domain.n_items, self.warm_tasks
            )
        return self.train_ratings


def training_visibility(n_users: int, n_items: int, warm_tasks: TaskSet) -> np.ndarray:
    """Binary matrix of warm-task support positives (the training set)."""
    visible = np.zeros((n_users, n_items))
    for task in warm_tasks:
        positives = task.support_items[task.support_labels > 0.5]
        visible[task.user_row, positives] = 1.0
    return visible


class Recommender(abc.ABC):
    """Abstract cold-start recommender."""

    #: short display name used in result tables (e.g. "MetaDPA", "NeuMF").
    name: str = "recommender"

    @abc.abstractmethod
    def fit(self, ctx: FitContext) -> "Recommender":
        """Train on the warm block (and any source domains); returns self."""

    @abc.abstractmethod
    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        """Score ``instance.candidates`` (positive first, then negatives).

        ``task`` carries the evaluated user's support set for fine-tuning;
        it is ``None`` only when a caller explicitly evaluates without
        adaptation.  Higher scores mean stronger recommendation.
        """

    def score_batch(
        self, tasks: list[PreferenceTask | None], instances: list[EvalInstance]
    ) -> list[np.ndarray]:
        """Score many instances; override for methods with batch speedups."""
        if len(tasks) != len(instances):
            raise ValueError("tasks and instances must align")
        return [self.score(t, i) for t, i in zip(tasks, instances)]
