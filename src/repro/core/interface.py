"""The recommender contract shared by MetaDPA and every baseline.

A method is fitted once per target domain on the *warm* block (existing
users × existing items) — multi-domain methods may additionally read the
source domains from the dataset — and is then asked to score leave-one-out
candidate lists.  For cold-start scenarios the method receives the
evaluation task's support set so that meta-learners can fine-tune; methods
that cannot exploit the support set simply ignore it (that inability is
part of what Table III measures).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.domain import Domain, MultiDomainDataset
from repro.data.negative_sampling import EvalInstance
from repro.data.splits import ColdStartSplits
from repro.data.tasks import PreferenceTask, TaskSet
from repro.nn.module import Params
from repro.utils.topk import top_k_order

#: Artifact layout version written by :meth:`Recommender.save`.
#: Format 2 adds the ``serving.table.*`` members — precomputed frozen-tower
#: embedding tables (see :mod:`repro.meta.serving`).  Format-1 artifacts
#: stay loadable: absent tables are recomputed once at load time.
ARTIFACT_FORMAT = 2

_STATE_PREFIX = "state."
_SERVING_PREFIX = "serving."
_TABLE_PREFIX = "serving.table."


@dataclass
class FitContext:
    """Everything a method may use at training time.

    Attributes
    ----------
    dataset:
        the full multi-domain benchmark (sources + targets).  Single-domain
        methods only read ``dataset.targets[target_name]``.
    target_name:
        which target domain is being evaluated.
    splits:
        the existing/new user and item partition of the target domain.
    warm_tasks:
        meta-training tasks built from the warm block (Ue × Ie); their
        support/query structure doubles as the train/validation split for
        non-meta methods.
    seed:
        per-run seed; every method must be deterministic given it.
    train_ratings:
        the binary matrix of interactions *visible at training time* — the
        warm tasks' support positives.  Methods that count interactions
        directly (popularity, item co-occurrence) must use this, never
        ``domain.ratings``, or they would see held-out evaluation positives.
    """

    dataset: MultiDomainDataset
    target_name: str
    splits: ColdStartSplits
    warm_tasks: TaskSet
    seed: int = 0
    train_ratings: np.ndarray | None = None

    @property
    def domain(self) -> Domain:
        return self.dataset.targets[self.target_name]

    @property
    def visible_ratings(self) -> np.ndarray:
        """Training-visible interaction matrix (see ``train_ratings``)."""
        if self.train_ratings is None:
            self.train_ratings = training_visibility(
                self.domain.n_users, self.domain.n_items, self.warm_tasks
            )
        return self.train_ratings


def training_visibility(
    n_users: int,
    n_items: int,
    warm_tasks: TaskSet,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Binary matrix of warm-task support positives (the training set).

    ``float32`` by default: the matrix only ever holds 0/1 and sits on the
    hot path of every ``fit``, so the narrower dtype halves its memory.
    """
    visible = np.zeros((n_users, n_items), dtype=dtype)
    for task in warm_tasks:
        positives = task.support_items[task.support_labels > 0.5]
        visible[task.user_row, positives] = 1.0
    return visible


@dataclass
class ServingState:
    """Everything a fitted method needs to answer ``recommend`` calls.

    Captured from the :class:`FitContext` at the end of ``fit`` (via
    :meth:`Recommender.attach_serving`) and persisted inside artifacts, so a
    loaded model can score without the original dataset: the leak-free
    content matrices for content-based scoring and the boolean ``seen``
    matrix for ``exclude_seen`` filtering.
    """

    user_content: np.ndarray
    item_content: np.ndarray
    seen: np.ndarray

    @property
    def n_users(self) -> int:
        return self.seen.shape[0]

    @property
    def n_items(self) -> int:
        return self.seen.shape[1]


@dataclass(frozen=True)
class Recommendation:
    """Top-k answer for one user: items sorted by descending score.

    ``degraded`` marks answers produced by a fallback tier (popularity
    prior instead of the model) when the serving stack could not produce
    a full-quality answer in time — see :mod:`repro.serve.resilience`.
    """

    user_row: int
    items: np.ndarray
    scores: np.ndarray
    degraded: bool = False

    def __len__(self) -> int:
        return self.items.size


class Recommender(abc.ABC):
    """Abstract cold-start recommender.

    Beyond the original ``fit``/``score`` evaluation contract, the class
    defines the serving lifecycle: ``fit`` captures a :class:`ServingState`
    (via :meth:`attach_serving`), :meth:`save`/:meth:`load` round-trip a
    fitted model through a self-contained ``.npz`` artifact, and
    :meth:`recommend` answers the production question — top-k unseen items
    for one user.  Meta-learners additionally split scoring into
    :meth:`adapt_user` (expensive, per-user) and :meth:`score_with_state`
    (cheap, per-request) so :class:`repro.service.RecommenderService` can
    cache the adaptation.
    """

    #: short display name used in result tables (e.g. "MetaDPA", "NeuMF").
    name: str = "recommender"
    #: per-run seed; subclasses set it in ``__init__``.
    seed: int = 0
    #: the registry config this instance was built from, when built via
    #: :func:`repro.registry.build_method`; used to rebuild on ``load``.
    _method_config = None
    _serving: ServingState | None = None

    @abc.abstractmethod
    def fit(self, ctx: FitContext) -> "Recommender":
        """Train on the warm block (and any source domains); returns self."""

    @abc.abstractmethod
    def score(
        self, task: PreferenceTask | None, instance: EvalInstance
    ) -> np.ndarray:
        """Score ``instance.candidates`` (positive first, then negatives).

        ``task`` carries the evaluated user's support set for fine-tuning;
        it is ``None`` only when a caller explicitly evaluates without
        adaptation.  Higher scores mean stronger recommendation.
        """

    def score_batch(
        self, tasks: list[PreferenceTask | None], instances: list[EvalInstance]
    ) -> list[np.ndarray]:
        """Score many instances; override for methods with batch speedups."""
        if len(tasks) != len(instances):
            raise ValueError("tasks and instances must align")
        return [self.score(t, i) for t, i in zip(tasks, instances)]

    # -- serving state --------------------------------------------------
    def attach_serving(self, ctx: FitContext) -> "Recommender":
        """Capture the serving-time state from a fit context.

        Every ``fit`` implementation calls this so that a fitted method can
        answer :meth:`recommend` and be persisted with :meth:`save`.
        """
        self._serving = ServingState(
            user_content=ctx.domain.user_content,
            item_content=ctx.domain.item_content,
            seen=np.asarray(ctx.visible_ratings) > 0,
        )
        return self

    @property
    def serving(self) -> ServingState:
        """The attached serving state; raises before ``fit``/``load``."""
        if self._serving is None:
            raise RuntimeError(
                f"{self.name} has no serving state: call fit() or load() first"
            )
        return self._serving

    # -- per-user adaptation hooks --------------------------------------
    def adapt_user(self, task: PreferenceTask | None) -> Any:
        """Compute the per-user adapted state from a support task.

        For meta-learners this is the expensive fine-tuning step; the
        default returns ``None`` (no adaptation).  The returned object is
        opaque to callers and only consumed by :meth:`score_with_state`,
        which lets the serving layer cache it per user.
        """
        return None

    def adapt_users(self, tasks: list[PreferenceTask | None]) -> list[Any]:
        """Adapt many users at once; returns one state per task.

        The batched counterpart of :meth:`adapt_user`: meta-learners
        override it to fine-tune a whole batch of cold-start users in one
        vectorized inner loop (one numpy pass per gradient step instead of
        one per user).  The default simply loops.  Repeated task *objects*
        may be deduplicated — callers get one state per position either
        way.
        """
        return [self.adapt_user(task) for task in tasks]

    def meta_refresh(
        self,
        tasks: list[PreferenceTask | None],
        meta_lr: float = 0.1,
        steps: int | None = None,
    ) -> dict:
        """Nudge the shared initialization from freshly observed tasks.

        The streaming counterpart of :meth:`fit`: meta-learners override it
        with a cheap reptile-style update over the appended tasks (O(tail),
        no full retrain), after which previously adapted per-user states
        are stale and should be invalidated by the caller.  Returns a small
        info dict (``n_tasks``, ``delta_rms``).  Methods without a shared
        initialization have nothing to refresh and raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support meta-refresh"
        )

    def supports_meta_refresh(self) -> bool:
        """Whether this method implements :meth:`meta_refresh`."""
        return type(self).meta_refresh is not Recommender.meta_refresh

    def score_with_state(
        self,
        state: Any,
        instance: EvalInstance,
        task: PreferenceTask | None = None,
    ) -> np.ndarray:
        """Score one instance given a previously adapted user state."""
        return self.score(task, instance)

    def score_with_state_batch(
        self, states: list[Any], instances: list[EvalInstance]
    ) -> list[np.ndarray]:
        """Score many instances with per-instance adapted states.

        This is the coalescing entry point used by the service's
        micro-batching queue; methods with vectorized forwards override it.
        """
        if len(states) != len(instances):
            raise ValueError("states and instances must align")
        return [self.score_with_state(s, i) for s, i in zip(states, instances)]

    # -- top-k recommendation -------------------------------------------
    def recommend(
        self,
        user_row: int,
        k: int = 10,
        exclude_seen: bool = True,
        candidates: np.ndarray | None = None,
        task: PreferenceTask | None = None,
    ) -> Recommendation:
        """Top-``k`` items for ``user_row`` over the candidate pool.

        The default implementation is fully generic: it builds one scoring
        instance over the pool (all items, minus already-seen ones when
        ``exclude_seen``) and ranks via :meth:`score_batch`, so every method
        gets a serving entry point for free.  ``task`` optionally carries
        the user's support set for fine-tuning methods.
        """
        serving = self.serving
        if k <= 0:
            raise ValueError("k must be positive")
        if not 0 <= user_row < serving.n_users:
            raise ValueError(
                f"user_row {user_row} out of range [0, {serving.n_users})"
            )
        if candidates is None:
            pool = np.arange(serving.n_items)
        else:
            pool = np.unique(np.asarray(candidates, dtype=int))
        if exclude_seen:
            pool = pool[~serving.seen[user_row, pool]]
        if pool.size == 0:
            empty = np.array([], dtype=int)
            return Recommendation(int(user_row), empty, np.array([], dtype=float))
        instance = EvalInstance(
            user_row=int(user_row), pos_item=int(pool[0]), neg_items=pool[1:]
        )
        scores = np.asarray(self.score_batch([task], [instance])[0], dtype=float)
        order = top_k_order(scores, k)
        return Recommendation(int(user_row), pool[order], scores[order])

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> Params:
        """Learned arrays to persist; inverse of :meth:`load_state_dict`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support serialization yet"
        )

    def load_state_dict(self, state: Params) -> None:
        """Restore learned arrays; the serving state is already attached."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support serialization yet"
        )

    def supports_serialization(self) -> bool:
        """Whether this method implements ``state_dict``/``load_state_dict``."""
        return type(self).state_dict is not Recommender.state_dict

    def serving_tables(self) -> dict[str, np.ndarray]:
        """Precomputed serving tables to bake into the artifact.

        Methods with user-invariant submodels (the frozen embedding towers
        of MAML-based methods, see :mod:`repro.meta.serving`) override this
        to persist their precompute; the default has none.  Keys are
        namespaced under ``serving.table.`` in the archive.
        """
        return {}

    def attach_serving_tables(self, tables: dict[str, np.ndarray]) -> None:
        """Adopt artifact-baked serving tables after ``load_state_dict``.

        Called on every load with whatever ``serving.table.`` members the
        artifact holds (possibly none, for format-1 artifacts).  The
        default ignores them.
        """

    def config_dict(self) -> dict:
        """JSON-able constructor config, written into saved artifacts.

        Instances built via :func:`repro.registry.build_method` report their
        config verbatim; directly-constructed instances fall back to reading
        the registry config's fields off the instance (every config field
        mirrors a constructor attribute), so non-default hyper-parameters
        survive the save/load round trip either way.
        """
        if self._method_config is not None:
            return self._method_config.to_dict()
        from repro.registry import config_class

        try:
            cls = config_class(self.name)
        except KeyError:
            return {}
        values = {
            name: getattr(self, name)
            for name in cls.field_names()
            if hasattr(self, name)
        }
        return cls.from_dict(values).to_dict()

    def registry_name(self) -> str:
        """The registry name used to rebuild this method on ``load``."""
        if self._method_config is not None:
            return self._method_config.method
        return self.name

    def save(self, path: str | Path) -> Path:
        """Write a self-contained artifact: config + weights + serving state."""
        from repro.nn.serialization import save_params

        serving = self.serving
        payload: Params = {
            f"{_STATE_PREFIX}{k}": np.asarray(v)
            for k, v in self.state_dict().items()
        }
        # Serving content is stored float32 C-contiguous — the exact layout
        # :func:`repro.meta.corpus.pack_content` wants — so a memory-mapped
        # load feeds the packed scoring path by reference, no copy.
        payload[f"{_SERVING_PREFIX}user_content"] = np.ascontiguousarray(
            serving.user_content, dtype=np.float32
        )
        payload[f"{_SERVING_PREFIX}item_content"] = np.ascontiguousarray(
            serving.item_content, dtype=np.float32
        )
        payload[f"{_SERVING_PREFIX}seen"] = serving.seen.astype(np.uint8)
        # Popularity prior for the degraded fallback tier: per-item global
        # interaction counts, enough for a model-free top-k when a shard
        # cannot answer.  Loaders that predate it ignore the extra member.
        payload[f"{_SERVING_PREFIX}popularity"] = serving.seen.sum(
            axis=0, dtype=np.float32
        )
        # Frozen-tower precompute (format 2): baked float32 C-contiguous so
        # a memory-mapped load serves gathers straight off one page-cache
        # copy shared by every shard worker.
        for name, table in self.serving_tables().items():
            payload[f"{_TABLE_PREFIX}{name}"] = np.ascontiguousarray(
                table, dtype=np.float32
            )
        header = {
            "format": ARTIFACT_FORMAT,
            "method": self.registry_name(),
            "seed": int(getattr(self, "seed", 0)),
            "config": self.config_dict(),
        }
        return save_params(Path(path), payload, config=header)

    @classmethod
    def load(cls, path: str | Path, mmap_mode: str | None = None) -> "Recommender":
        """Rebuild a fitted method from a :meth:`save` artifact.

        With ``mmap_mode`` (``"r"`` or ``"c"``) every persisted array is an
        ``np.memmap`` view into the archive: startup is O(open), nothing is
        materialized until scored against, and N processes loading the same
        artifact share one page-cache copy of the weights and content.
        """
        from repro.nn.serialization import load_params
        from repro.registry import build_method

        arrays, header = load_params(path, mmap_mode=mmap_mode)
        if not header or "method" not in header:
            raise ValueError(f"{path} is not a recommender artifact")
        method = build_method(
            {"name": header["method"], **header.get("config", {})},
            seed=int(header.get("seed", 0)),
        )
        if cls is not Recommender and not isinstance(method, cls):
            raise TypeError(
                f"artifact holds a {type(method).__name__}, not a {cls.__name__}"
            )
        seen = arrays[f"{_SERVING_PREFIX}seen"]
        # uint8 -> bool is a reinterpreting view, keeping the mmap zero-copy.
        seen = seen.view(bool) if seen.dtype == np.uint8 else seen.astype(bool)
        method._serving = ServingState(
            user_content=arrays[f"{_SERVING_PREFIX}user_content"],
            item_content=arrays[f"{_SERVING_PREFIX}item_content"],
            seen=seen,
        )
        state = {
            name[len(_STATE_PREFIX):]: value
            for name, value in arrays.items()
            if name.startswith(_STATE_PREFIX)
        }
        method.load_state_dict(state)
        # Format-2 artifacts carry baked serving tables; older artifacts
        # pass an empty mapping and the method recomputes on first use.
        method.attach_serving_tables(
            {
                name[len(_TABLE_PREFIX):]: value
                for name, value in arrays.items()
                if name.startswith(_TABLE_PREFIX)
            }
        )
        return method
