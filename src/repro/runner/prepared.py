"""On-disk cache of :func:`repro.data.experiment.prepare_experiment` bundles.

Preparing an experiment (cold-start splits, meta-test tasks, leave-one-out
instances, leak-free visibility matrices) depends only on the dataset
parameters, the target domain, the split seed and the scenario list — not on
the method.  The per-figure runners used to redo it once per method; the
grid engine pays it once per (target, seed) and shares the pickled bundle
across every worker process through this cache.

Writes are atomic (temp file + ``os.replace``), so racing workers at worst
duplicate the preparation work — they never read a half-written bundle.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

import numpy as np

from repro.data.experiment import Experiment, prepare_experiment
from repro.runner.spec import DatasetSpec, GridSpec
from repro.utils.persist import atomic_write_bytes, canonical_json

#: per-process memo of built datasets, keyed by the dataset spec.
_DATASET_MEMO: dict[str, object] = {}
#: per-process memo of prepared experiments, keyed by bundle key.
_PREPARED_MEMO: dict[str, Experiment] = {}


def prepared_key(spec: GridSpec, target: str, seed: int) -> str:
    """Content hash identifying one prepared bundle."""
    payload = {
        "dataset": spec.dataset.to_dict(),
        "target": target,
        "seed": seed,
        "scenarios": [s.value for s in spec.scenarios],
        "n_negatives": spec.n_negatives,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:20]


def get_dataset(dataset_spec: DatasetSpec):
    """Build (or reuse) the benchmark dataset for this process."""
    memo_key = canonical_json(dataset_spec.to_dict())
    if memo_key not in _DATASET_MEMO:
        _DATASET_MEMO[memo_key] = dataset_spec.build()
    return _DATASET_MEMO[memo_key]


def dataset_fingerprint(dataset) -> str:
    """Content hash of a dataset's target rating matrices.

    The synthetic benchmark is a deterministic function of its spec, so
    this fingerprint identifies (scale, seed) — cheap enough to compute on
    every preparation and strong enough to catch a run directory being fed
    two different datasets.
    """
    digest = hashlib.sha256()
    for name in sorted(dataset.targets):
        domain = dataset.targets[name]
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(domain.ratings).tobytes())
    return digest.hexdigest()[:20]


def _record_or_check_fingerprint(cache_dir: Path, dataset) -> None:
    """First preparation records the dataset identity; later ones must match.

    This is what keeps a run directory internally consistent when a caller
    injects a prebuilt dataset: if the injected data differs from what the
    stored cells were computed from (or from what spec-built workers will
    use), the run fails loudly instead of silently mixing results.
    """
    fingerprint = dataset_fingerprint(dataset)
    path = cache_dir / "dataset.fp"
    if path.exists():
        recorded = path.read_text().strip()
        if recorded != fingerprint:
            raise RuntimeError(
                "dataset mismatch for this run directory: the dataset in use "
                f"(fingerprint {fingerprint}) is not the one earlier cells were "
                f"computed from ({recorded}); use a fresh run directory, or drop "
                "the injected dataset so workers build it from the spec"
            )
        return
    cache_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, (fingerprint + "\n").encode())


def load_or_prepare(
    spec: GridSpec,
    target: str,
    seed: int,
    cache_dir: str | Path,
    dataset=None,
) -> Experiment:
    """Return the prepared bundle for (target, seed), via memo → disk → build."""
    cache_dir = Path(cache_dir)
    if dataset is not None:
        _record_or_check_fingerprint(cache_dir, dataset)
    key = prepared_key(spec, target, seed)
    if key in _PREPARED_MEMO:
        return _PREPARED_MEMO[key]

    path = cache_dir / f"{key}.pkl"
    if path.exists():
        try:
            with path.open("rb") as fh:
                experiment = pickle.load(fh)
            _PREPARED_MEMO[key] = experiment
            return experiment
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            pass  # corrupt/stale bundle: fall through and rebuild it

    if dataset is None:
        dataset = get_dataset(spec.dataset)
        _record_or_check_fingerprint(cache_dir, dataset)
    experiment = prepare_experiment(
        dataset,
        target,
        seed=seed,
        n_negatives=spec.n_negatives,
        scenarios=list(spec.scenarios),
    )
    cache_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(
        path, pickle.dumps(experiment, protocol=pickle.HIGHEST_PROTOCOL)
    )
    _PREPARED_MEMO[key] = experiment
    return experiment


def clear_memos() -> None:
    """Drop per-process memos (tests use this to simulate fresh workers)."""
    _DATASET_MEMO.clear()
    _PREPARED_MEMO.clear()
